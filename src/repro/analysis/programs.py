"""Example IR programs mirroring the paper's Figure 1 snippets.

These are the IR-level counterparts of :mod:`repro.workloads.snippets`:
small programs whose taint analysis produces exactly the annotations the
paper's examples need, used by tests and by ``examples/secret_leak_demo.py``.
"""

from __future__ import annotations

from repro.analysis.ir import (
    Program,
    alu,
    branch,
    const,
    load,
    read_public,
    read_secret,
    store,
)


def secret_gated_traversal(array_lines: int) -> Program:
    """Figure 1a: ``if (secret) for i in 0..N: access(arr[i])``.

    The traversal loads are control-dependent on the secret branch; the
    analysis marks them SECRET_CONTROL (hence both metric- and
    progress-excluded).
    """
    body = []
    for i in range(array_lines):
        body.append(const(f"addr{i}", 1000 + i))
        body.append(load("tmp", f"addr{i}"))
    return Program(
        [read_secret("secret"), branch("secret", len(body)), *body]
    )


def secret_strided_traversal(array_lines: int) -> Program:
    """Figure 1b: ``for i in 0..N: access(arr[i * secret])``.

    The loads' addresses are data-dependent on the secret; the analysis
    marks them SECRET_RESOURCE_USE (metric-excluded, progress-counted).

    The IR's ALU sums its sources, so ``i * secret`` is built by
    accumulating ``secret`` once per iteration — the footprint is one
    line for ``secret == 0`` and ``array_lines`` lines otherwise.
    """
    instructions = [
        read_secret("secret"),
        const("base", 1000),
        const("scaled", 0),
    ]
    for _ in range(array_lines):
        instructions.append(alu("addr", "base", "scaled"))
        instructions.append(load("tmp", "addr"))
        instructions.append(alu("scaled", "scaled", "secret"))
    return Program(instructions)


def public_traversal(array_lines: int) -> Program:
    """The always-executed public traversal of Figure 1c (sans sleep).

    Nothing is tainted: the analysis must leave every instruction
    unannotated. (The secret-gated *sleep* of Figure 1c is a timing
    effect with no architectural trace, which is exactly why annotations
    cannot remove that leak — see Section 3.4.)
    """
    instructions = [read_public("n")]
    for i in range(array_lines):
        instructions.append(const(f"addr{i}", 2000 + i))
        instructions.append(load("tmp", f"addr{i}"))
    return Program(instructions)


def tainted_store_then_load(array_lines: int = 4) -> Program:
    """A store of a secret followed by loads: memory taint propagation."""
    instructions = [
        read_secret("secret"),
        const("slot", 3000),
        store("secret", "slot"),
    ]
    for i in range(array_lines):
        instructions.append(const(f"addr{i}", 3000 + i))
        instructions.append(load(f"value{i}", f"addr{i}"))
        instructions.append(alu(f"derived{i}", f"value{i}"))
        instructions.append(load("tmp", f"derived{i}"))
    return Program(instructions)
