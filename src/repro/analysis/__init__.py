"""Annotation analysis substrate: tiny IR, taint analysis, executor."""

from repro.analysis.executor import ExecutionResult, execute
from repro.analysis.ir import (
    Instruction,
    Opcode,
    Program,
    alu,
    branch,
    const,
    load,
    read_public,
    read_secret,
    store,
)
from repro.analysis.taint import TaintReport, analyze, annotate

__all__ = [
    "Program",
    "Instruction",
    "Opcode",
    "const",
    "alu",
    "load",
    "store",
    "branch",
    "read_secret",
    "read_public",
    "TaintReport",
    "analyze",
    "annotate",
    "ExecutionResult",
    "execute",
]
