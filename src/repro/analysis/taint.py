"""Conservative taint analysis producing Untangle annotations.

Implements the annotation contract of Section 5.2 over the miniature IR:

* An instruction has **secret-dependent resource use** when it is a
  memory instruction whose address register is tainted, or when it is a
  memory instruction control-dependent on a tainted branch.
* An instruction is **secret-control-dependent** when it lies in the
  body of a branch whose condition register is tainted (it is then
  excluded from progress counting, whether or not it touches memory).

Taint propagates forward through registers (data flow) and into branch
bodies (control flow); stores with a tainted source taint the memory
region conservatively, and loads from tainted memory produce tainted
registers. The result maps one-to-one onto
:class:`repro.core.annotations.AnnotationKind`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.ir import Opcode, Program
from repro.core.annotations import AnnotationKind, AnnotationVector


@dataclass(frozen=True)
class TaintReport:
    """Per-instruction annotation kinds plus summary counts."""

    kinds: list[AnnotationKind]

    @property
    def annotated_count(self) -> int:
        return sum(1 for kind in self.kinds if kind is not AnnotationKind.NONE)

    def annotation_vector(self) -> AnnotationVector:
        """The Untangle-consumable annotation vector."""
        return AnnotationVector.from_kinds(self.kinds)


def analyze(program: Program) -> TaintReport:
    """Run the conservative taint analysis over a program."""
    program.validate()
    tainted_registers: set[str] = set()
    memory_tainted = False
    kinds: list[AnnotationKind] = []
    #: Remaining instruction count under a tainted branch (structured CF).
    secret_region_remaining = 0

    for instruction in program:
        kind = AnnotationKind.NONE
        in_secret_region = secret_region_remaining > 0
        if in_secret_region:
            secret_region_remaining -= 1
            kind |= AnnotationKind.SECRET_CONTROL

        opcode = instruction.opcode
        if opcode is Opcode.READ_SECRET:
            assert instruction.dst is not None
            tainted_registers.add(instruction.dst)
        elif opcode is Opcode.READ_PUBLIC:
            if instruction.dst in tainted_registers and not in_secret_region:
                tainted_registers.discard(instruction.dst)
            if in_secret_region and instruction.dst is not None:
                # A write under secret control carries implicit flow.
                tainted_registers.add(instruction.dst)
        elif opcode is Opcode.CONST:
            assert instruction.dst is not None
            if in_secret_region:
                tainted_registers.add(instruction.dst)
            else:
                tainted_registers.discard(instruction.dst)
        elif opcode is Opcode.ALU:
            assert instruction.dst is not None
            if in_secret_region or any(
                s in tainted_registers for s in instruction.sources
            ):
                tainted_registers.add(instruction.dst)
            else:
                tainted_registers.discard(instruction.dst)
        elif opcode is Opcode.LOAD:
            assert instruction.dst is not None
            address_tainted = instruction.address_register in tainted_registers
            if address_tainted:
                kind |= AnnotationKind.SECRET_RESOURCE_USE
            if address_tainted or memory_tainted or in_secret_region:
                tainted_registers.add(instruction.dst)
            else:
                tainted_registers.discard(instruction.dst)
        elif opcode is Opcode.STORE:
            address_tainted = instruction.address_register in tainted_registers
            if address_tainted:
                kind |= AnnotationKind.SECRET_RESOURCE_USE
            if in_secret_region or any(
                s in tainted_registers for s in instruction.sources
            ):
                memory_tainted = True
        elif opcode is Opcode.BRANCH:
            condition_tainted = (
                instruction.sources[0] in tainted_registers or in_secret_region
            )
            if condition_tainted:
                # The whole body becomes secret-control-dependent.
                secret_region_remaining = max(
                    secret_region_remaining, instruction.body_len
                )

        kinds.append(kind)

    return TaintReport(kinds=kinds)


def annotate(program: Program) -> AnnotationVector:
    """Convenience: analyze and return the annotation vector directly."""
    return analyze(program).annotation_vector()
