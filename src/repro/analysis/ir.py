"""A tiny instruction IR for the annotation analysis.

The paper assumes sound secret-dependence annotations produced by static
analyses (CacheAudit, CaSym, Abacus — Section 6.5). To make the pipeline
end-to-end executable, this package defines a miniature straight-line IR
with branches, loads/stores, and arithmetic, over which
:mod:`repro.analysis.taint` runs a conservative taint analysis that emits
exactly the two annotation kinds Untangle needs (Section 5.2):

1. secret-dependent *resource use* (tainted address operands), and
2. secret-dependent *control* (instructions control-dependent on a
   tainted branch).

Programs here are small by design — the point is a working, tested
annotator, not a production compiler.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import AnnotationError


class Opcode(enum.Enum):
    """Instruction opcodes of the miniature IR."""

    #: dst = constant
    CONST = "const"
    #: dst = src1 (arithmetic on) src2
    ALU = "alu"
    #: dst = memory[address_register + offset]
    LOAD = "load"
    #: memory[address_register + offset] = src
    STORE = "store"
    #: conditional branch on a register; its body is the next `body_len`
    #: instructions (structured control flow keeps the CFG trivial).
    BRANCH = "branch"
    #: read a secret input into dst
    READ_SECRET = "read_secret"
    #: read a public input into dst
    READ_PUBLIC = "read_public"


@dataclass(frozen=True)
class Instruction:
    """One IR instruction.

    Registers are named by strings. ``body_len`` is only meaningful for
    :attr:`Opcode.BRANCH`: the number of following instructions guarded
    by the branch.
    """

    opcode: Opcode
    dst: str | None = None
    sources: tuple[str, ...] = ()
    address_register: str | None = None
    offset: int = 0
    body_len: int = 0

    def __post_init__(self) -> None:
        if self.opcode in (Opcode.LOAD, Opcode.STORE) and self.address_register is None:
            raise AnnotationError(f"{self.opcode.value} needs an address register")
        if self.opcode is Opcode.BRANCH:
            if not self.sources:
                raise AnnotationError("branch needs a condition register")
            if self.body_len < 0:
                raise AnnotationError("branch body length must be non-negative")

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)


@dataclass
class Program:
    """A straight-line program with structured branches."""

    instructions: list[Instruction] = field(default_factory=list)

    def validate(self) -> None:
        """Check branch bodies stay inside the program."""
        for index, instruction in enumerate(self.instructions):
            if instruction.opcode is Opcode.BRANCH:
                if index + instruction.body_len > len(self.instructions) - 1:
                    raise AnnotationError(
                        f"branch at {index} guards {instruction.body_len} "
                        "instructions past the end of the program"
                    )

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self):
        return iter(self.instructions)


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def const(dst: str, value: int = 0) -> Instruction:
    return Instruction(Opcode.CONST, dst=dst, offset=value)


def alu(dst: str, *sources: str) -> Instruction:
    return Instruction(Opcode.ALU, dst=dst, sources=tuple(sources))


def load(dst: str, address_register: str, offset: int = 0) -> Instruction:
    return Instruction(
        Opcode.LOAD, dst=dst, address_register=address_register, offset=offset
    )


def store(src: str, address_register: str, offset: int = 0) -> Instruction:
    return Instruction(
        Opcode.STORE,
        sources=(src,),
        address_register=address_register,
        offset=offset,
    )


def branch(condition: str, body_len: int) -> Instruction:
    return Instruction(Opcode.BRANCH, sources=(condition,), body_len=body_len)


def read_secret(dst: str) -> Instruction:
    return Instruction(Opcode.READ_SECRET, dst=dst)


def read_public(dst: str) -> Instruction:
    return Instruction(Opcode.READ_PUBLIC, dst=dst)
