"""Execute an IR program into an annotated instruction stream.

This closes the loop from static analysis to simulation: a
:class:`~repro.analysis.ir.Program` is interpreted with concrete secret
and public inputs, emitting one dynamic instruction per executed IR
instruction. Memory instructions carry the line address computed from
register values; every dynamic instruction inherits the annotation kind
the taint analysis assigned to its static instruction.

The result is a :class:`~repro.sim.cpu.InstructionStream` that can run
on the simulator under any scheme — which is how the tests demonstrate,
end-to-end, that annotated Figure 1a/1b-style programs produce
secret-independent action sequences under Untangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.ir import Opcode, Program
from repro.analysis.taint import analyze
from repro.core.annotations import AnnotationKind, AnnotationVector
from repro.errors import AnnotationError
from repro.sim.cpu import InstructionStream


@dataclass
class ExecutionResult:
    """A dynamic execution of an IR program."""

    stream: InstructionStream
    registers: dict[str, int]
    executed_instructions: int


def execute(
    program: Program,
    secret_inputs: list[int],
    public_inputs: list[int] | None = None,
    *,
    repeat: int = 1,
    line_shift: int = 0,
) -> ExecutionResult:
    """Interpret ``program`` and build the annotated dynamic stream.

    Parameters
    ----------
    secret_inputs / public_inputs:
        Values consumed in order by ``READ_SECRET`` / ``READ_PUBLIC``.
        Inputs are re-consumed from the start on each repetition.
    repeat:
        Execute the whole program this many times (simple loop model).
    line_shift:
        Right-shift applied to byte addresses to form line addresses
        (zero means registers already hold line addresses).
    """
    if repeat < 1:
        raise AnnotationError("repeat must be >= 1")
    report = analyze(program)
    kinds = report.kinds
    public_inputs = public_inputs or []

    addresses: list[int] = []
    dynamic_kinds: list[AnnotationKind] = []
    registers: dict[str, int] = {}
    memory: dict[int, int] = {}
    executed = 0

    for _ in range(repeat):
        secret_cursor = 0
        public_cursor = 0
        index = 0
        skip_until = -1
        while index < len(program.instructions):
            instruction = program.instructions[index]
            if index <= skip_until:
                index += 1
                continue
            kind = kinds[index]
            address = -1
            opcode = instruction.opcode
            if opcode is Opcode.CONST:
                registers[instruction.dst] = instruction.offset  # type: ignore[index]
            elif opcode is Opcode.READ_SECRET:
                if secret_cursor >= len(secret_inputs):
                    raise AnnotationError("program reads more secrets than provided")
                registers[instruction.dst] = secret_inputs[secret_cursor]  # type: ignore[index]
                secret_cursor += 1
            elif opcode is Opcode.READ_PUBLIC:
                if public_cursor >= len(public_inputs):
                    raise AnnotationError("program reads more publics than provided")
                registers[instruction.dst] = public_inputs[public_cursor]  # type: ignore[index]
                public_cursor += 1
            elif opcode is Opcode.ALU:
                total = sum(registers.get(s, 0) for s in instruction.sources)
                registers[instruction.dst] = total  # type: ignore[index]
            elif opcode is Opcode.LOAD:
                byte_address = registers.get(instruction.address_register, 0) + instruction.offset
                address = byte_address >> line_shift
                registers[instruction.dst] = memory.get(address, 0)  # type: ignore[index]
            elif opcode is Opcode.STORE:
                byte_address = registers.get(instruction.address_register, 0) + instruction.offset
                address = byte_address >> line_shift
                memory[address] = registers.get(instruction.sources[0], 0)
            elif opcode is Opcode.BRANCH:
                condition = registers.get(instruction.sources[0], 0)
                if not condition:
                    skip_until = index + instruction.body_len
            addresses.append(address)
            dynamic_kinds.append(kind)
            executed += 1
            index += 1

    stream = InstructionStream(
        np.array(addresses, dtype=np.int64),
        AnnotationVector.from_kinds(dynamic_kinds),
    )
    return ExecutionResult(
        stream=stream, registers=registers, executed_instructions=executed
    )
