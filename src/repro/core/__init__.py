"""The Untangle framework core: the paper's primary contribution.

* :mod:`repro.core.actions`, :mod:`repro.core.trace` — resizing actions and
  traces (Section 3).
* :mod:`repro.core.decomposition` — action/scheduling leakage split
  (Section 5.1).
* :mod:`repro.core.principles` — the two design principles (Section 5.2).
* :mod:`repro.core.covert`, :mod:`repro.core.dinkelbach`,
  :mod:`repro.core.rates` — the scheduling-leakage covert-channel model and
  its max-rate solver (Section 5.3, Appendix A).
* :mod:`repro.core.accountant` — runtime leakage budgeting (Section 7).
* :mod:`repro.core.annotations` — secret-dependence annotations (Section 4).
"""

from repro.core.accountant import (
    AccountantReport,
    AssessmentCharge,
    ConservativeAccountant,
    LeakageAccountant,
)
from repro.core.actions import (
    ActionAlphabet,
    ActionKind,
    ResizingAction,
    action_sequence_key,
    maintain,
    resize,
)
from repro.core.annotations import (
    AnnotationKind,
    AnnotationSummary,
    AnnotationVector,
    concatenate_annotations,
)
from repro.core.covert import (
    CovertChannelModel,
    StrategyRate,
    no_delay,
    uniform_delay,
    worst_case_bits_per_assessment,
)
from repro.core.decomposition import (
    LeakageBreakdown,
    action_leakage,
    decompose,
    scheduling_leakage,
    total_leakage,
)
from repro.core.dinkelbach import (
    DinkelbachResult,
    RmaxResult,
    maximize_concave_on_simplex,
    solve_fractional,
    solve_rmax,
)
from repro.core.principles import (
    TimingIndependenceReport,
    check_timing_independence,
    require_progress_based_schedule,
    require_timing_independent_metric,
    require_untangle_compliant,
)
from repro.core.rates import RateEntry, RmaxTable, worst_case_table
from repro.core.trace import ResizingTrace, TraceEnsemble, TraceEvent

__all__ = [
    "ActionAlphabet",
    "ActionKind",
    "ResizingAction",
    "action_sequence_key",
    "maintain",
    "resize",
    "ResizingTrace",
    "TraceEnsemble",
    "TraceEvent",
    "LeakageBreakdown",
    "action_leakage",
    "scheduling_leakage",
    "total_leakage",
    "decompose",
    "CovertChannelModel",
    "StrategyRate",
    "uniform_delay",
    "no_delay",
    "worst_case_bits_per_assessment",
    "DinkelbachResult",
    "RmaxResult",
    "maximize_concave_on_simplex",
    "solve_fractional",
    "solve_rmax",
    "RmaxTable",
    "RateEntry",
    "worst_case_table",
    "LeakageAccountant",
    "ConservativeAccountant",
    "AccountantReport",
    "AssessmentCharge",
    "AnnotationKind",
    "AnnotationVector",
    "AnnotationSummary",
    "concatenate_annotations",
    "TimingIndependenceReport",
    "check_timing_independence",
    "require_timing_independent_metric",
    "require_progress_based_schedule",
    "require_untangle_compliant",
]
