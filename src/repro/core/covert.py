"""Covert-channel model of scheduling leakage (Section 5.3 of the paper).

The scheduling leakage of an Untangle scheme is upper-bounded by the
maximum data rate of a cooperative covert channel in which:

* the **sender** (victim) encodes an input symbol ``x`` as the duration
  ``d_x`` it remains at the current partition size before the next visible
  resizing action, with every duration at least the cooldown time ``T_c``
  (Mechanism 1, Section 5.3.2);
* the **receiver** (attacker) observes durations perturbed by the random
  action delays ``delta`` (Mechanism 2):
  ``d_y = d_x + delta_i - delta_{i-1}`` (Equation 5.8).

Timestamps have finite resolution; the model works on an integer grid
whose step is ``resolution`` time units, matching the paper's assumption
that the attacker measures time at finite resolution.

The channel's data rate for an input distribution ``p(x)`` is
``R = I(X^n; Y^n) / (n * T_avg)`` (Equation 5.9); Appendix A bounds
``I(X^n; Y^n) <= n (H(Y) - H(delta))`` so the rate objective optimized by
:mod:`repro.core.dinkelbach` is ``(H(Y) - H(delta)) / T_avg``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ChannelModelError
from repro.info.distributions import DiscreteDistribution
from repro.info.entropy import entropy_bits_vec


def uniform_delay(cooldown: int, resolution: int) -> DiscreteDistribution:
    """The evaluation's delay distribution: uniform over ``[0, T_c)``.

    Section 8: "The random delay in Untangle follows a uniform
    distribution between [0, 1 ms)". Delays are quantized to the model
    resolution.
    """
    if cooldown <= 0:
        raise ChannelModelError(f"cooldown {cooldown} must be positive")
    if resolution <= 0 or cooldown % resolution != 0:
        raise ChannelModelError(
            f"resolution {resolution} must be positive and divide cooldown {cooldown}"
        )
    return DiscreteDistribution.uniform(range(0, cooldown, resolution))


def no_delay() -> DiscreteDistribution:
    """Degenerate delay (always zero) — disables Mechanism 2."""
    return DiscreteDistribution.delta(0)


@dataclass(frozen=True)
class StrategyRate:
    """Result of evaluating one fixed transmission strategy."""

    bits_per_transmission: float
    average_transmission_time: float

    @property
    def rate(self) -> float:
        """Bits per time unit."""
        return self.bits_per_transmission / self.average_transmission_time


class CovertChannelModel:
    """The duration-encoding covert channel of Section 5.3.3.

    Parameters
    ----------
    cooldown:
        Minimum duration ``T_c`` between consecutive visible actions, in
        time units. Every input duration satisfies ``d_x >= T_c``.
    resolution:
        Attacker timing resolution in time units. Durations and delays
        live on this grid; it must divide ``cooldown``.
    max_duration:
        Horizon ``D_max``: the largest input duration the sender may use.
        The optimizer's alphabet is ``{T_c, T_c + res, ..., D_max}``.
        A finite horizon is required for a finite alphabet; because longer
        durations cost transmission time, the optimal distribution decays
        with duration and the bound is insensitive to the horizon once it
        is a few cooldowns wide (verified in tests).
    delay:
        Distribution of the random action delay ``delta`` (Mechanism 2).
        Support must be non-negative multiples of ``resolution``.
    """

    def __init__(
        self,
        cooldown: int,
        resolution: int,
        max_duration: int,
        delay: DiscreteDistribution | None = None,
    ):
        if resolution <= 0:
            raise ChannelModelError(f"resolution {resolution} must be positive")
        if cooldown <= 0 or cooldown % resolution != 0:
            raise ChannelModelError(
                f"cooldown {cooldown} must be a positive multiple of resolution"
            )
        if max_duration < cooldown:
            raise ChannelModelError(
                f"max_duration {max_duration} must be >= cooldown {cooldown}"
            )
        if delay is None:
            delay = no_delay()
        for value in delay.support:
            if not isinstance(value, int) or value < 0 or value % resolution != 0:
                raise ChannelModelError(
                    f"delay outcome {value!r} must be a non-negative multiple of the resolution"
                )
        self.cooldown = cooldown
        self.resolution = resolution
        self.max_duration = max_duration
        self.delay = delay

        # Internal integer grid: everything in units of `resolution`.
        self._durations = np.arange(
            cooldown, max_duration + 1, resolution, dtype=np.int64
        )
        self._delay_values = np.array(sorted(delay.support), dtype=np.int64)
        self._delay_probs = np.array(
            [delay.probability(int(v)) for v in self._delay_values], dtype=np.float64
        )
        self._delta_diff = self._compute_delta_difference()
        self._transition = self._compute_transition_matrix()

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------
    def _compute_delta_difference(self) -> tuple[np.ndarray, np.ndarray]:
        """Support and pmf of ``Delta = delta_i - delta_{i-1}`` on the grid."""
        values: dict[int, float] = {}
        for a, pa in zip(self._delay_values, self._delay_probs):
            for b, pb in zip(self._delay_values, self._delay_probs):
                diff = int(a - b)
                values[diff] = values.get(diff, 0.0) + float(pa * pb)
        support = np.array(sorted(values), dtype=np.int64)
        probs = np.array([values[int(v)] for v in support], dtype=np.float64)
        return support, probs

    def _compute_transition_matrix(self) -> np.ndarray:
        """Column-stochastic matrix ``A[y_index, x_index] = p(y | x)``.

        Output values ``y = d_x + Delta`` lie on the resolution grid; the
        output alphabet is the union over all inputs.
        """
        diff_support, diff_probs = self._delta_diff
        y_min = int(self._durations[0] + diff_support[0])
        y_max = int(self._durations[-1] + diff_support[-1])
        self._outputs = np.arange(y_min, y_max + 1, self.resolution, dtype=np.int64)
        index_of = {int(y): i for i, y in enumerate(self._outputs)}
        matrix = np.zeros((len(self._outputs), len(self._durations)), dtype=np.float64)
        for xi, d in enumerate(self._durations):
            for diff, p in zip(diff_support, diff_probs):
                matrix[index_of[int(d + diff)], xi] += float(p)
        return matrix

    # ------------------------------------------------------------------
    # Alphabets
    # ------------------------------------------------------------------
    @property
    def durations(self) -> np.ndarray:
        """Input alphabet: the duration ``d_x`` of each input symbol."""
        return self._durations.copy()

    @property
    def outputs(self) -> np.ndarray:
        """Output alphabet: possible observed durations ``d_y``."""
        return self._outputs.copy()

    @property
    def num_inputs(self) -> int:
        return int(self._durations.shape[0])

    @property
    def transition_matrix(self) -> np.ndarray:
        """``p(y | x)`` as a dense (|Y|, |X|) matrix (copy)."""
        return self._transition.copy()

    def delay_entropy_bits(self) -> float:
        """``H(delta)`` in bits — the subtracted term of Equation A.10."""
        return entropy_bits_vec(self._delay_probs)

    def delta_difference_distribution(self) -> DiscreteDistribution:
        """Distribution of ``delta_i - delta_{i-1}`` (for inspection/tests)."""
        support, probs = self._delta_diff
        return DiscreteDistribution(
            {int(v): float(p) for v, p in zip(support, probs)}
        )

    # ------------------------------------------------------------------
    # Rate components for an input distribution p(x)
    # ------------------------------------------------------------------
    def _check_input(self, p_x: np.ndarray) -> np.ndarray:
        p_x = np.asarray(p_x, dtype=np.float64)
        if p_x.shape != (self.num_inputs,):
            raise ChannelModelError(
                f"input distribution must have length {self.num_inputs}, got {p_x.shape}"
            )
        if np.any(p_x < -1e-12) or abs(float(p_x.sum()) - 1.0) > 1e-6:
            raise ChannelModelError("input distribution must be a probability vector")
        return np.clip(p_x, 0.0, None)

    def output_distribution(self, p_x: np.ndarray) -> np.ndarray:
        """``p(y) = sum_x p(y | x) p(x)`` over the output alphabet."""
        return self._transition @ self._check_input(p_x)

    def output_entropy_bits(self, p_x: np.ndarray) -> float:
        """``H(Y)`` in bits for input distribution ``p_x``."""
        return entropy_bits_vec(self.output_distribution(p_x))

    def average_transmission_time(self, p_x: np.ndarray) -> float:
        """``T_avg = sum_x p(x) d_x`` (Equation 5.7), in time units."""
        return float(self._durations @ self._check_input(p_x))

    def per_transmission_bits(self, p_x: np.ndarray) -> float:
        """Upper bound ``H(Y) - H(delta)`` on bits per transmission (Eq. A.10)."""
        return self.output_entropy_bits(p_x) - self.delay_entropy_bits()

    def rate(self, p_x: np.ndarray) -> float:
        """Rate objective ``(H(Y) - H(delta)) / T_avg`` in bits per time unit."""
        return self.per_transmission_bits(p_x) / self.average_transmission_time(p_x)

    def uniform_input(self) -> np.ndarray:
        """Uniform input distribution over the duration alphabet."""
        return np.full(self.num_inputs, 1.0 / self.num_inputs)

    # ------------------------------------------------------------------
    # Fixed noiseless strategies (Section 5.3.1 example)
    # ------------------------------------------------------------------
    @staticmethod
    def strategy_rate(
        durations: list[int], probabilities: list[float] | None = None
    ) -> StrategyRate:
        """Evaluate a fixed noiseless transmission strategy.

        With no random delay the receiver decodes symbols exactly, so the
        information per transmission is ``H(X)`` and the rate is
        ``H(X) / T_avg``. This reproduces the Section 5.3.1 example:
        4 symbols at 1..4 ms beat 8 symbols at 1..8 ms (800 vs ~667 bits/s).
        """
        if not durations:
            raise ChannelModelError("strategy needs at least one duration")
        if probabilities is None:
            probabilities = [1.0 / len(durations)] * len(durations)
        if len(probabilities) != len(durations):
            raise ChannelModelError("durations and probabilities must align")
        dist = DiscreteDistribution(
            {int(d): p for d, p in zip(durations, probabilities)}
        )
        bits = dist.entropy_bits()
        t_avg = sum(p * d for d, p in zip(durations, probabilities))
        return StrategyRate(bits_per_transmission=bits, average_transmission_time=t_avg)

    # ------------------------------------------------------------------
    def with_cooldown(self, cooldown: int, max_duration: int | None = None) -> "CovertChannelModel":
        """A copy of this model with a different cooldown.

        Used by the Maintain optimization (Section 5.3.4): ``n`` consecutive
        Maintains act like a cooldown of ``(n + 1) T_c``. The duration
        horizon scales proportionally unless overridden, and the delay
        distribution is unchanged (the delay mechanism is per-action).
        """
        if max_duration is None:
            span = self.max_duration - self.cooldown
            max_duration = cooldown + span
        return CovertChannelModel(
            cooldown=cooldown,
            resolution=self.resolution,
            max_duration=max_duration,
            delay=self.delay,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CovertChannelModel(cooldown={self.cooldown}, "
            f"resolution={self.resolution}, max_duration={self.max_duration}, "
            f"|X|={self.num_inputs}, |Y|={len(self._outputs)}, "
            f"H(delta)={self.delay_entropy_bits():.3f} bits)"
        )


def worst_case_bits_per_assessment(num_actions: int) -> float:
    """Prior-work conservative charge: ``log2 |A|`` bits per assessment.

    This is how the evaluation measures the Time scheme's leakage
    (Section 8: "We measure the leakage in Time with log |A| bits per
    assessment").
    """
    if num_actions < 1:
        raise ChannelModelError("need at least one action")
    return math.log2(num_actions)
