"""Resizing traces (Section 3.2 of the paper).

A *resizing trace* is a sequence of tuples, each containing a resizing
action and the time at which the action occurs. The leakage of a victim
program under a partitioning scheme is the entropy of the set of traces
that are *realizable* for that program across its inputs (Equation 5.1).

:class:`ResizingTrace` is one trace; :class:`TraceEnsemble` is a
probability distribution over realizable traces, with helpers to extract
the action-sequence marginal ``p(s)`` and the per-sequence timing
conditionals ``p(tau_s | s)`` used by the decomposition in Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.actions import ResizingAction, action_sequence_key
from repro.errors import TraceError
from repro.info.distributions import DiscreteDistribution


@dataclass(frozen=True)
class TraceEvent:
    """One entry of a resizing trace: an action and its timestamp."""

    action: ResizingAction
    timestamp: int

    def __post_init__(self) -> None:
        if self.timestamp < 0:
            raise TraceError(f"timestamp {self.timestamp} must be non-negative")


@dataclass(frozen=True)
class ResizingTrace:
    """An ordered sequence of resizing events with strictly increasing times.

    The paper represents timestamps as finite-resolution integers
    (Section 5.1); we do the same.
    """

    events: tuple[TraceEvent, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        previous = -1
        for event in self.events:
            if event.timestamp <= previous:
                raise TraceError(
                    "trace timestamps must be strictly increasing, "
                    f"saw {event.timestamp} after {previous}"
                )
            previous = event.timestamp

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[ResizingAction, int]]
    ) -> "ResizingTrace":
        """Build a trace from ``(action, timestamp)`` pairs."""
        return cls(tuple(TraceEvent(action, ts) for action, ts in pairs))

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def action_sequence(self) -> tuple[ResizingAction, ...]:
        """The actions of the trace, in order (the value of ``S``)."""
        return tuple(event.action for event in self.events)

    @property
    def action_key(self) -> tuple[int, ...]:
        """Hashable canonical key of the action sequence."""
        return action_sequence_key(self.action_sequence)

    @property
    def timing_sequence(self) -> tuple[int, ...]:
        """The timestamps of the trace, in order (the value of ``T_s``)."""
        return tuple(event.timestamp for event in self.events)

    @property
    def visible_events(self) -> tuple[TraceEvent, ...]:
        """Events whose action is attacker-visible (changes the size)."""
        return tuple(e for e in self.events if e.action.is_visible)

    def visible_view(self) -> "ResizingTrace":
        """The trace as the idealized attacker observes it.

        Maintain actions are invisible (Section 5.3.4), so the attacker's
        view contains only the size-changing events.
        """
        return ResizingTrace(self.visible_events)

    def inter_event_gaps(self) -> tuple[int, ...]:
        """Durations between consecutive events (first gap from time 0)."""
        gaps = []
        previous = 0
        for event in self.events:
            gaps.append(event.timestamp - previous)
            previous = event.timestamp
        return tuple(gaps)

    def maintain_run_lengths(self) -> tuple[int, ...]:
        """Lengths of the consecutive-Maintain runs preceding visible actions.

        Used by the optimized covert-channel model (Section 5.3.4): ``n``
        consecutive Maintains before a visible action stretch the effective
        cooldown of that action to ``(n + 1) T_c``.
        """
        runs = []
        current = 0
        for event in self.events:
            if event.action.is_maintain:
                current += 1
            else:
                runs.append(current)
                current = 0
        return tuple(runs)


class TraceEnsemble:
    """A probability distribution over realizable resizing traces.

    This is the object whose entropy *is* the program's leakage
    (Equation 5.1). The ensemble also exposes the two marginal views the
    decomposition needs:

    * :meth:`action_distribution` — ``p(s)`` over action-sequence keys.
    * :meth:`timing_conditionals` — ``p(tau_s | s)`` for every ``s``.
    """

    def __init__(self, traces: Mapping[ResizingTrace, float]):
        if not traces:
            raise TraceError("trace ensemble must contain at least one trace")
        self._distribution = DiscreteDistribution(dict(traces))

    @classmethod
    def equally_likely(cls, traces: Sequence[ResizingTrace]) -> "TraceEnsemble":
        """Uniform ensemble over the given traces.

        Duplicate traces accumulate probability mass — two inputs that
        produce the same trace make that trace twice as likely, exactly
        the semantics of enumerating inputs (Section 3.2).
        """
        if not traces:
            raise TraceError("trace ensemble must contain at least one trace")
        p = 1.0 / len(traces)
        pmf: dict[ResizingTrace, float] = {}
        for trace in traces:
            pmf[trace] = pmf.get(trace, 0.0) + p
        return cls(pmf)

    @property
    def distribution(self) -> DiscreteDistribution:
        """The underlying distribution over :class:`ResizingTrace` objects."""
        return self._distribution

    def traces(self) -> list[ResizingTrace]:
        """The realizable traces (the support)."""
        return list(self._distribution.support)

    def probability(self, trace: ResizingTrace) -> float:
        return self._distribution.probability(trace)

    def action_distribution(self) -> DiscreteDistribution:
        """Marginal distribution ``p(s)`` over action-sequence keys."""
        return self._distribution.map(lambda trace: trace.action_key)

    def timing_conditionals(self) -> dict[tuple[int, ...], DiscreteDistribution]:
        """``p(tau_s | s)`` for each realizable action sequence ``s``.

        Keys are action-sequence keys; values are distributions over timing
        sequences (tuples of timestamps).
        """
        grouped: dict[tuple[int, ...], dict[tuple[int, ...], float]] = {}
        for trace, p in self._distribution.items():
            bucket = grouped.setdefault(trace.action_key, {})
            timing = trace.timing_sequence
            bucket[timing] = bucket.get(timing, 0.0) + p
        return {
            key: DiscreteDistribution.from_counts(bucket)
            for key, bucket in grouped.items()
        }

    def joint_distribution(self) -> DiscreteDistribution:
        """Joint distribution over ``(action_key, timing_sequence)`` pairs."""
        return self._distribution.map(
            lambda trace: (trace.action_key, trace.timing_sequence)
        )
