"""Dinkelbach's transform for the max-rate problem (Appendix A).

The scheduling-leakage bound requires solving the single-ratio fractional
program

``R'_max = max_{p(x)} (H(Y) - H(delta)) / T_avg``   (Equation A.11)

over the probability simplex. Dinkelbach's transform reduces it to a
sequence of concave maximizations ``F(q) = max_p {N(p) - q D(p)}``; each
inner problem is solved here with exponentiated-gradient (mirror-descent)
ascent, which keeps iterates on the simplex by construction. The paper
used PyTorch's Adam for the inner problem; exponentiated gradient solves
the same concave program (the objective is concave because ``H(Y)`` is
concave in ``p(x)`` and ``T_avg`` is linear) without a deep-learning
dependency.

After convergence the upper-bound guess ``q' = q_n + margin`` is verified
by checking ``F(q') <= 0`` (strict monotonic decrease of ``F`` makes any
such ``q'`` a certified upper bound of the optimum, per Appendix A).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.covert import CovertChannelModel
from repro.errors import OptimizationError
from repro.info.entropy import entropy_gradient_vec

#: Floor applied inside exponentiated-gradient updates to keep every
#: coordinate alive (EG cannot resurrect an exactly-zero coordinate).
_PROBABILITY_FLOOR = 1e-12


def _project_floor(p: np.ndarray) -> np.ndarray:
    p = np.maximum(p, _PROBABILITY_FLOOR)
    return p / p.sum()


def maximize_concave_on_simplex(
    objective: Callable[[np.ndarray], float],
    gradient: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    iterations: int = 400,
    restarts: int = 3,
    seed: int = 0,
    gradient_rows: Callable[[np.ndarray], np.ndarray] | None = None,
) -> tuple[np.ndarray, float]:
    """Maximize a concave function over the probability simplex.

    Exponentiated-gradient ascent with a decaying step size and random
    restarts (the problem is concave, so restarts only guard against slow
    progress from poor scaling, not local optima).

    ``gradient_rows``, when provided, evaluates the gradient for a whole
    ``(restarts, n)`` matrix of iterates at once (one row per restart)
    and replaces the per-restart ``gradient`` calls in the inner loop —
    worthwhile because the loop runs tens of thousands of times on small
    vectors, where per-call dispatch dominates.

    Returns the best ``(p, objective(p))`` found.
    """
    if n < 1:
        raise OptimizationError("simplex dimension must be >= 1")
    if n == 1:
        p = np.ones(1)
        return p, objective(p)

    rng = np.random.default_rng(seed)
    starts = [np.full(n, 1.0 / n)]
    for _ in range(max(restarts - 1, 0)):
        starts.append(_project_floor(rng.dirichlet(np.ones(n))))

    # All restarts advance in lock-step as rows of one (S, n) array: the
    # EG update (center, step, exp, floor, renormalize) is a handful of
    # elementwise array ops whose fixed numpy dispatch cost would
    # otherwise be paid once per restart per iteration. The gradient
    # callable still sees one probability vector at a time.
    pbatch = np.stack(starts)
    nstarts = pbatch.shape[0]
    if gradient_rows is not None:
        grads = np.asarray(gradient_rows(pbatch), dtype=np.float64)
    else:
        grads = np.empty_like(pbatch)
        for i in range(nstarts):
            grads[i] = gradient(pbatch[i])
    scale = np.max(np.abs(grads), axis=1)
    scale[scale == 0.0] = 1.0
    base_step = (1.0 / scale)[:, None]
    # Overflow in exp is impossible: the exponent is clamped to [-30, 30].
    for t in range(1, iterations + 1):
        if gradient_rows is not None:
            grads = np.asarray(gradient_rows(pbatch), dtype=np.float64)
        else:
            for i in range(nstarts):
                grads[i] = gradient(pbatch[i])
        # Center the gradient: adding a constant to all coordinates
        # does not change the EG direction but improves conditioning.
        grads -= np.einsum("ij,ij->i", pbatch, grads)[:, None]
        grads *= base_step / np.sqrt(t)
        np.clip(grads, -30.0, 30.0, out=grads)
        np.exp(grads, out=grads)
        pbatch *= grads
        np.maximum(pbatch, _PROBABILITY_FLOOR, out=pbatch)
        pbatch /= pbatch.sum(axis=1, keepdims=True)
    best_p: np.ndarray | None = None
    best_value = -np.inf
    for i in range(nstarts):
        value = objective(pbatch[i])
        if value > best_value:
            best_value = value
            best_p = pbatch[i]
    assert best_p is not None
    return best_p.copy(), best_value


@dataclass
class DinkelbachResult:
    """Outcome of a Dinkelbach fractional-programming solve.

    Attributes
    ----------
    optimum:
        The converged ratio ``q_n ~= max N/D``.
    upper_bound:
        A value ``q' >= optimum`` that passed the ``F(q') <= 0`` check.
    argmax:
        The input distribution achieving ``optimum``.
    q_history:
        The sequence of ``q_i`` iterates (monotonically non-decreasing).
    converged:
        Whether ``F(q_n) < tolerance`` was reached within the budget.
    bound_verified:
        Whether the ``F(q') <= 0`` verification succeeded.
    """

    optimum: float
    upper_bound: float
    argmax: np.ndarray
    q_history: list[float] = field(default_factory=list)
    converged: bool = True
    bound_verified: bool = True


def solve_fractional(
    numerator: Callable[[np.ndarray], float],
    denominator: Callable[[np.ndarray], float],
    numerator_gradient: Callable[[np.ndarray], np.ndarray],
    denominator_gradient: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    tolerance: float = 1e-6,
    max_outer_iterations: int = 30,
    inner_iterations: int = 400,
    bound_margin: float = 0.02,
    seed: int = 0,
    certify: bool = True,
    numerator_gradient_rows: Callable[[np.ndarray], np.ndarray] | None = None,
    denominator_gradient_rows: Callable[[np.ndarray], np.ndarray] | None = None,
) -> DinkelbachResult:
    """Solve ``max_p N(p)/D(p)`` over the simplex via Dinkelbach's transform.

    ``N`` must be concave, ``D`` positive and linear (or convex), so that
    the helper ``F(q) = max_p {N(p) - q D(p)}`` is a concave maximization
    for each ``q`` and strictly monotonically decreasing in ``q``.

    With ``certify=True`` the upper-bound guess ``q' = q_n * (1 + margin)``
    is checked by re-maximizing ``F(q')`` (the paper's empirical check —
    heuristic, since the re-maximization lower-bounds ``F``). Problem-
    specific *sound* certificates, where available, are preferable; see
    :func:`certified_rate_upper_bound` for the covert-channel instance.
    ``bound_margin`` is relative to ``q_n``.
    """

    def solve_inner(q: float, iterations: int, seed_offset: int) -> tuple[np.ndarray, float]:
        rows = None
        if (
            numerator_gradient_rows is not None
            and denominator_gradient_rows is not None
        ):
            # One batched gradient per iteration for all restart rows.
            rows = lambda pbatch: (  # noqa: E731
                numerator_gradient_rows(pbatch)
                - q * denominator_gradient_rows(pbatch)
            )
        return maximize_concave_on_simplex(
            lambda p: numerator(p) - q * denominator(p),
            lambda p: numerator_gradient(p) - q * denominator_gradient(p),
            n,
            iterations=iterations,
            seed=seed + seed_offset,
            gradient_rows=rows,
        )

    q = 0.0
    history: list[float] = []
    converged = False
    p_star = np.full(n, 1.0 / n)
    best_q = -np.inf
    best_p = p_star
    for outer in range(max_outer_iterations):
        p_star, f_value = solve_inner(q, inner_iterations, outer)
        d_value = denominator(p_star)
        if d_value <= 0:
            raise OptimizationError("denominator must be positive on the simplex")
        q_next = numerator(p_star) / d_value
        history.append(q_next)
        if q_next > best_q:
            best_q = q_next
            best_p = p_star
        if f_value < tolerance and q_next <= q + tolerance:
            converged = True
            break
        q = q_next
    # Report the best achieved ratio and its witness distribution (the
    # last inner solve can land slightly below an earlier iterate).
    q = best_q
    p_star = best_p

    # Upper-bound check (Appendix A): guess q' = q * (1 + margin) and
    # empirically verify F(q') <= 0, growing the margin until it passes.
    bound_verified = True
    upper = q
    if certify:
        margin = bound_margin
        bound_verified = False
        scale = abs(q) if q != 0.0 else 1.0
        for attempt in range(8):
            candidate = q + margin * scale
            _, f_candidate = solve_inner(
                candidate, inner_iterations * 2, 100 + attempt
            )
            if f_candidate <= 0.0:
                upper = candidate
                bound_verified = True
                break
            margin *= 2.0
        if not bound_verified:
            upper = q + margin * scale

    return DinkelbachResult(
        optimum=q,
        upper_bound=upper,
        argmax=p_star,
        q_history=history,
        converged=converged,
        bound_verified=bound_verified,
    )


def certified_rate_upper_bound(
    transition: np.ndarray,
    durations: np.ndarray,
    delay_entropy_bits: float,
    reference_output: np.ndarray,
) -> float:
    """A *sound* upper bound on ``max_p (H(Y) - H(delta)) / T_avg``.

    Classic dual (Blahut-Arimoto / Topsoe) bound: for any reference
    output distribution ``r``, concavity of entropy gives
    ``H(Ap) <= -sum_y (Ap)_y log2 r_y = sum_x p_x c_x(r)`` with
    ``c_x(r) = -sum_y A[y,x] log2 r_y`` and equality at ``r = Ap``.
    Hence for every ``p`` on the simplex::

        (H(Y) - H(delta)) / (d . p) <= max_x (c_x(r) - H(delta)) / d_x

    Evaluating the right side at ``r = A p_hat`` with ``p_hat`` the
    solver's (near-optimal) input distribution yields a certificate that
    is tight at the optimum — unlike heuristically re-running the inner
    maximizer, which only *lower*-bounds ``F(q')`` and therefore cannot
    soundly verify ``F(q') <= 0``.
    """
    r = np.asarray(reference_output, dtype=np.float64)
    r = np.clip(r, 1e-300, None)
    cost = -(transition.T @ np.log2(r))
    ratios = (cost - delay_entropy_bits) / np.asarray(durations, dtype=np.float64)
    return float(np.max(ratios))


@dataclass(frozen=True)
class RmaxResult:
    """Maximum-rate solution for one covert-channel model.

    Rates are in bits per time unit of the model.
    """

    rate: float
    rate_upper_bound: float
    input_distribution: np.ndarray
    bits_per_transmission: float
    average_transmission_time: float
    converged: bool
    bound_verified: bool


def solve_rmax(
    model: CovertChannelModel,
    *,
    tolerance: float = 1e-6,
    max_outer_iterations: int = 30,
    inner_iterations: int = 400,
    seed: int = 0,
) -> RmaxResult:
    """Compute ``R'_max`` for a covert-channel model (Appendix A).

    This is the upper bound on the scheduling-leakage rate used by the
    runtime accountant. The returned ``rate_upper_bound`` passed the
    ``F(q') <= 0`` certification.
    """
    transition = np.ascontiguousarray(model.transition_matrix, dtype=np.float64)
    # The gradient is evaluated tens of thousands of times per solve; a
    # C-contiguous transpose keeps both matvecs on the fast BLAS path.
    transition_t = np.ascontiguousarray(transition.T)
    durations = model.durations.astype(np.float64)
    h_delta = model.delay_entropy_bits()

    def numerator(p: np.ndarray) -> float:
        return model.output_entropy_bits(p) - h_delta

    def numerator_gradient(p: np.ndarray) -> np.ndarray:
        p_y = transition @ p
        return transition_t @ entropy_gradient_vec(p_y)

    def numerator_gradient_rows(pbatch: np.ndarray) -> np.ndarray:
        # Row-wise twin of numerator_gradient: (S, n) iterates in, one
        # (S, n) gradient matrix out, via two matmuls instead of 2 S
        # matvecs (entropy_gradient_vec is elementwise, so it batches).
        p_y = pbatch @ transition_t
        return entropy_gradient_vec(p_y) @ transition

    def denominator(p: np.ndarray) -> float:
        return float(durations @ p)

    def denominator_gradient(p: np.ndarray) -> np.ndarray:
        return durations

    def denominator_gradient_rows(pbatch: np.ndarray) -> np.ndarray:
        return durations  # broadcasts over the rows

    result = solve_fractional(
        numerator,
        denominator,
        numerator_gradient,
        denominator_gradient,
        model.num_inputs,
        tolerance=tolerance,
        max_outer_iterations=max_outer_iterations,
        inner_iterations=inner_iterations,
        seed=seed,
        certify=False,
        numerator_gradient_rows=numerator_gradient_rows,
        denominator_gradient_rows=denominator_gradient_rows,
    )
    p_star = result.argmax
    certified = certified_rate_upper_bound(
        transition, durations, h_delta, transition @ p_star
    )
    # The certificate can only exceed the achieved ratio; numerical
    # residue aside, their gap measures solver convergence.
    upper = max(certified, result.optimum)
    return RmaxResult(
        rate=result.optimum,
        rate_upper_bound=upper,
        input_distribution=p_star,
        bits_per_transmission=numerator(p_star),
        average_transmission_time=denominator(p_star),
        converged=result.converged,
        bound_verified=True,
    )
