"""Runtime leakage accounting (Sections 4, 6.2 and 7 of the paper).

The victim sets a leakage threshold; the scheme measures runtime leakage
and guarantees it never exceeds that threshold — when the budget is
exhausted, further resizing is disallowed (performance degrades, security
does not). :class:`LeakageAccountant` implements this bookkeeping for an
Untangle domain, including:

* the Maintain-aware charging policy of Section 7 (charge interval at
  rate ``R_max_m``; retroactively lower the charge when the next action
  turns out to be another Maintain);
* cross-run accumulation against replay attackers (Section 6.2).

:class:`ConservativeAccountant` implements the prior-work policy used for
the Time scheme: a flat ``log2 |A|`` bits at every assessment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.rates import RmaxTable
from repro.errors import LeakageBudgetExceeded, SimulationError


@dataclass
class AssessmentCharge:
    """Record of the leakage charged for one assessment."""

    timestamp: int
    visible: bool
    maintain_run_before: int
    bits: float


@dataclass
class AccountantReport:
    """Summary statistics of an accountant after a run."""

    total_bits: float
    assessments: int
    visible_actions: int
    bits_per_assessment: float
    maintain_fraction: float
    budget_exhausted: bool


class LeakageAccountant:
    """Untangle's runtime leakage meter for one security domain.

    Parameters
    ----------
    table:
        Precomputed :class:`~repro.core.rates.RmaxTable` of certified rates.
    threshold_bits:
        The victim's leakage budget. ``None`` disables enforcement (the
        evaluation runs with no threshold: "We do not set a leakage
        threshold for a workload; we allow it to freely resize and then
        measure its leakage", Section 8).
    """

    def __init__(self, table: RmaxTable, threshold_bits: float | None = None):
        if threshold_bits is not None and threshold_bits < 0:
            raise SimulationError("leakage threshold must be non-negative")
        self._table = table
        self._threshold = threshold_bits
        self._total_bits = 0.0
        self._carried_bits = 0.0
        self._charges: list[AssessmentCharge] = []
        self._maintain_run = 0
        self._last_event_time: int | None = None
        self._pending_interval = 0
        self._pending_bits = 0.0

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def total_bits(self) -> float:
        """Accumulated leakage, including leakage carried from prior runs."""
        return self._carried_bits + self._total_bits

    @property
    def run_bits(self) -> float:
        """Leakage accumulated in the current run only."""
        return self._total_bits

    @property
    def threshold_bits(self) -> float | None:
        return self._threshold

    @property
    def budget_exhausted(self) -> bool:
        """Whether the threshold has been reached (resizing disallowed)."""
        return self._threshold is not None and self.total_bits >= self._threshold

    @property
    def resizing_allowed(self) -> bool:
        """Whether the scheme may still perform visible resizes."""
        return not self.budget_exhausted

    @property
    def charges(self) -> list[AssessmentCharge]:
        return list(self._charges)

    @property
    def current_maintain_run(self) -> int:
        """Consecutive Maintains since the last visible action."""
        return self._maintain_run

    # ------------------------------------------------------------------
    # Charging (Section 7 policy)
    # ------------------------------------------------------------------
    def _effective_level(self, span: int) -> int:
        """Rate-table level justified by a transmission span.

        A run of ``n`` consecutive Maintains stretches the effective
        cooldown of the enclosing transmission to ``(n + 1) T_c``
        (Section 5.3.4). The same argument applies whenever the realized
        gap between visible actions is long for *any* reason (e.g. slow
        progress): a gap of ``span`` certifies every inter-action time of
        this channel use is at least ``span``, so the rate bound for
        cooldown ``floor(span / T_c) * T_c`` applies. Levels clamp to the
        table capacity (conservative — rates decrease with level).
        """
        if span <= 0:
            return 0
        return max(0, span // self._table.cooldown - 1)

    def on_assessment(self, timestamp: int, visible: bool) -> float:
        """Record one assessment and return the *net* bits charged for it.

        The transmission pending since the last visible action spans
        ``s`` time units; its total charge is ``R_max_e * s`` with ``e``
        the effective level of ``s``. At each assessment the pending
        charge is brought up to date (conservatively assuming the action
        is visible, per Section 7); if the action turns out to be another
        Maintain the span simply keeps growing and later re-pricings use
        the lower rate of the higher level — the runtime switch from
        ``R_max_m`` to ``R_max_{m+1}`` the paper describes.
        """
        if self._last_event_time is not None and timestamp < self._last_event_time:
            raise SimulationError(
                f"assessment timestamps must be non-decreasing "
                f"({timestamp} after {self._last_event_time})"
            )
        if self.budget_exhausted:
            # The threshold froze the partition permanently: no visible
            # action can ever occur again, so the channel is closed and
            # assessments stop leaking ("hurting the performance of its
            # subsequent execution, but not its security", Section 4).
            self._last_event_time = timestamp
            self._charges.append(
                AssessmentCharge(
                    timestamp=timestamp,
                    visible=False,
                    maintain_run_before=self._maintain_run,
                    bits=0.0,
                )
            )
            self._maintain_run += 1
            return 0.0
        interval = (
            timestamp - self._last_event_time
            if self._last_event_time is not None
            else self._table.cooldown
        )
        self._last_event_time = timestamp

        m = self._maintain_run
        before_total = self._total_bits
        span = self._pending_interval + max(interval, 1)
        level = self._effective_level(span)
        repriced = self._table.bits_for_interval(level, span)
        # Charges never decrease: the attacker has already observed time
        # passing, so previously-counted bits cannot be taken back.
        new_pending = max(self._pending_bits, repriced)
        self._total_bits += new_pending - self._pending_bits
        if visible:
            self._pending_interval = 0
            self._pending_bits = 0.0
            self._maintain_run = 0
        else:
            self._pending_interval = span
            self._pending_bits = new_pending
            self._maintain_run += 1

        net = self._total_bits - before_total
        self._charges.append(
            AssessmentCharge(
                timestamp=timestamp,
                visible=visible,
                maintain_run_before=m,
                bits=net,
            )
        )
        return net

    def check_resize_allowed(self, strict: bool = False) -> bool:
        """Whether a visible resize may proceed under the budget.

        With ``strict=True`` raises :class:`LeakageBudgetExceeded` instead
        of returning ``False``.
        """
        if self.resizing_allowed:
            return True
        if strict:
            raise LeakageBudgetExceeded(
                f"leakage budget exhausted: {self.total_bits:.3f} bits "
                f">= threshold {self._threshold} bits"
            )
        return False

    # ------------------------------------------------------------------
    # Cross-run accumulation (replay attacker, Section 6.2)
    # ------------------------------------------------------------------
    def start_new_run(self) -> None:
        """Carry the accumulated leakage into a fresh run of the victim.

        The OS keeps accumulating leakage across replays of the program;
        the threshold applies to the accumulated total.
        """
        self._carried_bits += self._total_bits
        self._total_bits = 0.0
        self._charges = []
        self._maintain_run = 0
        self._last_event_time = None
        self._pending_interval = 0
        self._pending_bits = 0.0

    # ------------------------------------------------------------------
    def report(self) -> AccountantReport:
        """Summary of the current run's charges."""
        assessments = len(self._charges)
        visible = sum(1 for c in self._charges if c.visible)
        per_assessment = self._total_bits / assessments if assessments else 0.0
        maintain_fraction = (
            (assessments - visible) / assessments if assessments else 0.0
        )
        return AccountantReport(
            total_bits=self._total_bits,
            assessments=assessments,
            visible_actions=visible,
            bits_per_assessment=per_assessment,
            maintain_fraction=maintain_fraction,
            budget_exhausted=self.budget_exhausted,
        )


class ConservativeAccountant:
    """Prior-work accounting: a flat ``log2 |A|`` bits per assessment.

    Models the leakage overestimation described in Section 3.3 and applied
    to the Time scheme in the evaluation. Maintains are charged like any
    other action because, without Untangle's principles, the assessment's
    action choice itself is assumed to carry ``log2 |A|`` bits.
    """

    def __init__(self, num_actions: int, threshold_bits: float | None = None):
        if num_actions < 1:
            raise SimulationError("need at least one action")
        self._bits_per_assessment = math.log2(num_actions)
        self._threshold = threshold_bits
        self._total_bits = 0.0
        self._assessments = 0
        self._visible = 0

    @property
    def total_bits(self) -> float:
        return self._total_bits

    @property
    def budget_exhausted(self) -> bool:
        return self._threshold is not None and self._total_bits >= self._threshold

    @property
    def resizing_allowed(self) -> bool:
        return not self.budget_exhausted

    def on_assessment(self, timestamp: int, visible: bool) -> float:
        self._assessments += 1
        if visible:
            self._visible += 1
        self._total_bits += self._bits_per_assessment
        return self._bits_per_assessment

    def check_resize_allowed(self, strict: bool = False) -> bool:
        if self.resizing_allowed:
            return True
        if strict:
            raise LeakageBudgetExceeded(
                f"leakage budget exhausted: {self._total_bits:.3f} bits"
            )
        return False

    def report(self) -> AccountantReport:
        per_assessment = (
            self._total_bits / self._assessments if self._assessments else 0.0
        )
        maintain_fraction = (
            (self._assessments - self._visible) / self._assessments
            if self._assessments
            else 0.0
        )
        return AccountantReport(
            total_bits=self._total_bits,
            assessments=self._assessments,
            visible_actions=self._visible,
            bits_per_assessment=per_assessment,
            maintain_fraction=maintain_fraction,
            budget_exhausted=self.budget_exhausted,
        )
