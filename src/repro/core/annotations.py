"""Secret-dependence annotations (Sections 4, 5.2, 6.1 of the paper).

Untangle assumes sound annotations of two kinds of instructions:

1. Instructions that *use the partitioned resource* and are data- or
   control-dependent on secrets — their contribution is excluded from the
   utilization metric.
2. Instructions that are *control-dependent on secrets* (whether or not
   they use the resource) — they are excluded from execution-progress
   counting.

Section 6.1 extends the same mechanism to timing-dependent dynamic
instruction sequences (spin loops, time checks): those regions get both
annotations.

This module defines the annotation vocabulary used by the workload models
(:mod:`repro.workloads`) and produced by the toy static analysis
(:mod:`repro.analysis`). Annotations are carried per dynamic instruction
as compact boolean arrays, matching how the simulator consumes them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import AnnotationError


class AnnotationKind(enum.Flag):
    """Bit flags describing why an instruction is excluded."""

    NONE = 0
    #: Secret-dependent use of the partitioned resource (data or control).
    SECRET_RESOURCE_USE = enum.auto()
    #: Control-dependence on a secret (excluded from progress counting).
    SECRET_CONTROL = enum.auto()
    #: Timing-dependent dynamic instruction sequence (Section 6.1).
    TIMING_DEPENDENT = enum.auto()


@dataclass(frozen=True)
class AnnotationSummary:
    """Aggregate statistics of an annotation vector."""

    total_instructions: int
    excluded_from_metric: int
    excluded_from_progress: int

    @property
    def metric_exclusion_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.excluded_from_metric / self.total_instructions

    @property
    def progress_exclusion_fraction(self) -> float:
        if self.total_instructions == 0:
            return 0.0
        return self.excluded_from_progress / self.total_instructions


class AnnotationVector:
    """Per-dynamic-instruction annotations for an instruction stream.

    Internally stores two boolean numpy arrays aligned with the stream:

    * ``metric_excluded`` — instruction must not contribute to the
      utilization metric (annotation kind 1 or 3 above).
    * ``progress_excluded`` — instruction must not count toward execution
      progress (annotation kind 2 or 3 above).

    The conservative whole-region annotation the paper mentions ("annotate
    all the instructions from the part of the program that handles
    secrets", Section 4) corresponds to setting both arrays over a region.
    """

    __slots__ = ("metric_excluded", "progress_excluded")

    def __init__(
        self,
        metric_excluded: np.ndarray,
        progress_excluded: np.ndarray,
    ):
        metric_excluded = np.asarray(metric_excluded, dtype=bool)
        progress_excluded = np.asarray(progress_excluded, dtype=bool)
        if metric_excluded.shape != progress_excluded.shape:
            raise AnnotationError(
                "metric and progress annotation arrays must have equal length"
            )
        if metric_excluded.ndim != 1:
            raise AnnotationError("annotation arrays must be one-dimensional")
        self.metric_excluded = metric_excluded
        self.progress_excluded = progress_excluded

    # ------------------------------------------------------------------
    @classmethod
    def public(cls, length: int) -> "AnnotationVector":
        """All-public stream: nothing excluded."""
        return cls(np.zeros(length, dtype=bool), np.zeros(length, dtype=bool))

    @classmethod
    def fully_secret(cls, length: int) -> "AnnotationVector":
        """Conservative whole-stream annotation: everything excluded.

        This is what the evaluation applies to the crypto benchmarks
        ("we conservatively assume that all instructions from the
        cryptographic benchmark are secret-dependent", Section 8).
        """
        return cls(np.ones(length, dtype=bool), np.ones(length, dtype=bool))

    @classmethod
    def from_kinds(cls, kinds: list[AnnotationKind]) -> "AnnotationVector":
        """Build from a per-instruction list of :class:`AnnotationKind` flags."""
        n = len(kinds)
        metric = np.zeros(n, dtype=bool)
        progress = np.zeros(n, dtype=bool)
        for i, kind in enumerate(kinds):
            if kind & (AnnotationKind.SECRET_RESOURCE_USE | AnnotationKind.TIMING_DEPENDENT):
                metric[i] = True
            if kind & (AnnotationKind.SECRET_CONTROL | AnnotationKind.TIMING_DEPENDENT):
                progress[i] = True
            # Control-dependence on a secret also taints any resource use
            # performed by the instruction, so it is metric-excluded too.
            if kind & AnnotationKind.SECRET_CONTROL:
                metric[i] = True
        return cls(metric, progress)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.metric_excluded.shape[0])

    def concatenate(self, other: "AnnotationVector") -> "AnnotationVector":
        """Annotations for the concatenation of two streams."""
        return AnnotationVector(
            np.concatenate([self.metric_excluded, other.metric_excluded]),
            np.concatenate([self.progress_excluded, other.progress_excluded]),
        )

    def slice(self, start: int, stop: int) -> "AnnotationVector":
        """Annotations for a sub-stream."""
        return AnnotationVector(
            self.metric_excluded[start:stop], self.progress_excluded[start:stop]
        )

    def summary(self) -> AnnotationSummary:
        """Aggregate statistics for reporting."""
        return AnnotationSummary(
            total_instructions=len(self),
            excluded_from_metric=int(self.metric_excluded.sum()),
            excluded_from_progress=int(self.progress_excluded.sum()),
        )

    def public_progress_count(self) -> int:
        """Number of instructions that count toward execution progress."""
        return int((~self.progress_excluded).sum())


def concatenate_annotations(vectors: list[AnnotationVector]) -> AnnotationVector:
    """Concatenate a list of annotation vectors into one."""
    if not vectors:
        raise AnnotationError("cannot concatenate an empty list of annotations")
    metric = np.concatenate([v.metric_excluded for v in vectors])
    progress = np.concatenate([v.progress_excluded for v in vectors])
    return AnnotationVector(metric, progress)
