"""Resizing actions and action alphabets (Section 3.1 of the paper).

A dynamic partitioning scheme defines a set of *resizing actions*. The
paper considers two styles:

* Relative actions: ``Expand`` / ``Shrink`` / ``Maintain``.
* Absolute actions: "set the partition size to one of a pre-defined list
  of supported sizes" — the style used in the LLC evaluation (Section 8),
  where the list has 9 entries and Time therefore leaks ``log2 9 ≈ 3.17``
  bits per assessment.

Both styles are represented here by :class:`ResizingAction`. An action is
*visible* to the attacker exactly when it changes the partition size
(Section 5.3.4: Maintain timing is invisible).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError


class ActionKind(enum.Enum):
    """The three relative action kinds from Table 2 of the paper."""

    EXPAND = "expand"
    SHRINK = "shrink"
    MAINTAIN = "maintain"


@dataclass(frozen=True, order=True)
class ResizingAction:
    """One resizing action: the partition size used after the assessment.

    Attributes
    ----------
    new_size:
        The partition size (in the scheme's capacity unit, e.g. cache
        lines) the domain uses after this action takes effect.
    old_size:
        The size in effect before the action.
    """

    new_size: int
    old_size: int

    def __post_init__(self) -> None:
        if self.new_size <= 0 or self.old_size <= 0:
            raise ConfigurationError(
                f"partition sizes must be positive, got {self.old_size}->{self.new_size}"
            )

    @property
    def kind(self) -> ActionKind:
        """Relative classification of this action."""
        if self.new_size > self.old_size:
            return ActionKind.EXPAND
        if self.new_size < self.old_size:
            return ActionKind.SHRINK
        return ActionKind.MAINTAIN

    @property
    def is_maintain(self) -> bool:
        """Whether the action keeps the partition size unchanged."""
        return self.new_size == self.old_size

    @property
    def is_visible(self) -> bool:
        """Whether an attacker observing partition sizes can see this action.

        Per the threat model (Section 4), the attacker observes the victim's
        partition size; only size *changes* are observable events.
        """
        return not self.is_maintain

    def __str__(self) -> str:
        if self.is_maintain:
            return f"Maintain({self.new_size})"
        return f"{self.kind.name.capitalize()}({self.old_size}->{self.new_size})"


def maintain(size: int) -> ResizingAction:
    """Convenience constructor for a Maintain action at ``size``."""
    return ResizingAction(new_size=size, old_size=size)


def resize(old_size: int, new_size: int) -> ResizingAction:
    """Convenience constructor for a resize from ``old_size`` to ``new_size``."""
    return ResizingAction(new_size=new_size, old_size=old_size)


class ActionAlphabet:
    """The set of actions a scheme supports at one assessment.

    For an absolute-size scheme this is the list of supported partition
    sizes; ``log2(len(alphabet))`` is the conservative per-assessment
    leakage that prior work charges (Section 3.3) and that the Time scheme
    is charged in the evaluation.
    """

    def __init__(self, supported_sizes: Sequence[int]):
        sizes = sorted(set(int(s) for s in supported_sizes))
        if not sizes:
            raise ConfigurationError("action alphabet needs at least one size")
        if sizes[0] <= 0:
            raise ConfigurationError("supported sizes must be positive")
        self._sizes = sizes

    @property
    def sizes(self) -> list[int]:
        """Supported partition sizes in increasing order."""
        return list(self._sizes)

    def __len__(self) -> int:
        return len(self._sizes)

    def __contains__(self, size: int) -> bool:
        return size in self._sizes

    def __iter__(self):
        return iter(self._sizes)

    @property
    def min_size(self) -> int:
        return self._sizes[0]

    @property
    def max_size(self) -> int:
        return self._sizes[-1]

    def conservative_bits_per_assessment(self) -> float:
        """``log2 |A|`` — the prior-work worst-case charge (Section 3.3)."""
        return math.log2(len(self._sizes))

    def clamp(self, size: int) -> int:
        """The largest supported size that is <= ``size``.

        Falls back to the minimum supported size when ``size`` is below it.
        """
        feasible = [s for s in self._sizes if s <= size]
        return feasible[-1] if feasible else self._sizes[0]

    def round_nearest(self, size: int) -> int:
        """The supported size closest to ``size`` (ties toward the smaller)."""
        return min(self._sizes, key=lambda s: (abs(s - size), s))

    def step_toward(self, current: int, target: int) -> int:
        """Move one alphabet step from ``current`` toward ``target``."""
        if current not in self._sizes:
            raise ConfigurationError(f"current size {current} not in alphabet")
        index = self._sizes.index(current)
        if target > current and index + 1 < len(self._sizes):
            return self._sizes[index + 1]
        if target < current and index > 0:
            return self._sizes[index - 1]
        return current

    @classmethod
    def paper_llc_sizes_bytes(cls) -> "ActionAlphabet":
        """The paper's nine supported LLC partition sizes, in bytes (Table 3)."""
        kib = 1024
        mib = 1024 * kib
        return cls(
            [128 * kib, 256 * kib, 512 * kib, 1 * mib, 2 * mib,
             3 * mib, 4 * mib, 6 * mib, 8 * mib]
        )


def action_sequence_key(actions: Iterable[ResizingAction]) -> tuple[int, ...]:
    """Canonical hashable key for an action sequence (its size trajectory)."""
    return tuple(a.new_size for a in actions)
