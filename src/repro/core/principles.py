"""Untangle's design principles and compliance checking (Section 5.2).

Principle 1 — *timing-independent utilization metric*: the metric value
may depend only on the architectural semantics of the executed program
(its retired dynamic instruction sequence), never on instruction timing.

Principle 2 — *progress-based resizing schedule*: assessments are tied to
execution progress (e.g. every ``N`` retired instructions), not elapsed
time.

Following both principles (plus annotations) makes the resizing action
sequence depend only on the *public portion* of the retired instruction
sequence, eliminating action leakage.

This module offers two enforcement layers:

1. Static declarations: metric and schedule objects expose a boolean
   ``timing_independent`` / ``progress_based`` attribute which
   :func:`require_untangle_compliant` checks before a scheme is allowed
   to claim zero action leakage.
2. A dynamic differential check, :func:`check_timing_independence`, which
   replays the same program under perturbed timing and verifies the action
   sequence is bit-for-bit identical — the empirical counterpart of
   removing Edge 3 in Figure 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Protocol, Sequence, runtime_checkable

from repro.errors import PrincipleViolation


@runtime_checkable
class UtilizationMetricLike(Protocol):
    """Anything usable as a utilization metric (Table 2, first component)."""

    @property
    def timing_independent(self) -> bool:
        """Whether the metric satisfies Principle 1."""
        ...


@runtime_checkable
class ScheduleLike(Protocol):
    """Anything usable as a resizing schedule (Table 2, third component)."""

    @property
    def progress_based(self) -> bool:
        """Whether the schedule satisfies Principle 2."""
        ...


def require_timing_independent_metric(metric: UtilizationMetricLike) -> None:
    """Raise :class:`PrincipleViolation` unless the metric satisfies P1.

    Two distinct failure modes, distinguished in the message: an object
    that *declares* ``timing_independent=False`` is a known
    timing-dependent metric (e.g. an in-flight miss counter), while an
    object without the attribute at all is structurally non-conforming
    — it is not a utilization metric in this framework's sense, and
    calling it "timing-dependent" would send the implementer chasing
    the wrong fix.
    """
    if not isinstance(metric, UtilizationMetricLike):
        raise PrincipleViolation(
            f"{type(metric).__name__} does not implement the "
            "utilization-metric protocol: it never declares "
            "`timing_independent`, so Principle 1 (Section 5.2) cannot "
            "be certified — declare the attribute (True only if the "
            "metric depends solely on the retired instruction sequence)"
        )
    if not metric.timing_independent:
        raise PrincipleViolation(
            f"{type(metric).__name__} declares timing_independent=False; "
            "Untangle requires a timing-independent utilization metric "
            "(Principle 1, Section 5.2)"
        )


def require_progress_based_schedule(schedule: ScheduleLike) -> None:
    """Raise :class:`PrincipleViolation` unless the schedule satisfies P2.

    Mirrors :func:`require_timing_independent_metric`: a missing
    ``progress_based`` attribute (structurally not a schedule) is
    reported distinctly from an explicit ``progress_based=False``
    (a time-based schedule).
    """
    if not isinstance(schedule, ScheduleLike):
        raise PrincipleViolation(
            f"{type(schedule).__name__} does not implement the schedule "
            "protocol: it never declares `progress_based`, so Principle 2 "
            "(Section 5.2) cannot be certified — declare the attribute "
            "(True only if assessments are tied to execution progress)"
        )
    if not schedule.progress_based:
        raise PrincipleViolation(
            f"{type(schedule).__name__} declares progress_based=False; "
            "Untangle requires a progress-based resizing schedule "
            "(Principle 2, Section 5.2)"
        )


def require_untangle_compliant(
    metric: UtilizationMetricLike, schedule: ScheduleLike
) -> None:
    """Check both principles at scheme-construction time."""
    require_timing_independent_metric(metric)
    require_progress_based_schedule(schedule)


@dataclass(frozen=True)
class TimingIndependenceReport:
    """Outcome of a differential timing-independence check."""

    runs: int
    action_sequences: list[tuple[int, ...]]
    independent: bool
    first_divergence: int | None

    def __bool__(self) -> bool:
        return self.independent


def check_timing_independence(
    run_with_timing_seed: Callable[[int], Sequence[int]],
    timing_seeds: Iterable[int],
) -> TimingIndependenceReport:
    """Differentially test that an action sequence ignores program timing.

    ``run_with_timing_seed(seed)`` must execute the *same program with the
    same inputs* but with timing perturbed by ``seed`` (e.g. randomized
    memory latencies) and return the resulting action-sequence key.

    Untangle-compliant schemes must produce identical sequences for every
    seed; Time-style schemes generally will not (their assessment points
    fall at different places in the instruction stream).
    """
    sequences: list[tuple[int, ...]] = []
    for seed in timing_seeds:
        sequences.append(tuple(run_with_timing_seed(seed)))
    if not sequences:
        raise PrincipleViolation("timing-independence check needs at least one run")
    reference = sequences[0]
    first_divergence = None
    for index, sequence in enumerate(sequences[1:], start=1):
        if sequence != reference:
            first_divergence = index
            break
    return TimingIndependenceReport(
        runs=len(sequences),
        action_sequences=sequences,
        independent=first_divergence is None,
        first_divergence=first_divergence,
    )
