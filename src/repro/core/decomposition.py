"""Leakage decomposition (Section 5.1, Equations 5.1–5.6).

Untangle's first formal contribution: the leakage of a victim program —
the joint entropy of its realizable resizing traces — splits exactly into

``L = H(S, T_S) = H(S) + E[H(T_s | S = s)]``

where ``H(S)`` is the *action leakage* (entropy of the action-sequence
marginal) and ``E[H(T_s | S = s)]`` is the *scheduling leakage* (expected
entropy of the per-sequence timing conditionals).

The functions here compute each term from a :class:`~repro.core.trace.TraceEnsemble`
and verify the chain-rule identity, reproducing the worked example of
Figure 3 exactly (see ``tests/core/test_decomposition.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.trace import TraceEnsemble
from repro.info.entropy import (
    entropy,
    expected_conditional_entropy,
    joint_entropy,
)


@dataclass(frozen=True)
class LeakageBreakdown:
    """The decomposed leakage of a trace ensemble, in bits.

    Attributes
    ----------
    action_bits:
        Action leakage ``H(S)``.
    scheduling_bits:
        Scheduling leakage ``E[H(T_s | S = s)]``.
    total_bits:
        Total leakage ``H(S, T_S)`` computed directly from the joint; by
        the chain rule it equals ``action_bits + scheduling_bits`` up to
        floating-point residue.
    per_sequence_timing_bits:
        ``H(T_s | S = s)`` for each realizable action-sequence key — the
        inner terms of Equation 5.5, useful for diagnosis.
    """

    action_bits: float
    scheduling_bits: float
    total_bits: float
    per_sequence_timing_bits: dict[tuple[int, ...], float]

    @property
    def chain_rule_residual(self) -> float:
        """``|H(S,T_S) - (H(S) + E[H(T_s|S=s)])|`` — should be ~0."""
        return abs(self.total_bits - (self.action_bits + self.scheduling_bits))


def action_leakage(ensemble: TraceEnsemble) -> float:
    """Action leakage ``H(S)`` in bits."""
    return entropy(ensemble.action_distribution())


def scheduling_leakage(ensemble: TraceEnsemble) -> float:
    """Scheduling leakage ``E[H(T_s | S = s)]`` in bits (Equation 5.6)."""
    marginal = ensemble.action_distribution()
    conditionals = ensemble.timing_conditionals()
    return expected_conditional_entropy(marginal, conditionals)


def total_leakage(ensemble: TraceEnsemble) -> float:
    """Total leakage ``H(S, T_S)`` in bits, from the joint (Equation 5.1)."""
    return joint_entropy(ensemble.joint_distribution())


def decompose(ensemble: TraceEnsemble) -> LeakageBreakdown:
    """Full decomposition of an ensemble's leakage (Equations 5.1–5.6)."""
    marginal = ensemble.action_distribution()
    conditionals = ensemble.timing_conditionals()
    per_sequence = {
        key: dist.entropy_bits() for key, dist in conditionals.items()
    }
    action_bits = entropy(marginal)
    scheduling_bits = expected_conditional_entropy(marginal, conditionals)
    return LeakageBreakdown(
        action_bits=action_bits,
        scheduling_bits=scheduling_bits,
        total_bits=joint_entropy(ensemble.joint_distribution()),
        per_sequence_timing_bits=per_sequence,
    )
