"""Precomputed maximum-rate tables (Sections 5.3.4 and 7 of the paper).

Computing ``R_max`` involves the iterative Dinkelbach optimization of
Appendix A, which is too expensive to run at every resizing assessment.
The paper therefore proposes a small hardware table whose entry ``i``
stores the precomputed leakage rate ``R_max_i`` corresponding to ``i``
consecutive Maintain actions — equivalent to a stretched cooldown of
``(i + 1) T_c``. :class:`RmaxTable` is the software model of that table.

Runtime usage (Section 7): if the victim has chosen Maintain ``m``
consecutive times, the accountant conservatively assumes the *next*
action is visible and charges at rate ``R_max_m``; when the next action
turns out to be another Maintain, the charge for that interval is
retroactively lowered to rate ``R_max_{m+1}``. If ``m`` exceeds the table
capacity, the last entry's rate is used conservatively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.covert import CovertChannelModel
from repro.core.dinkelbach import RmaxResult, solve_rmax
from repro.errors import ChannelModelError
from repro.obs import metrics as obs_metrics

#: Counts Dinkelbach solves in this process — the precompute store
#: (``repro.harness.store``) exists to keep this at one per table level
#: per campaign, and zero on a warm store.
_M_SOLVES = obs_metrics.get_registry().counter(
    "repro_rmax_solves_total",
    "Dinkelbach R_max solves performed in this process",
)


@dataclass(frozen=True)
class RateEntry:
    """One table entry: the certified max rate after ``maintains`` Maintains."""

    maintains: int
    effective_cooldown: int
    rate: float
    rate_upper_bound: float
    bits_per_transmission: float
    average_transmission_time: float


def compute_entry(
    base_model: CovertChannelModel,
    maintains: int,
    *,
    solver_iterations: int = 300,
    solver_seed: int = 0,
) -> RateEntry:
    """Solve one table entry from scratch (module-level, picklable).

    This is the unit of work the precompute store parallelizes across a
    process pool when populating a table; :meth:`RmaxTable._compute`
    delegates here, so the two paths are the same code and bit-identical.
    """
    effective_cooldown = (maintains + 1) * base_model.cooldown
    model = base_model.with_cooldown(effective_cooldown)
    result: RmaxResult = solve_rmax(
        model,
        inner_iterations=solver_iterations,
        seed=solver_seed + maintains,
    )
    return RateEntry(
        maintains=maintains,
        effective_cooldown=effective_cooldown,
        rate=result.rate,
        rate_upper_bound=result.rate_upper_bound,
        bits_per_transmission=result.bits_per_transmission,
        average_transmission_time=result.average_transmission_time,
    )


class RmaxTable:
    """Table of certified scheduling-leakage rates, indexed by Maintain count.

    Parameters
    ----------
    base_model:
        The covert-channel model for a single cooldown ``T_c`` (zero
        consecutive Maintains). Entry ``i`` is computed from a copy of this
        model with cooldown ``(i + 1) T_c``.
    capacity:
        Number of entries (maximum Maintain count represented). Counts
        beyond the capacity reuse the last entry, which is conservative
        because rates decrease with the effective cooldown.
    solver_iterations / solver_seed:
        Forwarded to :func:`repro.core.dinkelbach.solve_rmax`.
    """

    def __init__(
        self,
        base_model: CovertChannelModel,
        capacity: int = 8,
        *,
        solver_iterations: int = 300,
        solver_seed: int = 0,
        lazy: bool = True,
    ):
        if capacity < 1:
            raise ChannelModelError(f"table capacity {capacity} must be >= 1")
        self._base_model = base_model
        self._capacity = capacity
        self._solver_iterations = solver_iterations
        self._solver_seed = solver_seed
        self._entries: dict[int, RateEntry] = {}
        # Materialized levels: exact entries for small Maintain counts,
        # log-spaced beyond 8 (a lookup rounds *down* to the nearest
        # level, i.e. to a shorter effective cooldown — conservative,
        # since rates decrease with cooldown). This keeps the number of
        # Dinkelbach solves small even for large capacities.
        levels = set(range(min(8, capacity)))
        level = 8
        while level < capacity:
            levels.add(level)
            level = level + max(1, level // 2)
        levels.add(capacity - 1)
        self._levels = sorted(levels)
        if not lazy:
            for i in self._levels:
                self._compute(i)

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def base_model(self) -> CovertChannelModel:
        return self._base_model

    @property
    def cooldown(self) -> int:
        return self._base_model.cooldown

    def _compute(self, maintains: int) -> RateEntry:
        if maintains in self._entries:
            return self._entries[maintains]
        _M_SOLVES.inc()
        entry = compute_entry(
            self._base_model,
            maintains,
            solver_iterations=self._solver_iterations,
            solver_seed=self._solver_seed,
        )
        self._entries[maintains] = entry
        return entry

    def entry(self, maintains: int) -> RateEntry:
        """The table entry for ``maintains`` consecutive Maintains.

        Counts between materialized levels round down to the nearest
        level, and counts beyond the capacity clamp to the last level —
        both directions are conservative (shorter effective cooldown,
        higher rate).
        """
        if maintains < 0:
            raise ChannelModelError("maintain count must be non-negative")
        clamped = min(maintains, self._capacity - 1)
        level = max(l for l in self._levels if l <= clamped)
        return self._compute(level)

    def rate(self, maintains: int) -> float:
        """Certified rate bound (bits per time unit) after ``maintains`` Maintains."""
        return self.entry(maintains).rate_upper_bound

    def bits_for_interval(self, maintains: int, interval: int) -> float:
        """Leakage charged for an interval at the ``maintains``-level rate.

        The covert channel transmits continuously at at most ``R_max_m``
        bits per time unit, so an interval of length ``interval`` is
        charged ``R_max_m * interval`` bits.
        """
        if interval < 0:
            raise ChannelModelError("interval must be non-negative")
        return self.rate(maintains) * interval

    def entries(self) -> list[RateEntry]:
        """All materialized-level entries, computing any outstanding."""
        return [self._compute(i) for i in self._levels]

    def preload(self, entries: list[RateEntry]) -> bool:
        """Adopt previously solved entries instead of solving.

        Returns ``True`` only when every materialized level is covered by
        an entry whose ``effective_cooldown`` matches this table's model
        — a mismatched or incomplete set (e.g. a stale store artifact)
        is rejected wholesale and the table stays unsolved, so the
        caller falls back to computing.
        """
        by_level = {entry.maintains: entry for entry in entries}
        for level in self._levels:
            entry = by_level.get(level)
            if (
                entry is None
                or entry.effective_cooldown
                != (level + 1) * self._base_model.cooldown
            ):
                return False
        self._entries.update(
            (level, by_level[level]) for level in self._levels
        )
        return True

    @property
    def levels(self) -> list[int]:
        """The Maintain counts at which exact entries are materialized."""
        return list(self._levels)

    def __len__(self) -> int:
        return self._capacity


def worst_case_table(base_model: CovertChannelModel, **kwargs) -> RmaxTable:
    """A table of capacity 1: every assessment charged at ``R_max_0``.

    This disables the Maintain optimization of Section 5.3.4 and models
    the active-attacker environment of Section 6.2 / Section 9, where the
    attacker squeezes the victim into making a visible action at every
    assessment.
    """
    kwargs.setdefault("capacity", 1)
    return RmaxTable(base_model, **kwargs)
