"""repro — a full reproduction of *Untangle* (ASPLOS 2023).

Untangle is a framework for constructing low-leakage, high-performance
dynamic partitioning schemes. It formally splits a scheme's leakage into
*action leakage* (what resizing actions are taken) and *scheduling
leakage* (when they are taken), gives design principles that eliminate
the former, and bounds the latter with a covert-channel model solved by
Dinkelbach's transform.

Package layout
--------------
* :mod:`repro.core` — the framework itself: trace leakage decomposition,
  design principles, covert-channel model, max-rate solver, precomputed
  rate tables, runtime leakage accounting, annotations.
* :mod:`repro.info` — entropy / mutual information substrate.
* :mod:`repro.sim` — the multicore cache-partitioning simulator.
* :mod:`repro.monitor` — UMON-style utilization monitoring.
* :mod:`repro.schemes` — Static, Shared, Time, and Untangle schemes.
* :mod:`repro.workloads` — synthetic SPEC17 + OpenSSL workload models
  and the paper's 16 evaluation mixes.
* :mod:`repro.analysis` — a miniature IR + taint analysis producing the
  secret-dependence annotations Untangle assumes.
* :mod:`repro.attacks` — idealized observer, active squeezer, replay
  campaigns, and an empirical covert-channel simulator.
* :mod:`repro.harness` — experiment drivers regenerating every figure
  and table of the paper's evaluation.

Quickstart
----------
>>> from repro.harness import run_mix, SCALED, render_figure_group, figure_group
>>> result = run_mix(1, SCALED)            # Figure 10, Mix 1  (takes ~30 s)
>>> print(render_figure_group(figure_group(1, SCALED, result)))
"""

from repro.config import ArchConfig
from repro.errors import (
    AnnotationError,
    ChannelModelError,
    ConfigurationError,
    DistributionError,
    LeakageBudgetExceeded,
    OptimizationError,
    PrincipleViolation,
    ReproError,
    SimulationError,
    TraceError,
)

__version__ = "1.0.0"

__all__ = [
    "ArchConfig",
    "ReproError",
    "DistributionError",
    "TraceError",
    "ChannelModelError",
    "OptimizationError",
    "ConfigurationError",
    "SimulationError",
    "PrincipleViolation",
    "LeakageBudgetExceeded",
    "AnnotationError",
    "__version__",
]
