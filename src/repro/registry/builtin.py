"""Built-in registrations: the Table 4 schemes and their components.

Importing this module (which :mod:`repro.registry` does) populates the
process-wide :data:`~repro.registry.core.REGISTRY` with everything the
paper's evaluation uses: the four Table 4 schemes, the previously
campaign-unreachable :class:`~repro.schemes.threshold.ThresholdScheme`
(plus its Section 6.4 tiered-accounting variant), the monitors and
channel model they are assembled from, and the paper-mix workload
generator. Scheme factories are exactly the bodies of the old
``make_scheme`` if-chain — registration changes how schemes are *found*,
never what they build, so cache keys and results stay bit-identical.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.errors import ConfigurationError
from repro.monitor.metrics import TimingDependentView
from repro.monitor.umon import UMONMonitor
from repro.registry.core import REGISTRY, ParamSpec
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.shared import SharedScheme
from repro.schemes.static import StaticScheme
from repro.schemes.threshold import FootprintMonitorAdapter, ThresholdScheme
from repro.schemes.timebased import TimeScheme
from repro.schemes.untangle import (
    DEFAULT_TABLE_CAPACITY,
    UntangleScheme,
    default_channel_model,
    get_rate_table,
    get_worst_case_rate_table,
)
from repro.workloads.mixes import get_mix

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Importing the harness here at runtime would cycle back into
    # ``repro.registry`` via ``repro.harness.__init__``; factories only
    # read profile attributes, so the type is annotation-only.
    from repro.harness.runconfig import RunProfile


def untangle_schedule(profile: RunProfile) -> ProgressSchedule:
    """The P2 schedule every Untangle-style factory shares.

    Byte-for-byte the construction the old ``make_scheme`` used (same
    derived seed, same channel-model rounding) — scheme factories that
    change it change their cells' results, so it lives in one place.
    """
    model = default_channel_model(profile.cooldown)
    return ProgressSchedule(
        instructions_per_assessment=profile.untangle_instructions,
        cooldown=model.cooldown,
        delay=model.delay,
        seed=profile.seed + 17,
    )


# ----------------------------------------------------------------------
# Schemes (Table 4 plus the Section 6.3/6.4 extensions)
# ----------------------------------------------------------------------
@REGISTRY.scheme(
    "static",
    description="Fixed equal partitions, never resized (Table 4 baseline)",
    produces=(StaticScheme,),
    cost_weight=1.0,
    default_for_campaign=True,
)
def _build_static(profile: RunProfile, num_domains: int) -> StaticScheme:
    return StaticScheme(profile.arch(num_domains))


@REGISTRY.scheme(
    "time",
    description="Time-triggered UMON resizing (insecure performance bound)",
    produces=(TimeScheme,),
    cost_weight=2.0,
    default_for_campaign=True,
)
def _build_time(profile: RunProfile, num_domains: int) -> TimeScheme:
    return TimeScheme(
        profile.arch(num_domains),
        interval=profile.time_interval,
        monitor_window=profile.monitor_window,
        monitor_sampling_shift=profile.monitor_sampling_shift,
        hysteresis=profile.hysteresis,
    )


def _untangle_needs(profile: RunProfile, params: dict) -> list[tuple]:
    return [("rmax", profile.cooldown, params["table_capacity"])]


@REGISTRY.scheme(
    "untangle",
    description="P1+P2 partitioning with optimized Maintain-run accounting",
    produces=(UntangleScheme,),
    params=(
        ParamSpec(
            "table_capacity",
            DEFAULT_TABLE_CAPACITY,
            (int,),
            "Maintain levels of the optimized accounting table",
        ),
    ),
    untangle_compliant=True,
    cost_weight=4.0,
    store_needs=_untangle_needs,
    default_for_campaign=True,
)
def _build_untangle(
    profile: RunProfile,
    num_domains: int,
    *,
    table_capacity: int = DEFAULT_TABLE_CAPACITY,
) -> UntangleScheme:
    return UntangleScheme(
        profile.arch(num_domains),
        untangle_schedule(profile),
        monitor_window=profile.monitor_window,
        monitor_sampling_shift=profile.monitor_sampling_shift,
        hysteresis=profile.hysteresis,
        table_capacity=table_capacity,
    )


def _unopt_needs(profile: RunProfile, params: dict) -> list[tuple]:
    return [("rmax-worst", profile.cooldown)]


@REGISTRY.scheme(
    "untangle-unopt",
    description="Untangle charged at worst-case rates (Section 9 attacker)",
    produces=(UntangleScheme,),
    untangle_compliant=True,
    cost_weight=4.0,
    store_needs=_unopt_needs,
)
def _build_untangle_unopt(
    profile: RunProfile, num_domains: int
) -> UntangleScheme:
    # Active-attacker accounting (Section 9): every assessment charged
    # at the single-cooldown rate — no Maintain credit. Memoized under
    # its own worst-case key, never shared with the optimized table.
    table = get_worst_case_rate_table(profile.cooldown)
    return UntangleScheme(
        profile.arch(num_domains),
        untangle_schedule(profile),
        rmax_table=table,
        monitor_window=profile.monitor_window,
        monitor_sampling_shift=profile.monitor_sampling_shift,
        hysteresis=profile.hysteresis,
    )


@REGISTRY.scheme(
    "shared",
    description="No partitioning at all (insecure sharing bound)",
    produces=(SharedScheme,),
    cost_weight=1.0,
    default_for_campaign=True,
)
def _build_shared(profile: RunProfile, num_domains: int) -> SharedScheme:
    return SharedScheme(profile.arch(num_domains))


_THRESHOLD_PARAMS = (
    ParamSpec(
        "footprint_window",
        10_000,
        (int,),
        "Retired public memory instructions per footprint window",
    ),
    ParamSpec(
        "expand_fraction",
        0.9,
        (int, float),
        "Expand when footprint exceeds this fraction of the partition",
    ),
    ParamSpec(
        "shrink_fraction",
        0.6,
        (int, float),
        "Shrink when footprint falls below this fraction of the next size",
    ),
    ParamSpec(
        "table_capacity",
        DEFAULT_TABLE_CAPACITY,
        (int,),
        "Maintain levels of the optimized accounting table",
    ),
)


def _threshold_needs(profile: RunProfile, params: dict) -> list[tuple]:
    return [("rmax", profile.cooldown, params["table_capacity"])]


def _make_threshold(
    profile: RunProfile,
    num_domains: int,
    *,
    footprint_window: int = 10_000,
    expand_fraction: float = 0.9,
    shrink_fraction: float = 0.6,
    table_capacity: int = DEFAULT_TABLE_CAPACITY,
    tiers: tuple[int, ...] | str | None = None,
) -> ThresholdScheme:
    schedule = untangle_schedule(profile)
    table = get_rate_table(schedule.cooldown, capacity=table_capacity)
    return ThresholdScheme(
        profile.arch(num_domains),
        schedule,
        table,
        footprint_window=footprint_window,
        expand_fraction=expand_fraction,
        shrink_fraction=shrink_fraction,
        tiers=resolve_tiers(tiers, num_domains),
    )


@REGISTRY.scheme(
    "threshold",
    description="Footprint-threshold Expand/Shrink heuristic (Section 6.3)",
    produces=(ThresholdScheme,),
    params=_THRESHOLD_PARAMS,
    untangle_compliant=True,
    cost_weight=3.0,
    store_needs=_threshold_needs,
)
def _build_threshold(
    profile: RunProfile, num_domains: int, **params
) -> ThresholdScheme:
    return _make_threshold(profile, num_domains, **params)


def resolve_tiers(
    tiers: tuple[int, ...] | list[int] | str | None, num_domains: int
) -> tuple[int, ...] | None:
    """Expand a tier preset to one tier per domain (Section 6.4).

    ``"ladder"`` assigns strictly increasing trust (domain 0 lowest —
    its resizes exchange capacity only with strictly-higher tiers and
    are never charged); ``"flat"`` is the peer-to-peer base model made
    explicit. An explicit sequence is passed through.
    """
    if tiers is None:
        return None
    if tiers == "ladder":
        return tuple(range(num_domains))
    if tiers == "flat":
        return (0,) * num_domains
    if isinstance(tiers, str):
        raise ConfigurationError(
            f"unknown tier preset {tiers!r}; known: ladder, flat, "
            "or an explicit per-domain sequence"
        )
    return tuple(int(t) for t in tiers)


@REGISTRY.scheme(
    "threshold-tiered",
    description="Threshold scheme under Section 6.4 tiered accounting",
    produces=(ThresholdScheme,),
    params=_THRESHOLD_PARAMS
    + (
        ParamSpec(
            "tiers",
            "ladder",
            (str, list, tuple),
            "Per-domain tier preset (ladder/flat) or explicit sequence",
        ),
    ),
    untangle_compliant=True,
    cost_weight=3.0,
    store_needs=_threshold_needs,
)
def _build_threshold_tiered(
    profile: RunProfile, num_domains: int, *, tiers="ladder", **params
) -> ThresholdScheme:
    return _make_threshold(profile, num_domains, tiers=tiers, **params)


# ----------------------------------------------------------------------
# Monitors, channel model, workload generator (Table 2 components)
# ----------------------------------------------------------------------
@REGISTRY.monitor(
    "umon",
    description="Retired-access UMON shadow monitor (P1-compliant)",
    produces=(UMONMonitor,),
    untangle_compliant=True,
)
def _build_umon(profile: RunProfile, arch: ArchConfig) -> UMONMonitor:
    return UMONMonitor(
        arch.supported_partition_lines,
        window=profile.monitor_window,
        sampling_shift=profile.monitor_sampling_shift,
        timing_independent=True,
    )


@REGISTRY.monitor(
    "umon-timing",
    description="UMON observing in-flight accesses (Time baseline; not P1)",
    produces=(TimingDependentView,),
)
def _build_umon_timing(
    profile: RunProfile, arch: ArchConfig
) -> TimingDependentView:
    return TimingDependentView(
        UMONMonitor(
            arch.supported_partition_lines,
            window=profile.monitor_window,
            sampling_shift=profile.monitor_sampling_shift,
            timing_independent=True,
        )
    )


@REGISTRY.monitor(
    "footprint",
    description="Unique-lines footprint over a retired window (Section 5.2)",
    produces=(FootprintMonitorAdapter,),
    params=(
        ParamSpec(
            "window",
            10_000,
            (int,),
            "Retired public memory instructions per footprint window",
        ),
    ),
    untangle_compliant=True,
)
def _build_footprint(
    profile: RunProfile, arch: ArchConfig, *, window: int = 10_000
) -> FootprintMonitorAdapter:
    return FootprintMonitorAdapter(window)


@REGISTRY.channel_model(
    "default",
    description="Uniform-delay covert-channel model (Section 5.3.1)",
    params=(
        ParamSpec(
            "resolution_divisor",
            16,
            (int,),
            "Attacker timing granularity as a fraction of the cooldown",
        ),
        ParamSpec(
            "horizon_cooldowns",
            4,
            (int,),
            "Sender duration horizon, in cooldowns",
        ),
    ),
)
def _build_channel_model(
    profile: RunProfile,
    *,
    resolution_divisor: int = 16,
    horizon_cooldowns: int = 4,
):
    return default_channel_model(
        profile.cooldown, resolution_divisor, horizon_cooldowns
    )


@REGISTRY.workload_generator(
    "paper-mix",
    description="The paper's 16 eight-workload SPEC+crypto mixes (Table 5)",
)
def _build_paper_mix(mix_id: int) -> list[tuple[str, str]]:
    return get_mix(mix_id)
