"""Declarative scenario specs: campaigns as data (``docs/scenarios.md``).

A scenario file (TOML or JSON) names workloads (paper mixes through a
registered workload generator, or explicit ``(spec, crypto)`` pairs),
the schemes to run them under (with per-scheme parameter overrides and
result aliases), the run profile with field overrides, and optional
sweep axes over profile fields. :func:`compile_scenario` expands it
into sweep points, and :func:`run_scenario` feeds each point through
the *same* grid assembly the hand-wired
:func:`~repro.harness.experiment.run_mix_grid` path uses — so a
declarative spec produces bit-identical campaign cells: same cache
keys, same journal labels, same results.

TOML loading uses :mod:`tomllib` where available (Python 3.11+) and
falls back to a built-in parser for the subset scenario specs need
(tables, arrays of tables, scalar/array values on one line) — no
third-party dependency either way.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.harness.exec import ExecutionEngine, MixSchemeCell
from repro.harness.experiment import MixResult, _assemble_mix_results
from repro.harness.runconfig import PROFILES, RunProfile, SCALED
from repro.registry.core import REGISTRY, SchemeSelection, canonical_params

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised on 3.10 CI
    tomllib = None


# ----------------------------------------------------------------------
# Spec model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepAxis:
    """One swept profile field; axes combine as a cross product."""

    field: str
    values: tuple[Any, ...]


@dataclass(frozen=True)
class ScenarioSpec:
    """A parsed, registry-validated scenario file."""

    name: str
    profile: str | None = None
    profile_overrides: tuple[tuple[str, Any], ...] = ()
    schemes: tuple[SchemeSelection, ...] = ()
    generator: str = "paper-mix"
    mix_ids: tuple[int, ...] = ()
    custom_mixes: tuple[
        tuple[str | None, tuple[tuple[str, str], ...]], ...
    ] = ()
    sweep: tuple[SweepAxis, ...] = ()
    campaign: str | None = None
    channel_model: str = "default"


@dataclass(frozen=True)
class ScenarioPoint:
    """One sweep point: a concrete profile plus the mix grid to run."""

    label: str
    profile: RunProfile
    grid: tuple[tuple[int | str | None, tuple[tuple[str, str], ...]], ...]
    campaign: str

    def cells(self, schemes: tuple[SchemeSelection, ...]) -> list:
        """The exact engine cells this point submits (mix-major,
        scheme-inner — the ``run_mix_grid`` order)."""
        return [
            MixSchemeCell(
                pairs=tuple(pairs),
                scheme=selection.name,
                profile=self.profile,
                scheme_params=canonical_params(selection.params),
            )
            for _, pairs in self.grid
            for selection in schemes
        ]


@dataclass
class CompiledScenario:
    spec: ScenarioSpec
    points: list[ScenarioPoint]

    def cells(self) -> list:
        return [
            cell
            for point in self.points
            for cell in point.cells(self.spec.schemes)
        ]


@dataclass
class ScenarioPointResult:
    point: ScenarioPoint
    results: dict[int | str | None, MixResult] = field(default_factory=dict)


@dataclass
class ScenarioResult:
    spec: ScenarioSpec
    points: list[ScenarioPointResult]


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
_PROFILE_FIELDS = {f.name for f in dataclasses.fields(RunProfile)} - {"name"}


def _require_keys(table: Mapping, allowed: set[str], where: str) -> None:
    unknown = sorted(set(table) - allowed)
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {', '.join(unknown)} in {where}; "
            f"accepted: {', '.join(sorted(allowed))}"
        )


def _parse_scheme_entry(entry: Any, index: int) -> SchemeSelection:
    if isinstance(entry, str):
        REGISTRY.get("scheme", entry)
        return SchemeSelection(name=entry)
    if not isinstance(entry, Mapping):
        raise ConfigurationError(
            f"scheme entry #{index + 1} must be a name or a table, "
            f"got {type(entry).__name__}"
        )
    _require_keys(
        entry, {"name", "alias", "params"}, f"scheme entry #{index + 1}"
    )
    name = entry.get("name")
    if not isinstance(name, str):
        raise ConfigurationError(
            f"scheme entry #{index + 1} needs a string 'name'"
        )
    registration = REGISTRY.get("scheme", name)
    params = entry.get("params") or {}
    if not isinstance(params, Mapping):
        raise ConfigurationError(
            f"scheme {name!r} params must be a table of overrides"
        )
    validated = registration.validated_params(params)
    alias = entry.get("alias")
    if alias is not None and not isinstance(alias, str):
        raise ConfigurationError(f"scheme {name!r} alias must be a string")
    return SchemeSelection(
        name=name, alias=alias, params=canonical_params(validated)
    )


def _parse_pairs(raw: Any, where: str) -> tuple[tuple[str, str], ...]:
    if not isinstance(raw, (list, tuple)) or not raw:
        raise ConfigurationError(f"{where} needs a non-empty pairs array")
    pairs = []
    for pair in raw:
        if (
            not isinstance(pair, (list, tuple))
            or len(pair) != 2
            or not all(isinstance(p, str) for p in pair)
        ):
            raise ConfigurationError(
                f"{where}: each pair must be [spec, crypto], got {pair!r}"
            )
        pairs.append((pair[0], pair[1]))
    return tuple(pairs)


def parse_scenario(data: Mapping[str, Any]) -> ScenarioSpec:
    """Validate a loaded spec mapping against the registry."""
    if "scenario" not in data or not isinstance(data["scenario"], Mapping):
        raise ConfigurationError(
            "spec needs a top-level [scenario] table"
        )
    table = data["scenario"]
    _require_keys(
        table,
        {
            "name", "profile", "profile_overrides", "schemes", "scheme",
            "generator", "mixes", "workloads", "sweep", "campaign",
            "channel_model",
        },
        "[scenario]",
    )
    name = table.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError("[scenario] needs a non-empty 'name'")

    profile = table.get("profile")
    if profile is not None:
        if profile not in PROFILES:
            raise ConfigurationError(
                f"unknown profile {profile!r}; known: "
                + ", ".join(sorted(PROFILES))
            )

    overrides_raw = table.get("profile_overrides") or {}
    if not isinstance(overrides_raw, Mapping):
        raise ConfigurationError("profile_overrides must be a table")
    for fname in overrides_raw:
        if fname not in _PROFILE_FIELDS:
            raise ConfigurationError(
                f"unknown profile field {fname!r} in profile_overrides; "
                f"accepted: {', '.join(sorted(_PROFILE_FIELDS))}"
            )
    overrides = canonical_params(dict(overrides_raw))

    # Schemes: simple string list and/or rich [[scenario.scheme]] tables.
    selections: list[SchemeSelection] = []
    for index, entry in enumerate(table.get("schemes") or ()):
        selections.append(_parse_scheme_entry(entry, index))
    for index, entry in enumerate(table.get("scheme") or ()):
        selections.append(
            _parse_scheme_entry(entry, len(selections))
        )
    if not selections:
        from repro.registry import default_campaign_schemes

        selections = [
            SchemeSelection(name=n) for n in default_campaign_schemes()
        ]
    keys = [s.run_key for s in selections]
    dupes = sorted({k for k in keys if keys.count(k) > 1})
    if dupes:
        raise ConfigurationError(
            f"duplicate scheme result key(s) {', '.join(dupes)}; give "
            "each parameterization a distinct 'alias'"
        )

    generator = table.get("generator", "paper-mix")
    REGISTRY.get("workload", generator)

    mix_ids_raw = table.get("mixes") or ()
    if not all(isinstance(m, int) for m in mix_ids_raw):
        raise ConfigurationError("mixes must be an array of mix ids")
    mix_ids = tuple(mix_ids_raw)

    custom: list[tuple[str | None, tuple[tuple[str, str], ...]]] = []
    for index, block in enumerate(table.get("workloads") or ()):
        if not isinstance(block, Mapping):
            raise ConfigurationError(
                f"workloads entry #{index + 1} must be a table"
            )
        _require_keys(
            block, {"label", "pairs"}, f"workloads entry #{index + 1}"
        )
        label = block.get("label")
        if label is not None and not isinstance(label, str):
            raise ConfigurationError("workload label must be a string")
        custom.append(
            (label, _parse_pairs(
                block.get("pairs"), f"workloads entry #{index + 1}"
            ))
        )
    if not mix_ids and not custom:
        raise ConfigurationError(
            "scenario needs at least one of 'mixes' or [[scenario.workloads]]"
        )

    axes: list[SweepAxis] = []
    for index, block in enumerate(table.get("sweep") or ()):
        if not isinstance(block, Mapping):
            raise ConfigurationError(
                f"sweep entry #{index + 1} must be a table"
            )
        _require_keys(
            block, {"field", "values"}, f"sweep entry #{index + 1}"
        )
        fname = block.get("field")
        if fname not in _PROFILE_FIELDS:
            raise ConfigurationError(
                f"sweep field {fname!r} is not a profile field; accepted: "
                + ", ".join(sorted(_PROFILE_FIELDS))
            )
        values = block.get("values")
        if not isinstance(values, (list, tuple)) or not values:
            raise ConfigurationError(
                f"sweep over {fname!r} needs a non-empty values array"
            )
        axes.append(SweepAxis(field=fname, values=tuple(values)))

    campaign = table.get("campaign")
    if campaign is not None and not isinstance(campaign, str):
        raise ConfigurationError("campaign must be a string")

    channel_model = table.get("channel_model", "default")
    REGISTRY.get("channel-model", channel_model)
    if channel_model != "default":
        raise ConfigurationError(
            f"channel model {channel_model!r} is registered but scheme "
            "factories derive their model from the profile cooldown; "
            "override 'cooldown' in profile_overrides instead"
        )

    return ScenarioSpec(
        name=name,
        profile=profile,
        profile_overrides=overrides,
        schemes=tuple(selections),
        generator=generator,
        mix_ids=mix_ids,
        custom_mixes=tuple(custom),
        sweep=tuple(axes),
        campaign=campaign,
        channel_model=channel_model,
    )


def load_scenario(path: str | Path) -> ScenarioSpec:
    """Parse a ``.toml`` or ``.json`` scenario file."""
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(f"cannot read scenario {path}: {exc}")
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"{path} is not valid JSON: {exc}")
    elif path.suffix == ".toml":
        data = parse_toml(text, source=str(path))
    else:
        raise ConfigurationError(
            f"unsupported scenario format {path.suffix!r}; "
            "accepted: .toml, .json"
        )
    return parse_scenario(data)


# ----------------------------------------------------------------------
# Compilation and execution
# ----------------------------------------------------------------------
def _resolve_profile(
    spec: ScenarioSpec, base_profile: RunProfile | None
) -> RunProfile:
    profile = (
        PROFILES[spec.profile]
        if spec.profile is not None
        else (base_profile if base_profile is not None else SCALED)
    )
    if spec.profile_overrides:
        profile = dataclasses.replace(
            profile, **dict(spec.profile_overrides)
        )
    return profile


def _sweep_points(spec: ScenarioSpec) -> list[tuple[str, dict]]:
    """Cross product of the sweep axes as (label, overrides) pairs."""
    points: list[tuple[str, dict]] = [("", {})]
    for axis in spec.sweep:
        points = [
            (
                f"{label},{axis.field}={value}" if label
                else f"{axis.field}={value}",
                {**overrides, axis.field: value},
            )
            for label, overrides in points
            for value in axis.values
        ]
    return points


def compile_scenario(
    spec: ScenarioSpec, base_profile: RunProfile | None = None
) -> CompiledScenario:
    """Expand a spec into concrete sweep points with their mix grids.

    ``base_profile`` (e.g. the CLI's ``--profile``) applies only when
    the spec does not pin a profile itself.
    """
    profile = _resolve_profile(spec, base_profile)
    generator = REGISTRY.get("workload", spec.generator)
    grid: list[tuple[int | str | None, tuple[tuple[str, str], ...]]] = [
        (mix_id, tuple(generator.factory(mix_id)))
        for mix_id in spec.mix_ids
    ]
    grid.extend(spec.custom_mixes)
    base_campaign = (
        spec.campaign
        if spec.campaign is not None
        else f"scenario[{spec.name}]"
    )
    points = []
    for label, overrides in _sweep_points(spec):
        point_profile = (
            dataclasses.replace(profile, **overrides) if overrides
            else profile
        )
        points.append(
            ScenarioPoint(
                label=label,
                profile=point_profile,
                grid=tuple(grid),
                campaign=(
                    f"{base_campaign}/{label}" if label else base_campaign
                ),
            )
        )
    return CompiledScenario(spec=spec, points=points)


def run_scenario(
    spec: ScenarioSpec,
    *,
    base_profile: RunProfile | None = None,
    engine: ExecutionEngine | None = None,
) -> ScenarioResult:
    """Execute a scenario through the shared grid-assembly path.

    Each sweep point fans its full mix × scheme grid through one engine
    pass under the point's campaign tag. Because the cells are built by
    the very :func:`~repro.harness.experiment._assemble_mix_results`
    that ``run_mix_grid`` uses, an engine with a result cache serves a
    scenario and its hand-wired equivalent interchangeably.
    """
    engine = engine if engine is not None else ExecutionEngine()
    compiled = compile_scenario(spec, base_profile)
    point_results = []
    for point in compiled.points:
        grid = [(key, list(pairs)) for key, pairs in point.grid]
        results = _assemble_mix_results(
            grid,
            compiled.spec.schemes,
            point.profile,
            engine,
            campaign=point.campaign,
        )
        point_results.append(
            ScenarioPointResult(
                point=point,
                results={
                    key: result
                    for (key, _), result in zip(point.grid, results)
                },
            )
        )
    return ScenarioResult(spec=compiled.spec, points=point_results)


# ----------------------------------------------------------------------
# Minimal TOML-subset parser (3.10 fallback; no third-party deps)
# ----------------------------------------------------------------------
def parse_toml(text: str, *, source: str = "<toml>") -> dict:
    """Parse TOML via :mod:`tomllib`, or the built-in subset parser.

    The subset covers what scenario specs use: ``[table]`` /
    ``[[array.of.tables]]`` headers, bare/dotted keys, and one-line
    values (strings, integers, floats, booleans, nested arrays).
    """
    if tomllib is not None:
        try:
            return tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"{source} is not valid TOML: {exc}")
    return _fallback_parse_toml(text, source=source)


def _fallback_parse_toml(text: str, *, source: str = "<toml>") -> dict:
    root: dict = {}
    current = root
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        where = f"{source}:{lineno}"
        if line.startswith("[["):
            if not line.endswith("]]"):
                raise ConfigurationError(f"{where}: malformed table array")
            parent_path = _key_path(line[2:-2], where)
            parent = _descend(root, parent_path[:-1], where)
            array = parent.setdefault(parent_path[-1], [])
            if not isinstance(array, list):
                raise ConfigurationError(
                    f"{where}: {'.'.join(parent_path)} is not a table array"
                )
            current = {}
            array.append(current)
        elif line.startswith("["):
            if not line.endswith("]"):
                raise ConfigurationError(f"{where}: malformed table header")
            current = _descend(root, _key_path(line[1:-1], where), where)
        else:
            key, sep, value = line.partition("=")
            if not sep:
                raise ConfigurationError(f"{where}: expected key = value")
            path = _key_path(key, where)
            target = current
            for part in path[:-1]:
                target = target.setdefault(part, {})
                if not isinstance(target, dict):
                    raise ConfigurationError(
                        f"{where}: {part!r} is not a table"
                    )
            parsed, rest = _parse_value(value.strip(), where)
            if rest.strip():
                raise ConfigurationError(
                    f"{where}: trailing content {rest.strip()!r}"
                )
            target[path[-1]] = parsed
    return root


def _strip_comment(line: str) -> str:
    quote = None
    for index, char in enumerate(line):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char == "#":
            return line[:index]
    return line


def _key_path(text: str, where: str) -> list[str]:
    parts = [part.strip().strip('"').strip("'") for part in text.split(".")]
    if not parts or any(not part for part in parts):
        raise ConfigurationError(f"{where}: malformed key {text!r}")
    return parts


def _descend(root: dict, path: list[str], where: str) -> dict:
    node = root
    for part in path:
        node = node.setdefault(part, {})
        if isinstance(node, list):
            # [a.b] after [[a.b]]: descend into the latest element.
            node = node[-1]
        if not isinstance(node, dict):
            raise ConfigurationError(f"{where}: {part!r} is not a table")
    return node


def _parse_value(text: str, where: str) -> tuple[Any, str]:
    """One value from the front of ``text``; returns (value, remainder)."""
    if not text:
        raise ConfigurationError(f"{where}: missing value")
    if text[0] in "\"'":
        quote = text[0]
        end = text.find(quote, 1)
        if end < 0:
            raise ConfigurationError(f"{where}: unterminated string")
        return text[1:end], text[end + 1:]
    if text[0] == "[":
        rest = text[1:].lstrip()
        items: list[Any] = []
        while True:
            if not rest:
                raise ConfigurationError(f"{where}: unterminated array")
            if rest[0] == "]":
                return items, rest[1:]
            value, rest = _parse_value(rest, where)
            items.append(value)
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:].lstrip()
            elif not rest.startswith("]"):
                raise ConfigurationError(
                    f"{where}: expected ',' or ']' in array"
                )
    # Bare scalar: runs to the next delimiter.
    end = len(text)
    for index, char in enumerate(text):
        if char in ",]":
            end = index
            break
    token, rest = text[:end].strip(), text[end:]
    if token in ("true", "false"):
        return token == "true", rest
    cleaned = token.replace("_", "")
    try:
        return int(cleaned), rest
    except ValueError:
        pass
    try:
        return float(cleaned), rest
    except ValueError:
        raise ConfigurationError(
            f"{where}: unsupported value {token!r} (the built-in TOML "
            "subset takes strings, integers, floats, booleans, arrays)"
        )
