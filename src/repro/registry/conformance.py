"""Scheme conformance kit: the contract every registered scheme must meet.

``python -m repro conform <scheme>`` (or ``--all``) runs each registered
scheme through the checks the paper's claims and the harness's
infrastructure both depend on:

* **principles** — every per-core monitor the built scheme installs
  satisfies Principle 1 and its schedule satisfies Principle 2, via the
  same :mod:`repro.core.principles` gate the schemes enforce at build
  time. Required for registrations declaring ``untangle_compliant``.
* **action-leakage** — the visible resizing action sequence is
  bit-identical across secret swaps on secret-sensitive workloads
  (Section 5.2's end-to-end property; zero action leakage).
* **kernel-identity** — results are bit-identical under the
  ``reference`` and ``batched`` simulation kernels.
* **lane-stacking** — stacked-lane execution reproduces sequential
  execution bit-for-bit.
* **store-tokens** — cache keys and precompute-store needs are stable
  across interpreter processes (fresh ``PYTHONHASHSEED``), so caches
  and stores survive restarts.
* **telemetry** — an engine pass over the scheme's cells preserves the
  accounting invariant ``computed + hit + replayed + failed == total``.

Checks that require compliance declarations are *skipped* (not failed)
for baseline schemes that deliberately break them — ``time`` leaks by
design; that is its role in the evaluation.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import dataclass, field

from repro.core.principles import (
    PrincipleViolation,
    require_progress_based_schedule,
    require_timing_independent_metric,
)
from repro.errors import ConfigurationError
from repro.harness.exec import ExecutionEngine, MixSchemeCell, cell_key
from repro.harness.experiment import (
    prepare_mix_scheme,
    run_mix_scheme,
    run_mix_schemes_stacked,
)
from repro.harness.runconfig import PROFILES, TEST, RunProfile
from repro.registry.core import (
    REGISTRY,
    Registration,
    unregistered_scheme_classes,
)
from repro.sim.kernelmode import KERNEL_ENV
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads.workload import build_workload

#: Mixes the conformance runs use. Both include secret-demand AND
#: secret-timing sensitive crypto so the secret-swap check has teeth.
QUICK_PAIRS = (("gcc_0", "RSA-2048"), ("deepsjeng_0", "AES-128"))
FULL_PAIRS = (
    ("gcc_0", "RSA-2048"),
    ("deepsjeng_0", "AES-128"),
    ("xz_0", "ECDSA"),
    ("parest_0", "AES-256"),
)

#: Secrets swapped in the action-leakage check.
SECRETS = (0, 0b101101)


@dataclass(frozen=True)
class ConformanceCheck:
    """One check outcome: ``passed``, ``failed``, or ``skipped``."""

    name: str
    status: str
    detail: str = ""


@dataclass
class ConformanceReport:
    """All check outcomes for one registered scheme."""

    scheme: str
    profile_name: str
    checks: list[ConformanceCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.status != "failed" for check in self.checks)

    def check(self, name: str) -> ConformanceCheck:
        for check in self.checks:
            if check.name == name:
                return check
        raise ConfigurationError(f"no conformance check named {name!r}")


def _record(report, name, runner) -> None:
    """Run one check body, folding outcomes/violations into the report."""
    try:
        detail = runner()
    except (PrincipleViolation, ConfigurationError, AssertionError) as exc:
        report.checks.append(ConformanceCheck(name, "failed", str(exc)))
    else:
        report.checks.append(ConformanceCheck(name, "passed", detail or ""))


def _skip(report, name, why) -> None:
    report.checks.append(ConformanceCheck(name, "skipped", why))


# ----------------------------------------------------------------------
# Check bodies
# ----------------------------------------------------------------------
def _check_principles(
    registration: Registration, profile: RunProfile, pairs
) -> str:
    prepared = prepare_mix_scheme(list(pairs), registration.name, profile)
    scheme = prepared.system.scheme
    monitors = list(getattr(scheme, "monitors", []))
    checked = 0
    for index, monitor in enumerate(monitors):
        if monitor is None:
            raise PrincipleViolation(
                f"scheme {registration.name!r} declares untangle "
                f"compliance but core {index} has no monitor to certify"
            )
        require_timing_independent_metric(monitor)
        checked += 1
    schedule = getattr(scheme, "schedule", None)
    if schedule is None:
        raise PrincipleViolation(
            f"scheme {registration.name!r} declares untangle compliance "
            "but exposes no schedule to certify against Principle 2"
        )
    require_progress_based_schedule(schedule)
    return f"{checked} monitor(s) P1-certified, schedule P2-certified"


def _victim_action_sequence(
    name: str, profile: RunProfile, spec: str, crypto: str, secret: int
):
    """The lone victim's resize-decision sequence for one secret.

    The Section 5.2 property is per-victim: the action sequence is a
    pure function of the victim's own public retired instructions. It
    is asserted on a single-domain system (as the timing-independence
    integration tests do) because with co-runners present the decisions
    legitimately also depend on the co-runners' demand — coupling the
    accountant charges for, rather than a leak.
    """
    built = build_workload(
        spec, crypto, profile.workload_scale, seed=profile.seed,
        secret=secret,
    )
    scheme = REGISTRY.create("scheme", name, profile, 1)
    system = MultiDomainSystem(
        profile.arch(1),
        [DomainSpec(f"{spec}+{crypto}", built.stream, built.core_config)],
        scheme,
        quantum=profile.quantum,
        sample_interval=profile.sample_interval,
    )
    system.run(max_cycles=profile.max_cycles)
    return tuple(action.new_size for action, _ in system.trace_logs[0])


def _check_action_leakage(
    registration: Registration, profile: RunProfile, pairs
) -> str:
    decisions = 0
    for spec, crypto in pairs:
        sequences = [
            _victim_action_sequence(
                registration.name, profile, spec, crypto, secret
            )
            for secret in SECRETS
        ]
        base, swapped = sequences
        if base != swapped:
            divergence = min(len(base), len(swapped))
            for index, (a, b) in enumerate(zip(base, swapped)):
                if a != b:
                    divergence = index
                    break
            raise AssertionError(
                f"scheme {registration.name!r} leaks through actions: "
                f"{spec}+{crypto}'s resize sequence changed with the "
                f"secret ({len(base)} vs {len(swapped)} decisions, first "
                f"divergence at index {divergence})"
            )
        decisions += len(base)
    assert decisions > 0, (
        f"scheme {registration.name!r} never assessed on the conformance "
        "workloads; the secret-swap check is vacuous"
    )
    return (
        f"{decisions} decisions identical across {len(SECRETS)} secrets "
        f"on {len(pairs)} victims"
    )


def _run_with_kernel(name, profile, pairs, mode):
    previous = os.environ.get(KERNEL_ENV)
    os.environ[KERNEL_ENV] = mode
    try:
        return run_mix_scheme(list(pairs), name, profile)
    finally:
        if previous is None:
            os.environ.pop(KERNEL_ENV, None)
        else:
            os.environ[KERNEL_ENV] = previous


def _check_kernel_identity(
    registration: Registration, profile: RunProfile, pairs
) -> str:
    batched = _run_with_kernel(registration.name, profile, pairs, "batched")
    reference = _run_with_kernel(
        registration.name, profile, pairs, "reference"
    )
    encoded = MixSchemeCell.encode(batched)
    assert encoded == MixSchemeCell.encode(reference), (
        f"scheme {registration.name!r} is not bit-identical across "
        "kernels: batched and reference runs disagree"
    )
    return f"batched == reference over {len(pairs)} workloads"


def _check_lane_stacking(
    registration: Registration, profile: RunProfile, pairs
) -> str:
    lanes = [list(pairs), list(reversed(pairs))]
    sequential = [
        run_mix_scheme(lane, registration.name, profile) for lane in lanes
    ]
    stacked = run_mix_schemes_stacked(
        [(lane, registration.name, profile) for lane in lanes]
    )
    for index, (alone, together) in enumerate(zip(sequential, stacked)):
        if isinstance(together, Exception):
            raise AssertionError(
                f"scheme {registration.name!r} lane {index} failed when "
                f"stacked: {together}"
            )
        assert MixSchemeCell.encode(alone) == MixSchemeCell.encode(
            together
        ), (
            f"scheme {registration.name!r} lane {index} diverges under "
            "lane stacking"
        )
    return f"{len(lanes)} stacked lanes bit-identical to sequential"


_CHILD_TOKEN_SCRIPT = """
import json, sys
from repro.harness.exec import MixSchemeCell, cell_key
from repro.harness.runconfig import PROFILES

spec = json.loads(sys.stdin.read())
cell = MixSchemeCell(
    pairs=tuple(tuple(p) for p in spec["pairs"]),
    scheme=spec["scheme"],
    profile=PROFILES[spec["profile"]],
)
print(json.dumps({"key": cell_key(cell), "needs": repr(cell.store_needs())}))
"""


def _check_store_tokens(
    registration: Registration, profile: RunProfile, pairs
) -> str:
    if PROFILES.get(profile.name) != profile:
        return (
            "skipped cross-process comparison: profile "
            f"{profile.name!r} is not a named profile the child can load"
        )
    cell = MixSchemeCell(
        pairs=tuple(pairs), scheme=registration.name, profile=profile
    )
    parent = {"key": cell_key(cell), "needs": repr(cell.store_needs())}
    env = dict(os.environ)
    # A different hash seed reorders every dict/set the token math might
    # accidentally lean on; stable tokens must not notice.
    env["PYTHONHASHSEED"] = "12345"
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (env.get("PYTHONPATH"), *sys.path) if p
    )
    child = subprocess.run(
        [sys.executable, "-c", _CHILD_TOKEN_SCRIPT],
        input=json.dumps(
            {
                "pairs": [list(p) for p in pairs],
                "scheme": registration.name,
                "profile": profile.name,
            }
        ),
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    if child.returncode != 0:
        raise AssertionError(
            f"store-token child process failed:\n{child.stderr.strip()}"
        )
    remote = json.loads(child.stdout)
    assert remote["key"] == parent["key"], (
        f"scheme {registration.name!r} cache key is process-dependent: "
        f"{parent['key']} here vs {remote['key']} in a fresh interpreter"
    )
    assert remote["needs"] == parent["needs"], (
        f"scheme {registration.name!r} store needs are process-dependent:"
        f" {parent['needs']} here vs {remote['needs']} in a fresh "
        "interpreter"
    )
    return "cache key and store needs stable across interpreters"


def _check_telemetry(
    registration: Registration, profile: RunProfile, pairs
) -> str:
    engine = ExecutionEngine()
    cells = [
        MixSchemeCell(
            pairs=tuple(lane), scheme=registration.name, profile=profile
        )
        for lane in (list(pairs), list(reversed(pairs)))
    ]
    outcomes = engine.run(cells, campaign=f"conform[{registration.name}]")
    failed = [o.cell.label for o in outcomes if not o.ok]
    assert not failed, (
        f"scheme {registration.name!r} cells failed under the engine: "
        + ", ".join(failed)
    )
    snapshot = engine.telemetry.snapshot()
    accounted = (
        snapshot["computed"]
        + snapshot["hit"]
        + snapshot["replayed"]
        + snapshot["failed"]
    )
    assert accounted == snapshot["total"], (
        f"telemetry invariant broken for {registration.name!r}: "
        f"computed+hit+replayed+failed = {accounted} != total "
        f"{snapshot['total']}"
    )
    return (
        f"{snapshot['total']} cells accounted "
        f"({snapshot['computed']} computed)"
    )


# ----------------------------------------------------------------------
# Drivers
# ----------------------------------------------------------------------
def run_scheme_conformance(
    name: str, profile: RunProfile = TEST, *, quick: bool = True
) -> ConformanceReport:
    """Run the full conformance battery for one registered scheme."""
    registration = REGISTRY.get("scheme", name)
    pairs = QUICK_PAIRS if quick else FULL_PAIRS
    report = ConformanceReport(scheme=name, profile_name=profile.name)

    if registration.untangle_compliant:
        _record(
            report,
            "principles",
            lambda: _check_principles(registration, profile, pairs),
        )
        _record(
            report,
            "action-leakage",
            lambda: _check_action_leakage(registration, profile, pairs),
        )
    else:
        why = (
            f"registration {name!r} does not declare untangle compliance "
            "(baseline scheme; P1/P2 and zero action leakage not claimed)"
        )
        _skip(report, "principles", why)
        _skip(report, "action-leakage", why)

    _record(
        report,
        "kernel-identity",
        lambda: _check_kernel_identity(registration, profile, pairs),
    )
    _record(
        report,
        "lane-stacking",
        lambda: _check_lane_stacking(registration, profile, pairs),
    )
    _record(
        report,
        "store-tokens",
        lambda: _check_store_tokens(registration, profile, pairs),
    )
    _record(
        report,
        "telemetry",
        lambda: _check_telemetry(registration, profile, pairs),
    )
    return report


def check_registration_drift() -> ConformanceReport:
    """Fail if an importable scheme class is not covered by the registry.

    The drift detector walks ``repro.schemes`` for concrete
    ``BaseScheme`` subclasses and demands each appear in some
    registration's ``produces`` — a new scheme module that forgets to
    register stays invisible to campaigns, specs, and this very
    conformance gate, which is exactly the failure mode this check
    exists to catch.
    """
    report = ConformanceReport(scheme="<registry>", profile_name="-")
    missing = unregistered_scheme_classes()
    if missing:
        report.checks.append(
            ConformanceCheck(
                "registration-drift",
                "failed",
                "importable but unregistered scheme class(es): "
                + ", ".join(missing)
                + " — register them (or add them to an existing "
                "registration's 'produces')",
            )
        )
    else:
        report.checks.append(
            ConformanceCheck(
                "registration-drift",
                "passed",
                "every importable scheme class is covered by a "
                "registration",
            )
        )
    return report


def run_all(
    schemes: list[str] | None = None,
    profile: RunProfile = TEST,
    *,
    quick: bool = True,
    drift: bool = True,
) -> list[ConformanceReport]:
    """Conformance for the named schemes (default: all registered)."""
    names = schemes if schemes else list(REGISTRY.names("scheme"))
    reports = []
    if drift:
        reports.append(check_registration_drift())
    for name in names:
        reports.append(run_scheme_conformance(name, profile, quick=quick))
    return reports
