"""Plugin registry and declarative scenarios (see ``docs/scenarios.md``).

Importing this package registers the built-in schemes, monitors,
channel models, and workload generators; third-party distributions add
theirs via ``repro.plugins`` entry points or by calling
:func:`get_registry` directly. The helpers here are the narrow API the
harness layers (``experiment``, ``exec``, the CLI) resolve through —
they exist so those layers never reach into registry internals.

Submodules :mod:`repro.registry.scenario` (declarative campaign specs)
and :mod:`repro.registry.conformance` (the scheme conformance kit) are
imported explicitly by their users, not here, to keep scheme
construction importable without the harness.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import ConfigurationError
from repro.registry.core import (
    ENTRY_POINT_GROUP,
    KINDS,
    REGISTRY,
    ParamSpec,
    Registration,
    Registry,
    SchemeSelection,
    canonical_params,
    get_registry,
    unregistered_scheme_classes,
)
from repro.registry import builtin as _builtin  # noqa: F401  (registers)


def scheme_names() -> tuple[str, ...]:
    """Every registered scheme name, in registration order."""
    return REGISTRY.names("scheme")


def default_campaign_schemes() -> tuple[str, ...]:
    """The schemes a mix campaign runs when none are requested —
    the paper's Figure 10/12-17 column set."""
    return tuple(
        entry.name
        for entry in REGISTRY.registrations("scheme")
        if entry.default_for_campaign
    )


def create_scheme(
    name: str,
    profile: Any,
    num_domains: int,
    params: Mapping[str, Any] | None = None,
) -> Any:
    """Instantiate a registered scheme (the ``make_scheme`` backend)."""
    return REGISTRY.create("scheme", name, profile, num_domains, params=params)


def scheme_registration(name: str) -> Registration:
    return REGISTRY.get("scheme", name)


def scheme_store_needs(
    name: str, profile: Any, params: Mapping[str, Any] | None = None
) -> list[tuple]:
    """The precomputable artifacts cells of this scheme consume."""
    entry = REGISTRY.get("scheme", name)
    if entry.store_needs is None:
        return []
    return list(entry.store_needs(profile, entry.effective_params(params)))


def scheme_cost_weight(name: str) -> float | None:
    """Scheduler cost-model seed for a scheme family; None if unknown
    (non-scheme families, e.g. sensitivity partition sizes)."""
    try:
        return REGISTRY.get("scheme", name).cost_weight
    except ConfigurationError:
        return None


def validate_schemes(schemes: tuple[str, ...] | list[str]) -> tuple[str, ...]:
    """Resolve each name against the registry, raising on unknowns."""
    for name in schemes:
        REGISTRY.get("scheme", name)
    return tuple(schemes)


__all__ = [
    "ENTRY_POINT_GROUP",
    "KINDS",
    "REGISTRY",
    "ParamSpec",
    "Registration",
    "Registry",
    "SchemeSelection",
    "canonical_params",
    "create_scheme",
    "default_campaign_schemes",
    "get_registry",
    "scheme_cost_weight",
    "scheme_names",
    "scheme_registration",
    "scheme_store_needs",
    "unregistered_scheme_classes",
    "validate_schemes",
]
