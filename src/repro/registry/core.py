"""The plugin registry: schemes, monitors, channel models, generators.

The paper's central claim is that Untangle is a *framework*: any scheme
assembled from a P1 metric and a P2 schedule (Table 2) inherits its
leakage bounds. The harness therefore must not hard-wire scheme names
into if-chains — new schemes (in-tree or third-party) register here and
immediately become campaign citizens: ``make_scheme`` resolves them,
the CLI offers them, scenario specs reference them by name, and the
conformance kit (:mod:`repro.registry.conformance`) validates them.

Registration is declarative: a factory plus a parameter schema
(:class:`ParamSpec`), so scenario specs can override parameters by name
with type checking, and cache tokens can embed the overrides
canonically. Two registration channels exist:

* decorators on the module-level :data:`REGISTRY` (how the built-ins in
  :mod:`repro.registry.builtin` register), and
* ``repro.plugins`` entry points for third-party distributions: each
  entry point resolves to a callable invoked with the registry (or to a
  module whose import registers as a side effect). Plugin failures are
  recorded, never raised — a broken plugin must not take down campaigns
  that never use it.
"""

from __future__ import annotations

import inspect
from contextlib import contextmanager
from dataclasses import dataclass, field
from importlib.metadata import entry_points
from typing import Any, Callable, Iterable, Iterator, Mapping

from repro.errors import ConfigurationError

#: Registrable object kinds (Table 2's scheme components plus workloads).
KINDS = ("scheme", "monitor", "channel-model", "workload")

#: Entry-point group third-party distributions register under.
ENTRY_POINT_GROUP = "repro.plugins"

#: Scalar types a parameter value (or sequence element) may take — the
#: JSON-representable subset, so overrides embed in cache tokens.
_SCALARS = (str, int, float, bool)


@dataclass(frozen=True)
class ParamSpec:
    """One declared, overridable parameter of a registered factory."""

    name: str
    default: Any
    types: tuple[type, ...]
    doc: str = ""

    def validate(self, value: Any) -> Any:
        """Type-check one override; returns the canonicalized value."""
        # bool is an int subclass; accept it only when declared.
        if isinstance(value, bool) and bool not in self.types:
            raise ConfigurationError(
                f"parameter {self.name!r} expects "
                f"{self._expected()}, got bool {value!r}"
            )
        if not isinstance(value, self.types):
            raise ConfigurationError(
                f"parameter {self.name!r} expects "
                f"{self._expected()}, got {type(value).__name__} {value!r}"
            )
        if isinstance(value, (list, tuple)):
            bad = [v for v in value if not isinstance(v, _SCALARS)]
            if bad:
                raise ConfigurationError(
                    f"parameter {self.name!r} elements must be scalars, "
                    f"got {bad!r}"
                )
            return tuple(value)
        return value

    def _expected(self) -> str:
        return "/".join(t.__name__ for t in self.types)


@dataclass(frozen=True)
class Registration:
    """One named factory plus everything the harness needs to wire it.

    ``params`` declares which keyword overrides the factory accepts;
    anything else is rejected at validation time, so a typo in a
    scenario spec fails loudly instead of silently running defaults.

    ``untangle_compliant`` is the registration's *claim* that the
    factory's schemes satisfy P1+P2 (zero action leakage); the
    conformance kit holds every claimant to it with secret-swap runs.

    ``produces`` names the concrete class(es) the factory returns —
    the drift detector uses it to flag importable-but-unregistered
    scheme classes. ``store_needs(profile, params)`` mirrors
    ``MixSchemeCell.store_needs``: the precomputable artifacts cells of
    this scheme consume (e.g. the exact rate table the factory will
    request). ``cost_weight`` seeds the work-stealing scheduler's cost
    model when no journal history exists yet.
    """

    kind: str
    name: str
    factory: Callable[..., Any]
    description: str = ""
    params: tuple[ParamSpec, ...] = ()
    untangle_compliant: bool = False
    cost_weight: float = 1.0
    produces: tuple[type, ...] = ()
    store_needs: Callable[..., list] | None = None
    default_for_campaign: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown registration kind {self.kind!r}; known: {KINDS}"
            )
        if not self.name:
            raise ConfigurationError("registration needs a non-empty name")

    @property
    def param_names(self) -> tuple[str, ...]:
        return tuple(spec.name for spec in self.params)

    def param(self, name: str) -> ParamSpec:
        for spec in self.params:
            if spec.name == name:
                return spec
        raise ConfigurationError(
            f"{self.kind} {self.name!r} has no parameter {name!r}; "
            f"declared: {', '.join(self.param_names) or '(none)'}"
        )

    def validated_params(self, params: Mapping[str, Any] | None) -> dict:
        """Type-checked overrides only (factory defaults fill the rest)."""
        if not params:
            return {}
        return {
            name: self.param(name).validate(value)
            for name, value in params.items()
        }

    def effective_params(self, params: Mapping[str, Any] | None) -> dict:
        """Declared defaults overlaid with the validated overrides."""
        effective = {spec.name: spec.default for spec in self.params}
        effective.update(self.validated_params(params))
        return effective


def canonical_params(
    params: Mapping[str, Any] | Iterable[tuple[str, Any]] | None,
) -> tuple[tuple[str, Any], ...]:
    """Overrides as a sorted, hashable tuple — the cache-token form.

    Lists become tuples so the result can ride a frozen dataclass field
    (``MixSchemeCell.scheme_params``); sorting makes the cell identity
    independent of spelling order in a scenario file.
    """
    if not params:
        return ()
    items = params.items() if isinstance(params, Mapping) else params
    return tuple(
        (name, tuple(value) if isinstance(value, list) else value)
        for name, value in sorted(items)
    )


@dataclass(frozen=True)
class SchemeSelection:
    """One scheme column of a campaign: registry name plus overrides.

    ``alias`` names the column in result dicts (``MixResult.runs``) and
    defaults to the scheme name; a scenario comparing two
    parameterizations of one scheme gives each an alias.
    """

    name: str
    alias: str | None = None
    params: tuple[tuple[str, Any], ...] = ()

    @property
    def run_key(self) -> str:
        return self.alias if self.alias else self.name

    @staticmethod
    def of(value: "str | SchemeSelection") -> "SchemeSelection":
        if isinstance(value, SchemeSelection):
            return value
        return SchemeSelection(name=value)


class Registry:
    """Name → :class:`Registration`, per kind, in registration order."""

    def __init__(self) -> None:
        self._entries: dict[tuple[str, str], Registration] = {}
        self._plugins_loaded = False
        #: Failure strings from entry-point plugins that did not load.
        self.plugin_errors: list[str] = []

    # -- registration --------------------------------------------------
    def register(
        self, registration: Registration, *, replace: bool = False
    ) -> Registration:
        key = (registration.kind, registration.name)
        if key in self._entries and not replace:
            raise ConfigurationError(
                f"{registration.kind} {registration.name!r} is already "
                "registered; pass replace=True to override"
            )
        self._entries[key] = registration
        return registration

    def add(self, kind: str, name: str, **meta: Any) -> Callable:
        """Decorator channel: ``@REGISTRY.add("scheme", "mine", ...)``."""

        def decorator(factory: Callable) -> Callable:
            description = meta.pop(
                "description", inspect.getdoc(factory) or ""
            ).split("\n", 1)[0]
            self.register(
                Registration(
                    kind=kind,
                    name=name,
                    factory=factory,
                    description=description,
                    **meta,
                ),
                replace=meta_replace,
            )
            return factory

        meta_replace = bool(meta.pop("replace", False))
        return decorator

    def scheme(self, name: str, **meta: Any) -> Callable:
        return self.add("scheme", name, **meta)

    def monitor(self, name: str, **meta: Any) -> Callable:
        return self.add("monitor", name, **meta)

    def channel_model(self, name: str, **meta: Any) -> Callable:
        return self.add("channel-model", name, **meta)

    def workload_generator(self, name: str, **meta: Any) -> Callable:
        return self.add("workload", name, **meta)

    def unregister(self, kind: str, name: str) -> None:
        if self._entries.pop((kind, name), None) is None:
            raise ConfigurationError(f"{kind} {name!r} is not registered")

    @contextmanager
    def temporary(self, registration: Registration) -> Iterator[Registration]:
        """Scoped registration (tests): restores the prior state on exit."""
        key = (registration.kind, registration.name)
        previous = self._entries.get(key)
        self.register(registration, replace=True)
        try:
            yield registration
        finally:
            if previous is None:
                self._entries.pop(key, None)
            else:
                self._entries[key] = previous

    # -- lookup --------------------------------------------------------
    def get(self, kind: str, name: str) -> Registration:
        self._load_plugins()
        entry = self._entries.get((kind, name))
        if entry is None:
            raise ConfigurationError(
                f"unknown {kind} {name!r}; registered: "
                f"{', '.join(self.names(kind)) or '(none)'}"
            )
        return entry

    def names(self, kind: str) -> tuple[str, ...]:
        self._load_plugins()
        return tuple(n for k, n in self._entries if k == kind)

    def registrations(self, kind: str) -> tuple[Registration, ...]:
        self._load_plugins()
        return tuple(
            entry for (k, _), entry in self._entries.items() if k == kind
        )

    def create(
        self,
        kind: str,
        name: str,
        *args: Any,
        params: Mapping[str, Any] | None = None,
    ) -> Any:
        """Instantiate via the named factory with validated overrides."""
        entry = self.get(kind, name)
        return entry.factory(*args, **entry.validated_params(params))

    # -- entry-point plugins -------------------------------------------
    def _load_plugins(self) -> None:
        if self._plugins_loaded:
            return
        self._plugins_loaded = True
        try:
            discovered = entry_points(group=ENTRY_POINT_GROUP)
        except Exception as exc:  # pragma: no cover - metadata breakage
            self.plugin_errors.append(
                f"entry-point discovery failed: {exc}"
            )
            return
        for ep in discovered:
            try:
                loaded = ep.load()
                if callable(loaded):
                    loaded(self)
            except Exception as exc:
                self.plugin_errors.append(
                    f"plugin {ep.name!r} ({ep.value}) failed: {exc}"
                )


#: The process-wide registry every harness layer resolves against.
REGISTRY = Registry()


def get_registry() -> Registry:
    return REGISTRY


def unregistered_scheme_classes(package: str = "repro.schemes") -> list[str]:
    """Importable scheme classes no registration claims to produce.

    The registry/:data:`~repro.harness.experiment.SCHEME_NAMES` drift
    detector: walks the scheme package, imports every module, and
    reports each :class:`~repro.schemes.base.BaseScheme` subclass
    defined there that is absent from every registration's ``produces``
    — a scheme someone wrote but forgot to register, which campaigns,
    the CLI, and the conformance kit would all silently miss.
    """
    import importlib
    import pkgutil

    from repro.schemes.base import BaseScheme

    covered: set[type] = set()
    for entry in REGISTRY.registrations("scheme"):
        covered.update(entry.produces)
    pkg = importlib.import_module(package)
    missing: set[str] = set()
    for info in pkgutil.iter_modules(pkg.__path__):
        module = importlib.import_module(f"{package}.{info.name}")
        for obj in vars(module).values():
            if (
                inspect.isclass(obj)
                and issubclass(obj, BaseScheme)
                and obj is not BaseScheme
                and obj.__module__ == module.__name__
                and not inspect.isabstract(obj)
                and obj not in covered
            ):
                missing.add(f"{obj.__module__}.{obj.__qualname__}")
    return sorted(missing)
