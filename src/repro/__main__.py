"""Command-line entry point: ``python -m repro <command>``.

Runs the paper's experiments from a terminal without writing any code:

* ``python -m repro mix 1``              — one figure group (Figure 10 style)
* ``python -m repro mix 1 --schemes static threshold``  — ad-hoc scheme set
* ``python -m repro sensitivity``        — Figure 11 (all 36 benchmarks)
* ``python -m repro table6``             — Table 6 (mixes 1-4)
* ``python -m repro rmax``               — Appendix A rate table
* ``python -m repro scenario spec.toml`` — run a declarative scenario file
* ``python -m repro conform --all``      — scheme conformance battery
* ``python -m repro mix 1 --profile test``  — faster, smaller profile

Scheme names everywhere (``--schemes``, scenario files) resolve through
the plugin registry (``repro.registry``), so third-party schemes
registered via ``repro.plugins`` entry points are first-class citizens
of every command, including ``conform``.

Simulation commands accept ``--jobs N`` to fan independent simulation
cells out over a process pool and cache results on disk under
``--cache-dir`` (default ``.repro-cache``; ``--no-cache`` disables).
``--jobs 1`` — the default — is the serial debugging fallback; results
are bit-identical either way. ``--telemetry`` prints the engine's cache
and timing counters to stderr afterwards.

Parallel runs schedule through a work-stealing supervisor by default:
``--sched steal`` (or ``REPRO_SCHED``) dispatches chunks of
batch-compatible cells to one worker — sized by ``--batch-cells``
(``0`` = auto) — seeded longest-expected-first from journal runtime
history, with idle workers stealing from the most loaded peer;
``--sched fifo`` restores legacy one-cell-at-a-time dispatch (see
``docs/performance.md``).

Cells additionally share a cross-cell *precompute store*
(``docs/performance.md``): workload traces and Untangle rate tables are
computed once per campaign at ``<cache-dir>/store`` (or
``REPRO_STORE_DIR``) and attached zero-copy by every worker.
``--no-precompute-store`` (or ``REPRO_PRECOMPUTE=off``) forces the
legacy rebuild-per-cell path; the store is independent of the result
cache, so ``--no-cache`` alone still shares traces while re-simulating
every cell.

Fault tolerance: every finished cell is journaled to
``<cache-dir>/journal.jsonl``; an interrupted (Ctrl-C / SIGTERM) or
killed campaign re-run with ``--resume`` (or ``REPRO_RESUME=1``)
replays journaled cells and simulates only what never completed.
``--retries`` bounds per-cell retry attempts and ``--timeout`` sets the
per-cell deadline after which a hung worker is killed and respawned;
``--heartbeat`` tunes the worker liveness beats that let the supervisor
tell slow from hung mid-cell (see ``docs/robustness.md``). A campaign
that completes with failed or poisoned cells exits non-zero, prints a
per-cell failure summary, and renders ``<cache-dir>/failures.json``.
``REPRO_FAULTS`` injects crashes/hangs/stalls/corruption/disk errors
for chaos runs (see ``repro.harness.faults``).

Observability (``docs/observability.md``): ``--trace PATH`` (or
``REPRO_TRACE``) appends structured spans/events for every cell,
worker, journal append, and simulation run to a JSONL sink;
``--metrics-out PATH`` (or ``REPRO_METRICS``) writes a Prometheus-style
metrics textfile plus a JSON snapshot when the command finishes.
``python -m repro trace-summarize trace.jsonl`` renders the per-phase
wall-time breakdown of a recorded trace.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.errors import CampaignInterrupted, ConfigurationError
from repro.harness.exec import SCHEDULERS, ExecutionEngine, ResultCache
from repro.harness.store import (
    PRECOMPUTE_ENV,
    STORE_DIR_ENV,
    PrecomputeStore,
    precompute_from_env,
)
from repro.harness.faults import faults_from_env
from repro.harness.journal import RunJournal, batching_from_env
from repro.harness.experiment import run_mix
from repro.harness.profiling import PROFILE_DIR_ENV, PROFILE_ENV
from repro.harness.figures import figure_group
from repro.harness.report import (
    render_conformance,
    render_figure_group,
    render_mix_result,
    render_scenario,
    render_sensitivity,
    render_table6,
    render_telemetry,
)
from repro.harness.runconfig import PROFILES
from repro.registry import scheme_names
from repro.harness.sensitivity import run_sensitivity_study
from repro.harness.tables import table6
from repro.obs import configure_tracing
from repro.obs.metrics import export_metrics
from repro.obs.summarize import render_summary, summarize_trace


def _jobs_count(text: str) -> int:
    """``--jobs`` value: >= 1 workers, or 0 meaning one per CPU."""
    jobs = int(text)
    if jobs < 0:
        raise argparse.ArgumentTypeError("must be >= 0 (0 = one per CPU)")
    return jobs if jobs else (os.cpu_count() or 1)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Untangle (ASPLOS 2023) evaluation.",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="scaled",
        help="experiment scale (default: scaled)",
    )
    parser.add_argument(
        "--jobs",
        type=_jobs_count,
        default=1,
        help=(
            "worker processes for simulation cells "
            "(default: 1 = serial; 0 = one per CPU)"
        ),
    )
    parser.add_argument(
        "--sched",
        choices=SCHEDULERS,
        default=None,
        help=(
            "campaign scheduler: steal = per-worker deques with "
            "work stealing (default), fifo = legacy per-cell global "
            "queue (also: REPRO_SCHED)"
        ),
    )
    parser.add_argument(
        "--batch-cells",
        type=int,
        default=None,
        metavar="N",
        help=(
            "cells per dispatched chunk under the steal scheduler "
            "(0 = auto per batch group, 1 = per-cell dispatch; "
            "also: REPRO_BATCH_CELLS)"
        ),
    )
    parser.add_argument(
        "--stack-lanes",
        type=int,
        default=None,
        metavar="K",
        help=(
            "lane-stacked multi-cell execution: run batch-compatible "
            "cells as interleaved lanes of one vectorized kernel pass "
            "(0 = auto lane count, K = cap stacks at K lanes; "
            "default off; also: REPRO_SIM_STACK)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=".repro-cache",
        help="on-disk result cache directory (default: .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=(
            "disable the on-disk result cache (the precompute store "
            "stays on — use --no-precompute-store to disable it too)"
        ),
    )
    parser.add_argument(
        "--no-precompute-store",
        action="store_true",
        help=(
            "disable the cross-cell precompute store and rebuild every "
            "workload trace / rate table per cell (legacy path; also: "
            "REPRO_PRECOMPUTE=off)"
        ),
    )
    parser.add_argument(
        "--telemetry",
        action="store_true",
        help="print engine cache/timing counters to stderr",
    )
    parser.add_argument(
        "--cprofile",
        default=None,
        metavar="CELL",
        help=(
            "cProfile one simulation cell — the first whose label "
            "contains CELL, or the first cell run with CELL=all — and "
            "write profile-<cell>.pstats beside the cache dir "
            "(also: REPRO_PROFILE=CELL)"
        ),
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "append structured trace spans/events (cells, workers, "
            "journal, simulation runs) to a JSONL file at PATH "
            "(also: REPRO_TRACE=PATH; REPRO_TRACE=1 writes trace.jsonl "
            "beside the cache dir)"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write a Prometheus-style metrics textfile to PATH (plus a "
            "PATH.json snapshot) when the command finishes "
            "(also: REPRO_METRICS=PATH)"
        ),
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "replay cells journaled by a previous (possibly interrupted) "
            "run instead of re-simulating them (also: REPRO_RESUME=1)"
        ),
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retry budget per failed/crashed/hung cell (default: 1)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell deadline; a parallel worker past it is killed and "
            "respawned (default: none). With heartbeats on it bounds "
            "inactivity: progress-carrying beats extend it"
        ),
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "worker liveness heartbeat interval; lets the supervisor "
            "tell slow from hung mid-cell (default: 1; 0 disables; "
            "also: REPRO_HEARTBEAT)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mix = commands.add_parser("mix", help="run one workload mix (Figures 10/12-17)")
    mix.add_argument("mix_id", type=int, choices=range(1, 17))
    mix.add_argument(
        "--schemes",
        nargs="+",
        choices=scheme_names(),
        default=None,
        metavar="SCHEME",
        help=(
            "registry scheme names to run instead of the default "
            "campaign set (registered: " + ", ".join(scheme_names()) + ")"
        ),
    )

    scenario = commands.add_parser(
        "scenario",
        help="run a declarative scenario spec (TOML/JSON; docs/scenarios.md)",
    )
    scenario.add_argument("spec_path", help="scenario file (.toml or .json)")

    conform = commands.add_parser(
        "conform",
        help=(
            "scheme conformance battery: P1/P2 principles, action-leakage, "
            "kernel bit-identity, lane stacking, store tokens, telemetry"
        ),
    )
    conform.add_argument(
        "schemes",
        nargs="*",
        metavar="SCHEME",
        help="schemes to check (default: every registered scheme)",
    )
    conform.add_argument(
        "--all",
        action="store_true",
        help="check every registered scheme plus registration drift",
    )
    conform.add_argument(
        "--quick",
        action="store_true",
        help="small workload-pair set (the default; CI speed)",
    )
    conform.add_argument(
        "--full",
        action="store_true",
        help="extended workload-pair set (slower, broader coverage)",
    )
    conform.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="test",
        help=(
            "profile for conformance runs (default: test — the checks "
            "are differential properties, not performance measurements)"
        ),
    )

    commands.add_parser(
        "sensitivity", help="LLC sensitivity study of all 36 benchmarks (Figure 11)"
    )
    commands.add_parser("table6", help="leakage summary of mixes 1-4 (Table 6)")

    rmax = commands.add_parser(
        "rmax", help="compute the R_max table (Appendix A / Section 7)"
    )
    rmax.add_argument(
        "--capacity", type=int, default=16, help="table capacity (Maintain levels)"
    )

    summarize = commands.add_parser(
        "trace-summarize",
        help="per-phase wall-time breakdown of a trace JSONL (--trace output)",
    )
    summarize.add_argument("trace_path", help="trace JSONL file to summarize")
    return parser


def build_engine(args: argparse.Namespace) -> ExecutionEngine:
    """The execution engine requested on the command line.

    The crash-recovery journal rides with the cache directory
    (``<cache-dir>/journal.jsonl``); ``--no-cache`` disables both.
    ``REPRO_RESUME=1`` and ``REPRO_FAULTS`` are honored alongside the
    flags so chaos/recovery behavior can be driven from the environment.

    The precompute store (``docs/performance.md``) lives at
    ``<cache-dir>/store`` (or ``REPRO_STORE_DIR``) and is *independent*
    of the result cache: ``--no-cache`` re-simulates every cell but
    still shares workload traces and rate tables across them, while
    ``--no-precompute-store`` / ``REPRO_PRECOMPUTE=off`` forces the
    legacy rebuild-per-cell path. Passing ``--no-precompute-store``
    while the environment explicitly enables the store is rejected as a
    conflict.
    """
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if args.no_cache:
        journal = None
    else:
        batch_entries, linger_seconds = batching_from_env()
        journal = RunJournal(
            Path(args.cache_dir) / "journal.jsonl",
            batch_entries=batch_entries,
            linger_seconds=linger_seconds,
        )
    store = None
    raw_precompute = os.environ.get(PRECOMPUTE_ENV, "").strip().lower()
    if args.no_precompute_store:
        if raw_precompute and precompute_from_env():
            raise ConfigurationError(
                f"--no-precompute-store conflicts with "
                f"{PRECOMPUTE_ENV}={os.environ.get(PRECOMPUTE_ENV)!r}; "
                "accepted: drop the flag, or set "
                f"{PRECOMPUTE_ENV}=off (or unset it)"
            )
        # Through the environment so cells — serial or in workers — take
        # the legacy build path even if REPRO_STORE_DIR is set.
        os.environ[PRECOMPUTE_ENV] = "off"
    elif precompute_from_env():
        store_dir = os.environ.get(STORE_DIR_ENV) or (
            Path(args.cache_dir) / "store"
        )
        store = PrecomputeStore(store_dir)
    resume = args.resume or os.environ.get("REPRO_RESUME", "") in (
        "1",
        "true",
        "yes",
        "on",
    )
    scheduler = args.sched or (
        os.environ.get("REPRO_SCHED", "").strip().lower() or "steal"
    )
    if scheduler not in SCHEDULERS:
        raise ConfigurationError(
            f"REPRO_SCHED={scheduler!r} is not a scheduler; accepted: "
            + ", ".join(SCHEDULERS)
        )
    batch_cells = args.batch_cells
    if batch_cells is None:
        raw_batch = os.environ.get("REPRO_BATCH_CELLS", "").strip()
        if raw_batch:
            try:
                batch_cells = int(raw_batch)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_BATCH_CELLS={raw_batch!r} is not an integer; "
                    "accepted: a non-negative integer (0 = auto)"
                )
    if batch_cells is not None and batch_cells < 0:
        raise ConfigurationError(
            "batch-cells must be >= 0 (0 = auto per batch group)"
        )
    stack_lanes = args.stack_lanes
    if stack_lanes is None:
        raw_stack = os.environ.get("REPRO_SIM_STACK", "").strip()
        if raw_stack:
            try:
                stack_lanes = int(raw_stack)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_SIM_STACK={raw_stack!r} is not an integer; "
                    "accepted: a non-negative integer (0 = auto lanes, "
                    "K = lane cap; unset = stacking off)"
                )
    if stack_lanes is not None and stack_lanes < 0:
        raise ConfigurationError(
            "stack-lanes must be >= 0 (0 = auto lane count)"
        )
    progress = (
        (lambda line: print(line, file=sys.stderr)) if args.telemetry else None
    )
    heartbeat = args.heartbeat
    if heartbeat is None:
        raw_heartbeat = os.environ.get("REPRO_HEARTBEAT", "").strip()
        if raw_heartbeat:
            try:
                heartbeat = float(raw_heartbeat)
            except ValueError:
                raise ConfigurationError(
                    f"REPRO_HEARTBEAT={raw_heartbeat!r} is not a number; "
                    "accepted: a non-negative number of seconds (0 = off)"
                )
        else:
            heartbeat = 1.0
    if heartbeat < 0:
        raise ConfigurationError(
            "heartbeat must be >= 0 (0 disables heartbeats)"
        )
    return ExecutionEngine(
        jobs=args.jobs,
        cache=cache,
        timeout=args.timeout,
        heartbeat=heartbeat,
        retries=args.retries,
        journal=journal,
        resume=resume,
        faults=faults_from_env(),
        progress=progress,
        store=store,
        scheduler=scheduler,
        batch_cells=batch_cells,
        stack_lanes=stack_lanes,
    )


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "trace-summarize":
        print(render_summary(summarize_trace(args.trace_path)))
        return 0
    if args.command == "conform":
        return _run_conform(args)
    profile = PROFILES[args.profile]
    if args.cprofile:
        # Workers inherit the environment, so the request reaches the
        # cell wherever it executes; the stats land beside the cache dir.
        os.environ[PROFILE_ENV] = args.cprofile
        os.environ.setdefault(
            PROFILE_DIR_ENV, str(Path(args.cache_dir).resolve().parent)
        )
    if args.trace:
        # Through the environment so forked/spawned workers inherit it.
        configure_tracing(args.trace)
    try:
        engine = build_engine(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        if args.command == "mix":
            schemes = _dedup(args.schemes) if args.schemes else None
            result = run_mix(args.mix_id, profile, schemes, engine=engine)
            if schemes is None:
                group = figure_group(args.mix_id, profile, mix_result=result)
                print(render_figure_group(group))
            else:
                # An ad-hoc scheme set need not contain the figure's
                # static/time/untangle columns; render the plain table.
                print(render_mix_result(result))
        elif args.command == "scenario":
            from repro.registry.scenario import load_scenario, run_scenario

            spec = load_scenario(args.spec_path)
            result = run_scenario(spec, base_profile=profile, engine=engine)
            print(render_scenario(result))
        elif args.command == "sensitivity":
            curves = run_sensitivity_study(profile=profile, engine=engine)
            print(render_sensitivity(curves))
        elif args.command == "table6":
            print(render_table6(table6(profile, engine=engine)))
        elif args.command == "rmax":
            from repro.core.rates import RmaxTable
            from repro.schemes.untangle import default_channel_model

            model = default_channel_model(profile.cooldown)
            table = RmaxTable(model, capacity=args.capacity)
            print(f"R_max table (T_c = {profile.cooldown} cycles):")
            for entry in table.entries():
                print(
                    f"  m={entry.maintains:3d}  "
                    f"rate={entry.rate_upper_bound * profile.cooldown:8.4f} bits/T_c  "
                    f"bits/tx={entry.bits_per_transmission:6.3f}"
                )
    except CampaignInterrupted as exc:
        print(f"\n{exc}", file=sys.stderr)
        if engine.telemetry.cells:
            print(render_telemetry(engine.telemetry), file=sys.stderr)
        _write_metrics(args)
        return 130
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:
        # Rendering needs every cell's result; with failed/poisoned
        # cells it can legitimately come up short (e.g. a figure's
        # scheme run missing). That is the campaign's failure story —
        # tell it via the per-cell summary below, not a traceback. A
        # rendering crash on a fully green campaign is a real bug.
        if not _failing_records(engine):
            raise
        print(
            f"error: cannot render output ({type(exc).__name__}: {exc}) "
            "— campaign results are incomplete",
            file=sys.stderr,
        )
    if args.telemetry and engine.telemetry.cells:
        print(render_telemetry(engine.telemetry), file=sys.stderr)
    _write_metrics(args)
    return _campaign_exit_status(engine)


def _dedup(names: list[str]) -> tuple[str, ...]:
    """Order-preserving dedup (``--schemes static static`` runs one cell)."""
    return tuple(dict.fromkeys(names))


def _run_conform(args: argparse.Namespace) -> int:
    """``python -m repro conform``: the scheme conformance battery.

    Runs without the execution engine — the checks construct their own
    single-domain systems and throwaway engines. Exit status: 0 when
    every check passes (or skips), 1 on any failure, 2 on bad usage.
    """
    from repro.registry.conformance import run_all

    if args.quick and args.full:
        print("error: --quick and --full conflict", file=sys.stderr)
        return 2
    names = list(_dedup(args.schemes))
    if args.all and names:
        print(
            "error: give scheme names or --all, not both", file=sys.stderr
        )
        return 2
    known = scheme_names()
    unknown = sorted(set(names) - set(known))
    if unknown:
        print(
            f"error: unregistered scheme(s): {', '.join(unknown)} "
            f"(registered: {', '.join(known)})",
            file=sys.stderr,
        )
        return 2
    # Bare ``conform`` behaves like ``--all``: every registered scheme,
    # plus the registration-drift detector. Named schemes skip drift —
    # the caller asked about specific schemes, not registry hygiene.
    reports = run_all(
        schemes=names or None,
        profile=PROFILES[args.profile],
        quick=not args.full,
        drift=not names,
    )
    print(render_conformance(reports))
    return 0 if all(report.ok for report in reports) else 1


def _failing_records(engine: ExecutionEngine) -> list:
    return [
        r
        for r in engine.telemetry.records
        if r.status in ("failed", "poisoned")
    ]


def _campaign_exit_status(engine: ExecutionEngine) -> int:
    """0 for a fully successful campaign, 1 when any cell failed.

    A campaign with failed/poisoned cells used to exit 0 — silently
    green in CI and shell scripts even though results were missing from
    the rendered figures. The per-cell summary names each casualty, and
    the failure manifest / resume hint say how to retry them.
    """
    failing = _failing_records(engine)
    if not failing:
        return 0
    print(
        f"error: {len(failing)} of {engine.telemetry.cells} cells did "
        "not complete:",
        file=sys.stderr,
    )
    for record in failing:
        print(
            f"  {record.status.upper()} {record.label} "
            f"(attempts={record.attempts}): {record.error}",
            file=sys.stderr,
        )
    if engine.manifest_path is not None:
        print(f"failure manifest: {engine.manifest_path}", file=sys.stderr)
    if engine.journal is not None:
        print(
            "re-run with --resume (or REPRO_RESUME=1) to re-attempt "
            "exactly these cells",
            file=sys.stderr,
        )
    return 1


def _write_metrics(args: argparse.Namespace) -> None:
    """Export the metrics registry if ``--metrics-out``/``REPRO_METRICS``."""
    written = export_metrics(args.metrics_out)
    if written is not None:
        text, snapshot = written
        print(f"[metrics] {text} (+ {snapshot})", file=sys.stderr)


if __name__ == "__main__":
    sys.exit(main())
