"""Command-line entry point: ``python -m repro <command>``.

Runs the paper's experiments from a terminal without writing any code:

* ``python -m repro mix 1``              — one figure group (Figure 10 style)
* ``python -m repro sensitivity``        — Figure 11 (all 36 benchmarks)
* ``python -m repro table6``             — Table 6 (mixes 1-4)
* ``python -m repro rmax``               — Appendix A rate table
* ``python -m repro mix 1 --profile test``  — faster, smaller profile
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.experiment import run_mix
from repro.harness.figures import figure_group
from repro.harness.report import (
    render_figure_group,
    render_sensitivity,
    render_table6,
)
from repro.harness.runconfig import PROFILES
from repro.harness.sensitivity import run_sensitivity_study
from repro.harness.tables import table6


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduce the Untangle (ASPLOS 2023) evaluation.",
    )
    parser.add_argument(
        "--profile",
        choices=sorted(PROFILES),
        default="scaled",
        help="experiment scale (default: scaled)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    mix = commands.add_parser("mix", help="run one workload mix (Figures 10/12-17)")
    mix.add_argument("mix_id", type=int, choices=range(1, 17))

    commands.add_parser(
        "sensitivity", help="LLC sensitivity study of all 36 benchmarks (Figure 11)"
    )
    commands.add_parser("table6", help="leakage summary of mixes 1-4 (Table 6)")

    rmax = commands.add_parser(
        "rmax", help="compute the R_max table (Appendix A / Section 7)"
    )
    rmax.add_argument(
        "--capacity", type=int, default=16, help="table capacity (Maintain levels)"
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    profile = PROFILES[args.profile]

    if args.command == "mix":
        result = run_mix(args.mix_id, profile)
        group = figure_group(args.mix_id, profile, mix_result=result)
        print(render_figure_group(group))
    elif args.command == "sensitivity":
        curves = run_sensitivity_study(profile=profile)
        print(render_sensitivity(curves))
    elif args.command == "table6":
        print(render_table6(table6(profile)))
    elif args.command == "rmax":
        from repro.core.rates import RmaxTable
        from repro.schemes.untangle import default_channel_model

        model = default_channel_model(profile.cooldown)
        table = RmaxTable(model, capacity=args.capacity)
        print(f"R_max table (T_c = {profile.cooldown} cycles):")
        for entry in table.entries():
            print(
                f"  m={entry.maintains:3d}  "
                f"rate={entry.rate_upper_bound * profile.cooldown:8.4f} bits/T_c  "
                f"bits/tx={entry.bits_per_transmission:6.3f}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
