"""The 16 workload mixes of the paper's evaluation (Figures 10, 12-17).

Each mix pairs eight SPEC17 benchmarks with the eight crypto benchmarks
of Table 5, exactly as the figures list them (left to right). The mixes
progress from 2 LLC-sensitive benchmarks up to all 8, replacing two
LLC-insensitive workloads at a time (Section 8).

``mix_demand_mb`` computes the mix's *total LLC demand* — the sum of the
adequate LLC sizes of its members — which reproduces the demand numbers
printed in each figure's title (14.6 MB for Mix 1, 39.0 MB for Mix 4,
and so on) to within the fitting tolerance documented in DESIGN.md.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.workloads.spec import SPEC_BENCHMARKS

#: Mix id -> list of (spec benchmark, crypto benchmark) pairs, in the
#: left-to-right order of the paper's figures.
PAPER_MIXES: dict[int, list[tuple[str, str]]] = {
    1: [
        ("blender_0", "AES-128"), ("bwaves_1", "AES-256"),
        ("deepsjeng_0", "Chacha20"), ("gcc_2", "EdDSA"),
        ("gcc_3", "RSA-2048"), ("imagick_0", "RSA-4096"),
        ("parest_0", "ECDSA"), ("xz_0", "SHA-256"),
    ],
    2: [
        ("blender_0", "AES-128"), ("bwaves_1", "AES-256"),
        ("gcc_2", "Chacha20"), ("imagick_0", "EdDSA"),
        ("mcf_0", "RSA-2048"), ("parest_0", "RSA-4096"),
        ("roms_0", "ECDSA"), ("xz_0", "SHA-256"),
    ],
    3: [
        ("blender_0", "AES-128"), ("gcc_2", "AES-256"),
        ("imagick_0", "Chacha20"), ("lbm_0", "EdDSA"),
        ("mcf_0", "RSA-2048"), ("parest_0", "RSA-4096"),
        ("roms_0", "ECDSA"), ("wrf_0", "SHA-256"),
    ],
    4: [
        ("cam4_0", "AES-128"), ("gcc_2", "AES-256"),
        ("gcc_4", "Chacha20"), ("lbm_0", "EdDSA"),
        ("mcf_0", "RSA-2048"), ("parest_0", "RSA-4096"),
        ("roms_0", "ECDSA"), ("wrf_0", "SHA-256"),
    ],
    5: [
        ("exchange2_0", "AES-128"), ("lbm_0", "AES-256"),
        ("perlbench_0", "Chacha20"), ("wrf_0", "EdDSA"),
        ("x264_1", "RSA-2048"), ("x264_2", "RSA-4096"),
        ("xalancbmk_0", "ECDSA"), ("xz_1", "SHA-256"),
    ],
    6: [
        ("lbm_0", "AES-128"), ("mcf_0", "AES-256"),
        ("parest_0", "Chacha20"), ("perlbench_0", "EdDSA"),
        ("wrf_0", "RSA-2048"), ("x264_2", "RSA-4096"),
        ("xalancbmk_0", "ECDSA"), ("xz_1", "SHA-256"),
    ],
    7: [
        ("gcc_2", "AES-128"), ("gcc_4", "AES-256"),
        ("lbm_0", "Chacha20"), ("mcf_0", "EdDSA"),
        ("parest_0", "RSA-2048"), ("wrf_0", "RSA-4096"),
        ("x264_2", "ECDSA"), ("xalancbmk_0", "SHA-256"),
    ],
    8: [
        ("bwaves_0", "AES-128"), ("cactuBSSN_0", "AES-256"),
        ("cam4_0", "Chacha20"), ("gcc_1", "EdDSA"),
        ("nab_0", "RSA-2048"), ("perlbench_2", "RSA-4096"),
        ("roms_0", "ECDSA"), ("xz_2", "SHA-256"),
    ],
    9: [
        ("bwaves_0", "AES-128"), ("cactuBSSN_0", "AES-256"),
        ("cam4_0", "Chacha20"), ("gcc_1", "EdDSA"),
        ("gcc_4", "RSA-2048"), ("nab_0", "RSA-4096"),
        ("roms_0", "ECDSA"), ("wrf_0", "SHA-256"),
    ],
    10: [
        ("bwaves_0", "AES-128"), ("cam4_0", "AES-256"),
        ("gcc_1", "Chacha20"), ("gcc_2", "EdDSA"),
        ("gcc_4", "RSA-2048"), ("lbm_0", "RSA-4096"),
        ("roms_0", "ECDSA"), ("wrf_0", "SHA-256"),
    ],
    11: [
        ("bwaves_2", "AES-128"), ("fotonik3d_0", "AES-256"),
        ("gcc_4", "Chacha20"), ("lbm_0", "EdDSA"),
        ("leela_0", "RSA-2048"), ("namd_0", "RSA-4096"),
        ("omnetpp_0", "ECDSA"), ("x264_0", "SHA-256"),
    ],
    12: [
        ("fotonik3d_0", "AES-128"), ("gcc_4", "AES-256"),
        ("lbm_0", "Chacha20"), ("leela_0", "EdDSA"),
        ("namd_0", "RSA-2048"), ("omnetpp_0", "RSA-4096"),
        ("roms_0", "ECDSA"), ("wrf_0", "SHA-256"),
    ],
    13: [
        ("gcc_4", "AES-128"), ("lbm_0", "AES-256"),
        ("leela_0", "Chacha20"), ("mcf_0", "EdDSA"),
        ("namd_0", "RSA-2048"), ("parest_0", "RSA-4096"),
        ("roms_0", "ECDSA"), ("wrf_0", "SHA-256"),
    ],
    14: [
        ("bwaves_3", "AES-128"), ("cam4_0", "AES-256"),
        ("gcc_0", "Chacha20"), ("imagick_0", "EdDSA"),
        ("nab_0", "RSA-2048"), ("perlbench_1", "RSA-4096"),
        ("povray_0", "ECDSA"), ("roms_0", "SHA-256"),
    ],
    15: [
        ("bwaves_3", "AES-128"), ("cam4_0", "AES-256"),
        ("gcc_2", "Chacha20"), ("imagick_0", "EdDSA"),
        ("lbm_0", "RSA-2048"), ("perlbench_1", "RSA-4096"),
        ("povray_0", "ECDSA"), ("roms_0", "SHA-256"),
    ],
    16: [
        ("cam4_0", "AES-128"), ("gcc_2", "AES-256"),
        ("lbm_0", "Chacha20"), ("mcf_0", "EdDSA"),
        ("parest_0", "RSA-2048"), ("perlbench_1", "RSA-4096"),
        ("povray_0", "ECDSA"), ("roms_0", "SHA-256"),
    ],
}


def get_mix(mix_id: int) -> list[tuple[str, str]]:
    """The (spec, crypto) pairs of one paper mix."""
    try:
        return list(PAPER_MIXES[mix_id])
    except KeyError:
        raise ConfigurationError(
            f"unknown mix {mix_id!r}; known: 1..{len(PAPER_MIXES)}"
        ) from None


def mix_demand_mb(mix_id: int) -> float:
    """Total LLC demand: sum of members' adequate sizes (figure titles)."""
    return sum(
        SPEC_BENCHMARKS[spec].adequate_mb for spec, _ in get_mix(mix_id)
    )


def mix_sensitive_count(mix_id: int) -> int:
    """Number of LLC-sensitive benchmarks in the mix (2, 4, 6, or 8)."""
    return sum(
        1 for spec, _ in get_mix(mix_id) if SPEC_BENCHMARKS[spec].llc_sensitive
    )


def mix_labels(mix_id: int) -> list[str]:
    """Workload labels in figure order (``spec+crypto``)."""
    return [f"{spec}+{crypto}" for spec, crypto in get_mix(mix_id)]
