"""Workload models: SPEC17-like benchmarks, crypto benchmarks, mixes."""

from repro.workloads.crypto import (
    CRYPTO_BENCHMARKS,
    CryptoBenchmark,
    get_crypto_benchmark,
)
from repro.workloads.mixes import (
    PAPER_MIXES,
    get_mix,
    mix_demand_mb,
    mix_labels,
    mix_sensitive_count,
)
from repro.workloads.spec import (
    DEFAULT_LINES_PER_MB,
    LLC_SENSITIVE_NAMES,
    SPEC_BENCHMARKS,
    SpecBenchmark,
    get_spec_benchmark,
)
from repro.workloads.workload import (
    BuiltWorkload,
    WorkloadScale,
    assemble_workload,
    build_workload,
    compose_workload_arrays,
)

__all__ = [
    "SpecBenchmark",
    "SPEC_BENCHMARKS",
    "LLC_SENSITIVE_NAMES",
    "DEFAULT_LINES_PER_MB",
    "get_spec_benchmark",
    "CryptoBenchmark",
    "CRYPTO_BENCHMARKS",
    "get_crypto_benchmark",
    "PAPER_MIXES",
    "get_mix",
    "mix_demand_mb",
    "mix_sensitive_count",
    "mix_labels",
    "WorkloadScale",
    "BuiltWorkload",
    "build_workload",
    "compose_workload_arrays",
    "assemble_workload",
]
