"""The three leaking code snippets of Figure 1 as executable victims.

Each builder returns an :class:`~repro.sim.cpu.InstructionStream` for a
given secret value:

* :func:`figure_1a` — *control-flow leak*: the secret gates a large-array
  traversal, so the cache demand (and hence the resizing action) depends
  on the secret.
* :func:`figure_1b` — *data-flow leak*: the secret scales the traversal's
  indices, so the number of distinct lines touched depends on the secret.
* :func:`figure_1c` — *timing leak*: the traversal always runs, but a
  secret-gated sleep shifts *when* it (and the triggered expansion)
  happens.

Two annotation modes are provided for each snippet: ``annotated=True``
marks the secret-dependent instructions the way Untangle requires
(Section 5.2), and ``annotated=False`` leaves the stream bare, modeling a
conventional scheme. The demos and tests run both modes to show that
annotations remove the action leakage of 1a/1b, and that only the covert-
channel bound covers 1c.
"""

from __future__ import annotations

import numpy as np

from repro.core.annotations import AnnotationVector
from repro.sim.cpu import InstructionStream
from repro.workloads.patterns import place_memory_instructions, sequential_scan

#: The snippet array region (distinct from anything else in examples).
_ARRAY_BASE = 16 << 22

#: Default traversal size: "a 4MB array" at the scaled 128 lines/MB.
DEFAULT_ARRAY_LINES = 512

#: Default surrounding public work (keeps the stream from being all-leak).
DEFAULT_PADDING_INSTRUCTIONS = 2_000

#: Figure 1c's usleep(1000): 1 ms expressed in scaled cycles.
DEFAULT_SLEEP_CYCLES = 1_000


def _traversal_stream(array_lines: int, memory_fraction: float = 0.5) -> np.ndarray:
    accesses = sequential_scan(array_lines, array_lines, base=_ARRAY_BASE)
    return place_memory_instructions(accesses, memory_fraction)


def _padding_stream(count: int) -> np.ndarray:
    return np.full(count, -1, dtype=np.int64)


def figure_1a(
    secret: bool,
    *,
    annotated: bool = True,
    array_lines: int = DEFAULT_ARRAY_LINES,
    padding: int = DEFAULT_PADDING_INSTRUCTIONS,
) -> InstructionStream:
    """``if (secret) traverse(arr)`` — control-flow-dependent demand.

    The traversal instructions are control-dependent on the secret, so in
    annotated mode they are excluded from both the metric and progress
    counting; different secrets then produce identical public streams.
    """
    pad = _padding_stream(padding)
    if secret:
        traversal = _traversal_stream(array_lines)
        addresses = np.concatenate([pad, traversal, pad])
        if annotated:
            annotations = (
                AnnotationVector.public(len(pad))
                .concatenate(AnnotationVector.fully_secret(len(traversal)))
                .concatenate(AnnotationVector.public(len(pad)))
            )
        else:
            annotations = AnnotationVector.public(len(addresses))
    else:
        addresses = np.concatenate([pad, pad])
        annotations = AnnotationVector.public(len(addresses))
    return InstructionStream(addresses, annotations)


def figure_1b(
    secret: int,
    *,
    annotated: bool = True,
    array_lines: int = DEFAULT_ARRAY_LINES,
    padding: int = DEFAULT_PADDING_INSTRUCTIONS,
) -> InstructionStream:
    """``access(&arr[i * secret])`` — data-flow-dependent demand.

    The traversal always executes the same instructions, but the secret
    stride changes how many distinct lines it touches (stride 0 touches
    one line; stride ``s`` touches ``min(array_lines, ...)`` lines). The
    accesses are data-dependent on the secret, so annotated mode excludes
    them from the metric (they still count toward progress — the control
    flow is public).
    """
    pad = _padding_stream(padding)
    indices = (np.arange(array_lines, dtype=np.int64) * int(secret)) % max(
        array_lines, 1
    )
    traversal = place_memory_instructions(indices + _ARRAY_BASE, 0.5)
    addresses = np.concatenate([pad, traversal, pad])
    if annotated:
        metric = np.concatenate(
            [
                np.zeros(len(pad), dtype=bool),
                np.ones(len(traversal), dtype=bool),
                np.zeros(len(pad), dtype=bool),
            ]
        )
        progress = np.zeros(len(addresses), dtype=bool)
        annotations = AnnotationVector(metric, progress)
    else:
        annotations = AnnotationVector.public(len(addresses))
    return InstructionStream(addresses, annotations)


def figure_1c(
    secret: bool,
    *,
    annotated: bool = True,
    array_lines: int = DEFAULT_ARRAY_LINES,
    padding: int = DEFAULT_PADDING_INSTRUCTIONS,
    sleep_cycles: int = DEFAULT_SLEEP_CYCLES,
) -> InstructionStream:
    """``if (secret) usleep(1000); traverse(arr)`` — timing-only leak.

    Regardless of the secret the same public traversal retires and the
    same expansion is triggered — but a secret-gated stall shifts *when*.
    Annotations cannot remove this leak (Section 3.4); it is exactly what
    the covert-channel model of Section 5.3 bounds. The sleep instruction
    itself is annotated (its execution is secret-control-dependent).
    """
    pad = _padding_stream(padding)
    traversal = _traversal_stream(array_lines)
    sleep_marker = np.full(1, -1, dtype=np.int64)
    addresses = np.concatenate([pad, sleep_marker, traversal, pad])
    stalls = np.zeros(len(addresses), dtype=np.int64)
    if secret:
        stalls[len(pad)] = sleep_cycles
    if annotated:
        metric = np.zeros(len(addresses), dtype=bool)
        progress = np.zeros(len(addresses), dtype=bool)
        metric[len(pad)] = True
        progress[len(pad)] = True
        annotations = AnnotationVector(metric, progress)
    else:
        annotations = AnnotationVector.public(len(addresses))
    return InstructionStream(addresses, annotations, stall_cycles=stalls)
