"""Synthetic models of the 36 SPEC CPU2017 benchmarks (Section 8).

The evaluation does not depend on SPEC semantics — only on each
benchmark's *LLC behaviour*: its hits-versus-partition-size curve (which
determines the Figure 11 sensitivity study and the allocator's decisions)
and its memory intensity (which determines how strongly IPC responds).
Each benchmark is therefore modeled as a deterministic mix of access
patterns (see :mod:`repro.workloads.patterns`) parameterized by:

* ``adequate_mb`` — the paper-scale *adequate LLC size*: the minimal size
  reaching >= 0.9 normalized IPC (Section 8). Values were fitted so that
  all 16 paper mixes reproduce their published total-LLC-demand numbers
  within ~1 MB (see DESIGN.md). Benchmarks with adequate size > 2 MB are
  LLC-sensitive — the same 8 benchmarks the paper bolds.
* memory intensity, memory-level parallelism, and pattern weights, which
  give each benchmark a distinct IPC level and curve shape.

Working sets scale with ``lines_per_mb`` so the same models drive both
the scaled and paper configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.workloads import patterns

#: Scaled lines per paper-scale MB (16 MB LLC -> 2048 lines).
DEFAULT_LINES_PER_MB = 128

#: The scan working set is this fraction of the adequate size, leaving
#: headroom for the footprint the other pattern components add on top
#: (calibrated so measured adequate sizes match the fitted targets).
SCAN_KNEE_FACTOR = 0.85

#: Region bases keep pattern components from aliasing.
_HOT_BASE = 0
_SCAN_BASE = 1 << 22
_RANDOM_BASE = 2 << 22
_GEOMETRIC_BASE = 3 << 22
_STREAM_BASE = 4 << 22


@dataclass(frozen=True)
class SpecBenchmark:
    """One synthetic SPEC17-like benchmark model.

    Pattern weights need not sum to one; they are normalized when mixing.
    """

    name: str
    adequate_mb: float
    mem_fraction: float
    mlp: float
    scan_weight: float
    random_weight: float
    geometric_weight: float
    hot_weight: float
    stream_weight: float
    #: Scan working set as a fraction of the adequate size; class-specific
    #: headroom for stream/hot pollution and set-conflict effects.
    knee_factor: float = SCAN_KNEE_FACTOR

    def __post_init__(self) -> None:
        if self.adequate_mb <= 0:
            raise ConfigurationError(f"{self.name}: adequate size must be positive")
        if not 0 < self.mem_fraction <= 1:
            raise ConfigurationError(f"{self.name}: bad memory fraction")
        if self.mlp <= 0:
            raise ConfigurationError(f"{self.name}: mlp must be positive")

    @property
    def llc_sensitive(self) -> bool:
        """Adequate LLC size above the 2 MB static partition (Section 8)."""
        return self.adequate_mb > 2.0

    # ------------------------------------------------------------------
    def working_set_lines(self, lines_per_mb: int = DEFAULT_LINES_PER_MB) -> int:
        """Scan working set in lines at the given scale."""
        return max(8, int(self.adequate_mb * lines_per_mb * self.knee_factor))

    def generate_accesses(
        self,
        count: int,
        rng: np.random.Generator,
        lines_per_mb: int = DEFAULT_LINES_PER_MB,
    ) -> np.ndarray:
        """Generate ``count`` memory accesses (line addresses).

        The scan, random, and geometric components all address the *same*
        working-set region, so the benchmark's total LLC footprint — and
        hence its sensitivity knee — is set by ``working_set_lines`` and
        not by the sum of per-component footprints. The streaming and
        hot-set components use separate regions by design: streaming adds
        size-independent misses, the hot set adds L1-served traffic.
        """
        ws = self.working_set_lines(lines_per_mb)
        hot_lines = 8
        components: list[tuple[np.ndarray, float]] = []
        if self.scan_weight > 0:
            share = int(count * self.scan_weight) + 1
            components.append(
                (patterns.sequential_scan(ws, share, base=_SCAN_BASE), self.scan_weight)
            )
        if self.random_weight > 0:
            share = int(count * self.random_weight) + 1
            components.append(
                (
                    patterns.uniform_random(ws, share, rng, base=_SCAN_BASE),
                    self.random_weight,
                )
            )
        if self.geometric_weight > 0:
            share = int(count * self.geometric_weight) + 1
            mean = max(2.0, ws / 8)
            components.append(
                (
                    patterns.geometric_reuse(ws, share, rng, mean, base=_SCAN_BASE),
                    self.geometric_weight,
                )
            )
        if self.hot_weight > 0:
            share = int(count * self.hot_weight) + 1
            components.append(
                (patterns.hot_set(hot_lines, share, rng, base=_HOT_BASE), self.hot_weight)
            )
        if self.stream_weight > 0:
            share = int(count * self.stream_weight) + 1
            components.append(
                (patterns.strided_stream(share, base=_STREAM_BASE), self.stream_weight)
            )
        return patterns.interleave(components, count, rng)


def _sensitive(name: str, adequate_mb: float, mem: float, mlp: float) -> SpecBenchmark:
    """LLC-sensitive shape: dominated by a working-set scan."""
    return SpecBenchmark(
        name=name,
        adequate_mb=adequate_mb,
        mem_fraction=mem,
        mlp=mlp,
        scan_weight=0.62,
        random_weight=0.10,
        geometric_weight=0.08,
        hot_weight=0.18,
        stream_weight=0.02,
    )


def _moderate(name: str, adequate_mb: float, mem: float, mlp: float) -> SpecBenchmark:
    """Insensitive but cache-using shape: local reuse plus a small scan."""
    return SpecBenchmark(
        name=name,
        adequate_mb=adequate_mb,
        mem_fraction=mem,
        mlp=mlp,
        scan_weight=0.30,
        random_weight=0.20,
        geometric_weight=0.20,
        hot_weight=0.27,
        stream_weight=0.03,
        knee_factor=0.70,
    )


def _compute(name: str, adequate_mb: float, mem: float, mlp: float) -> SpecBenchmark:
    """Compute-bound shape: mostly hot-set and light streaming."""
    return SpecBenchmark(
        name=name,
        adequate_mb=adequate_mb,
        mem_fraction=mem,
        mlp=mlp,
        scan_weight=0.10,
        random_weight=0.10,
        geometric_weight=0.15,
        hot_weight=0.55,
        stream_weight=0.10,
        knee_factor=0.70,
    )


#: All 36 benchmarks. Adequate sizes (paper-scale MB) were fitted against
#: the 16 published mix demands; the 8 LLC-sensitive ones match the
#: paper's bolded set: cam4_0, gcc_2, gcc_4, lbm_0, mcf_0, parest_0,
#: roms_0, wrf_0.
SPEC_BENCHMARKS: dict[str, SpecBenchmark] = {
    b.name: b
    for b in [
        _moderate("blender_0", 2.0, 0.28, 3.0),
        _compute("bwaves_0", 0.125, 0.33, 4.0),
        _moderate("bwaves_1", 2.0, 0.33, 4.0),
        _compute("bwaves_2", 0.125, 0.33, 4.0),
        _compute("bwaves_3", 0.125, 0.33, 4.0),
        _compute("cactuBSSN_0", 0.125, 0.30, 3.5),
        _sensitive("cam4_0", 4.0, 0.27, 2.5),
        _moderate("deepsjeng_0", 0.5, 0.24, 2.0),
        _compute("exchange2_0", 0.125, 0.18, 1.5),
        _compute("fotonik3d_0", 0.125, 0.35, 4.5),
        _moderate("gcc_0", 0.5, 0.26, 2.0),
        _moderate("gcc_1", 1.0, 0.26, 2.0),
        _sensitive("gcc_2", 6.0, 0.26, 2.0),
        _moderate("gcc_3", 0.5, 0.26, 2.0),
        _sensitive("gcc_4", 4.0, 0.26, 2.0),
        _compute("imagick_0", 0.125, 0.22, 2.5),
        _sensitive("lbm_0", 8.0, 0.38, 3.0),
        _moderate("leela_0", 0.5, 0.22, 1.8),
        _sensitive("mcf_0", 4.0, 0.34, 1.6),
        _compute("nab_0", 0.125, 0.26, 2.5),
        _moderate("namd_0", 0.5, 0.28, 3.0),
        _moderate("omnetpp_0", 0.25, 0.30, 1.8),
        _sensitive("parest_0", 3.0, 0.30, 2.2),
        _compute("perlbench_0", 0.125, 0.24, 1.8),
        _moderate("perlbench_1", 1.0, 0.24, 1.8),
        _compute("perlbench_2", 0.125, 0.24, 1.8),
        _moderate("povray_0", 0.5, 0.20, 2.0),
        _sensitive("roms_0", 6.0, 0.33, 3.2),
        _sensitive("wrf_0", 4.0, 0.31, 2.8),
        _compute("x264_0", 0.125, 0.25, 3.0),
        _compute("x264_1", 0.125, 0.25, 3.0),
        _compute("x264_2", 0.125, 0.25, 3.0),
        _compute("xalancbmk_0", 0.125, 0.29, 1.7),
        _moderate("xz_0", 0.5, 0.27, 2.0),
        _moderate("xz_1", 0.5, 0.27, 2.0),
        _moderate("xz_2", 2.0, 0.27, 2.0),
    ]
}

#: The eight LLC-sensitive benchmark names (paper Section 8: 8 of 36).
LLC_SENSITIVE_NAMES: tuple[str, ...] = tuple(
    sorted(name for name, b in SPEC_BENCHMARKS.items() if b.llc_sensitive)
)


def get_spec_benchmark(name: str) -> SpecBenchmark:
    """Look up a benchmark model by its paper name (e.g. ``"gcc_2"``)."""
    try:
        return SPEC_BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown SPEC benchmark {name!r}; known: {sorted(SPEC_BENCHMARKS)}"
        ) from None
