"""Memory access-pattern primitives for synthetic workloads.

Workload models are built by mixing a small vocabulary of patterns, each
producing an array of cache-line addresses. The patterns are chosen for
their distinct, well-understood LRU behaviour, which is what shapes the
hits-versus-partition-size curves the evaluation depends on:

* :func:`sequential_scan` — cyclic scan of a working set: 0% LLC hits
  until the partition covers the whole set, then ~100% (a sharp knee —
  the canonical LLC-sensitive benchmark shape).
* :func:`uniform_random` — uniform reuse over a working set: hit rate
  grows roughly linearly with partition size (a soft ramp).
* :func:`geometric_reuse` — temporally local reuse with geometric stack
  distances (hits concentrate at small sizes).
* :func:`strided_stream` — no reuse at all: compulsory misses regardless
  of partition size (LLC-insensitive traffic).
* :func:`hot_set` — a tiny set served by the L1 (cache-friendly traffic).

All generators are deterministic given their RNG, and produce *line*
addresses inside a caller-provided region so different pattern components
of one workload never alias.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def _check(count: int, region_lines: int | None = None) -> None:
    if count < 0:
        raise ConfigurationError("access count must be non-negative")
    if region_lines is not None and region_lines < 1:
        raise ConfigurationError("region must hold at least one line")


def sequential_scan(
    working_set_lines: int, count: int, base: int = 0, start: int = 0
) -> np.ndarray:
    """Cyclic sequential scan over ``working_set_lines`` lines.

    Under LRU, every access misses when the cache is smaller than the
    working set (each line is evicted just before its reuse) and hits once
    the cache covers it — the sharp-knee pattern of scan-dominated
    benchmarks like lbm.
    """
    _check(count, working_set_lines)
    return (np.arange(start, start + count, dtype=np.int64) % working_set_lines) + base


def uniform_random(
    working_set_lines: int, count: int, rng: np.random.Generator, base: int = 0
) -> np.ndarray:
    """Uniform random reuse over a working set (soft ramp of hits)."""
    _check(count, working_set_lines)
    return rng.integers(0, working_set_lines, size=count, dtype=np.int64) + base


def geometric_reuse(
    working_set_lines: int,
    count: int,
    rng: np.random.Generator,
    mean_distance: float,
    base: int = 0,
) -> np.ndarray:
    """Reuse with geometrically distributed stack distances.

    Each access references the line written ``g`` steps ago in a sliding
    cursor over the working set, with ``g`` geometric of the given mean —
    so most reuse is near-immediate and hit rates saturate at small sizes.
    """
    _check(count, working_set_lines)
    if mean_distance < 1:
        raise ConfigurationError("mean reuse distance must be >= 1")
    cursor = np.arange(count, dtype=np.int64)
    distances = rng.geometric(1.0 / mean_distance, size=count).astype(np.int64)
    return ((cursor - distances) % working_set_lines) + base


def strided_stream(count: int, base: int = 0, start: int = 0) -> np.ndarray:
    """A never-reusing stream: compulsory misses at any partition size."""
    _check(count)
    return np.arange(start, start + count, dtype=np.int64) + base


def hot_set(
    hot_lines: int, count: int, rng: np.random.Generator, base: int = 0
) -> np.ndarray:
    """Accesses to a tiny hot set (absorbed by the private L1)."""
    _check(count, hot_lines)
    return rng.integers(0, hot_lines, size=count, dtype=np.int64) + base


def interleave(
    components: list[tuple[np.ndarray, float]],
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Mix pattern components into one access stream.

    ``components`` is a list of ``(addresses, weight)``; each output
    access is drawn from component ``i`` with probability proportional to
    ``weight_i``, consuming that component's addresses in order (cyclic if
    it runs out). The mixing choices are random but the per-component
    orders are preserved, so each pattern keeps its reuse structure.
    """
    if not components:
        raise ConfigurationError("need at least one pattern component")
    weights = np.array([w for _, w in components], dtype=np.float64)
    if np.any(weights < 0) or weights.sum() <= 0:
        raise ConfigurationError("component weights must be non-negative, not all zero")
    weights = weights / weights.sum()
    choice = rng.choice(len(components), size=count, p=weights)
    out = np.empty(count, dtype=np.int64)
    for i, (addresses, _) in enumerate(components):
        mask = choice == i
        n = int(mask.sum())
        if n == 0:
            continue
        if len(addresses) == 0:
            raise ConfigurationError(f"component {i} has no addresses")
        indices = np.arange(n, dtype=np.int64) % len(addresses)
        out[mask] = addresses[indices]
    return out


def place_memory_instructions(
    mem_addresses: np.ndarray, memory_fraction: float
) -> np.ndarray:
    """Expand memory accesses into a full instruction-address stream.

    Returns an int64 array where memory instructions carry their line
    address and non-memory instructions are ``-1``, with memory
    instructions evenly spaced so the stream has approximately the given
    memory fraction. Deterministic spacing keeps progress arithmetic
    exact and reproducible.
    """
    if not 0.0 < memory_fraction <= 1.0:
        raise ConfigurationError("memory fraction must be in (0, 1]")
    m = int(mem_addresses.shape[0])
    if m == 0:
        raise ConfigurationError("need at least one memory access")
    period = max(1, round(1.0 / memory_fraction))
    total = m * period
    stream = np.full(total, -1, dtype=np.int64)
    stream[period - 1 :: period] = mem_addresses
    return stream
