"""Workload composition (Section 8 of the paper).

Each domain's workload pairs one SPEC17 benchmark with one crypto
benchmark sharing the same LLC partition: "we repeatedly run in a loop 1M
instructions from the cryptographic benchmark and then 10M instructions
from the SPEC17 benchmark". The crypto part is conservatively annotated
fully secret-dependent; the SPEC part is public.

:class:`WorkloadScale` collects the instruction-count parameters so the
same composition logic serves the scaled evaluation, the fast test
profile, and paper-scale documentation runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.annotations import AnnotationVector, concatenate_annotations
from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.workloads.crypto import CryptoBenchmark, get_crypto_benchmark
from repro.workloads.patterns import place_memory_instructions
from repro.workloads.spec import (
    DEFAULT_LINES_PER_MB,
    SpecBenchmark,
    get_spec_benchmark,
)

#: Counts full (expensive) workload compositions in this process —
#: the precompute store exists to keep this at one per unique trace.
_M_BUILDS = obs_metrics.get_registry().counter(
    "repro_workload_builds_total",
    "Full workload-trace compositions performed in this process",
)


@dataclass(frozen=True)
class WorkloadScale:
    """Instruction-count parameters of one evaluation profile.

    The paper's values are ``spec_instructions=500M``,
    ``crypto_instructions=50M``, ``spec_chunk=10M``, ``crypto_chunk=1M``
    (Section 8); the scaled defaults divide all four by ~8000 while
    keeping the 10:1 ratios.
    """

    spec_instructions: int = 60_000
    crypto_instructions: int = 6_000
    spec_chunk: int = 10_000
    crypto_chunk: int = 1_000
    lines_per_mb: int = DEFAULT_LINES_PER_MB
    warmup_fraction: float = 0.1

    def __post_init__(self) -> None:
        if min(
            self.spec_instructions,
            self.crypto_instructions,
            self.spec_chunk,
            self.crypto_chunk,
        ) < 1:
            raise ConfigurationError("all instruction counts must be positive")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ConfigurationError("warmup fraction must be in [0, 1)")

    @classmethod
    def paper(cls) -> "WorkloadScale":
        """The paper's instruction counts (documentation only — enormous)."""
        return cls(
            spec_instructions=500_000_000,
            crypto_instructions=50_000_000,
            spec_chunk=10_000_000,
            crypto_chunk=1_000_000,
            warmup_fraction=0.02,
        )

    @classmethod
    def test(cls) -> "WorkloadScale":
        """A very small profile for fast unit tests."""
        return cls(
            spec_instructions=8_000,
            crypto_instructions=800,
            spec_chunk=2_000,
            crypto_chunk=200,
        )


@dataclass
class BuiltWorkload:
    """A ready-to-simulate workload."""

    label: str
    stream: InstructionStream
    core_config: CoreConfig
    spec: SpecBenchmark
    crypto: CryptoBenchmark


def _build_chunk_stream(
    accesses: np.ndarray, memory_fraction: float, secret_annotated: bool
) -> tuple[np.ndarray, AnnotationVector]:
    stream = place_memory_instructions(accesses, memory_fraction)
    if secret_annotated:
        annotations = AnnotationVector.fully_secret(len(stream))
    else:
        annotations = AnnotationVector.public(len(stream))
    return stream, annotations


def compose_workload_arrays(
    spec_name: str,
    crypto_name: str,
    scale: WorkloadScale | None = None,
    *,
    seed: int = 0,
    secret: int = 0,
) -> dict[str, np.ndarray]:
    """The expensive half of :func:`build_workload`: the raw trace arrays.

    Returns the composed ``addresses`` / ``metric_excluded`` /
    ``progress_excluded`` / ``stall_cycles`` arrays — exactly the data
    the precompute store persists and shares across cells. Everything
    downstream of these arrays (:func:`assemble_workload`) is cheap and
    deterministic, so caching this boundary keeps the store-path output
    bit-identical to a direct build.
    """
    if scale is None:
        scale = WorkloadScale()
    _M_BUILDS.inc()
    spec = get_spec_benchmark(spec_name)
    crypto = get_crypto_benchmark(crypto_name)
    rng = np.random.default_rng(seed)

    # Generate each benchmark's full access sequence once so reuse
    # patterns continue seamlessly across chunk boundaries.
    spec_period = max(1, round(1.0 / spec.mem_fraction))
    crypto_period = max(1, round(1.0 / crypto.mem_fraction))
    spec_mem_total = max(1, scale.spec_instructions // spec_period)
    crypto_mem_total = max(1, scale.crypto_instructions // crypto_period)
    spec_accesses = spec.generate_accesses(spec_mem_total, rng, scale.lines_per_mb)
    crypto_accesses = crypto.generate_accesses(crypto_mem_total, rng, secret)

    spec_chunk_mem = max(1, scale.spec_chunk // spec_period)
    crypto_chunk_mem = max(1, scale.crypto_chunk // crypto_period)

    segments: list[np.ndarray] = []
    annotations: list[AnnotationVector] = []
    stall_segments: list[np.ndarray] = []
    spec_cursor = 0
    crypto_cursor = 0
    secret_stall = crypto.secret_stall_cycles * int(secret).bit_count()
    while spec_cursor < spec_mem_total or crypto_cursor < crypto_mem_total:
        if crypto_cursor < crypto_mem_total:
            chunk = crypto_accesses[
                crypto_cursor : crypto_cursor + crypto_chunk_mem
            ]
            crypto_cursor += len(chunk)
            stream, annotation = _build_chunk_stream(
                chunk, crypto.mem_fraction, secret_annotated=True
            )
            stalls = np.zeros(len(stream), dtype=np.int64)
            if secret_stall > 0:
                # Secret-dependent timing (Figure 1c shape): the secret
                # stretches the crypto chunk without changing what retires.
                stalls[0] = secret_stall
            segments.append(stream)
            annotations.append(annotation)
            stall_segments.append(stalls)
        if spec_cursor < spec_mem_total:
            chunk = spec_accesses[spec_cursor : spec_cursor + spec_chunk_mem]
            spec_cursor += len(chunk)
            stream, annotation = _build_chunk_stream(
                chunk, spec.mem_fraction, secret_annotated=False
            )
            segments.append(stream)
            annotations.append(annotation)
            stall_segments.append(np.zeros(len(stream), dtype=np.int64))

    addresses = np.concatenate(segments)
    annotation_vector = concatenate_annotations(annotations)
    stalls_all = np.concatenate(stall_segments)
    return {
        "addresses": addresses,
        "metric_excluded": annotation_vector.metric_excluded,
        "progress_excluded": annotation_vector.progress_excluded,
        "stall_cycles": stalls_all,
    }


def assemble_workload(
    spec_name: str,
    crypto_name: str,
    scale: WorkloadScale,
    arrays: dict[str, np.ndarray],
    *,
    seed: int = 0,
    timing_jitter: int = 0,
) -> BuiltWorkload:
    """The cheap half of :func:`build_workload`: arrays → ready workload.

    ``arrays`` is the mapping produced by :func:`compose_workload_arrays`
    (possibly served zero-copy from the precompute store). No randomness
    is consumed here; jitter is a *core-model* parameter seeded from the
    same ``seed`` the composition used, so store-served and directly
    built workloads are indistinguishable.
    """
    spec = get_spec_benchmark(spec_name)
    crypto = get_crypto_benchmark(crypto_name)
    addresses = arrays["addresses"]
    annotation_vector = AnnotationVector(
        arrays["metric_excluded"], arrays["progress_excluded"]
    )
    stalls_all = arrays["stall_cycles"]
    stream = InstructionStream(
        addresses,
        annotation_vector,
        stall_cycles=stalls_all if stalls_all.any() else None,
    )
    core_config = CoreConfig(
        mlp=spec.mlp,
        slice_instructions=stream.length,
        warmup_instructions=int(scale.warmup_fraction * stream.length),
        timing_jitter=timing_jitter,
        timing_jitter_seed=seed + 1,
    )
    return BuiltWorkload(
        label=f"{spec_name}+{crypto_name}",
        stream=stream,
        core_config=core_config,
        spec=spec,
        crypto=crypto,
    )


def build_workload(
    spec_name: str,
    crypto_name: str,
    scale: WorkloadScale | None = None,
    *,
    seed: int = 0,
    secret: int = 0,
    timing_jitter: int = 0,
) -> BuiltWorkload:
    """Compose one ``SPEC + crypto`` workload into an instruction stream.

    Parameters
    ----------
    seed:
        Workload-generation seed (public input randomness).
    secret:
        The crypto benchmark's secret input; affects its access pattern
        through :attr:`CryptoBenchmark.secret_demand_lines` and its timing
        through :attr:`CryptoBenchmark.secret_stall_cycles`. These secret
        effects stay confined to annotated instructions — which is exactly
        why Untangle's action sequence ignores them.
    timing_jitter:
        Max random extra cycles per memory access (timing perturbation for
        differential tests).

    This is the direct (store-less) path:
    :func:`compose_workload_arrays` + :func:`assemble_workload` in one
    call. Campaign code goes through
    :func:`repro.harness.store.cached_build_workload`, which shares the
    composed arrays across cells and processes when a precompute store
    is active.
    """
    if scale is None:
        scale = WorkloadScale()
    arrays = compose_workload_arrays(
        spec_name, crypto_name, scale, seed=seed, secret=secret
    )
    return assemble_workload(
        spec_name,
        crypto_name,
        scale,
        arrays,
        seed=seed,
        timing_jitter=timing_jitter,
    )
