"""Synthetic models of the OpenSSL cryptographic benchmarks (Table 5).

In the evaluation the crypto benchmarks play one role: they are the
*secret-handling* part of each workload. All of their instructions are
conservatively annotated secret-dependent (Section 8), so under Untangle
they contribute neither to the utilization metric nor to execution
progress. Their models therefore need small working sets (key schedules,
S-boxes, precomputed tables), realistic memory intensity, and — for the
leakage demonstrations — an optional *secret* parameter that changes
either their demand or their duration, mirroring Figure 1's three leak
shapes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.annotations import AnnotationVector
from repro.errors import ConfigurationError
from repro.workloads import patterns

#: Crypto state/tables live far away from any SPEC region.
_CRYPTO_BASE = 8 << 22


@dataclass(frozen=True)
class CryptoBenchmark:
    """One synthetic crypto benchmark model.

    Attributes
    ----------
    table_lines:
        Cache lines of key-dependent tables/state (the benchmark's whole
        data footprint — tiny compared with any LLC partition).
    mem_fraction:
        Fraction of instructions that are memory accesses.
    mlp:
        Memory-level parallelism (crypto is mostly dependent chains).
    secret_demand_lines:
        Additional distinct lines touched *per set bit of the secret* —
        the knob used to demonstrate secret-dependent demand (Figure 1b).
    secret_stall_cycles:
        Extra stall cycles inserted per set bit of the secret — the knob
        for secret-dependent timing (Figure 1c).
    """

    name: str
    table_lines: int
    mem_fraction: float
    mlp: float
    secret_demand_lines: int = 0
    secret_stall_cycles: int = 0

    def __post_init__(self) -> None:
        if self.table_lines < 1:
            raise ConfigurationError(f"{self.name}: need at least one table line")
        if not 0 < self.mem_fraction <= 1:
            raise ConfigurationError(f"{self.name}: bad memory fraction")
        if self.mlp <= 0:
            raise ConfigurationError(f"{self.name}: mlp must be positive")

    # ------------------------------------------------------------------
    def generate_accesses(
        self, count: int, rng: np.random.Generator, secret: int = 0
    ) -> np.ndarray:
        """Generate ``count`` memory accesses, optionally secret-shaped.

        With a non-zero secret and a non-zero ``secret_demand_lines``,
        part of the accesses spread over extra lines proportional to the
        secret's popcount — different secrets, different footprints.
        """
        base_accesses = patterns.uniform_random(
            self.table_lines, count, rng, base=_CRYPTO_BASE
        )
        extra_lines = self.secret_demand_lines * int(secret).bit_count()
        if extra_lines <= 0:
            return base_accesses
        extra_region = patterns.uniform_random(
            extra_lines, count, rng, base=_CRYPTO_BASE + self.table_lines
        )
        take_extra = rng.random(count) < 0.5
        return np.where(take_extra, extra_region, base_accesses)

    def annotations_for(self, length: int) -> AnnotationVector:
        """Whole-benchmark conservative annotation (Section 8)."""
        return AnnotationVector.fully_secret(length)


#: The eight OpenSSL 3.0.5 benchmarks of Table 5. Table sizes reflect the
#: real algorithms' data footprints (S-boxes, key schedules, window
#: tables) in cache lines.
CRYPTO_BENCHMARKS: dict[str, CryptoBenchmark] = {
    b.name: b
    for b in [
        CryptoBenchmark("Chacha20", table_lines=4, mem_fraction=0.18, mlp=2.0),
        CryptoBenchmark("AES-128", table_lines=20, mem_fraction=0.30, mlp=1.8),
        CryptoBenchmark("AES-256", table_lines=24, mem_fraction=0.30, mlp=1.8),
        CryptoBenchmark("SHA-256", table_lines=6, mem_fraction=0.16, mlp=1.5),
        CryptoBenchmark(
            "RSA-2048", table_lines=40, mem_fraction=0.26, mlp=1.3,
            secret_demand_lines=8, secret_stall_cycles=40,
        ),
        CryptoBenchmark(
            "RSA-4096", table_lines=72, mem_fraction=0.26, mlp=1.3,
            secret_demand_lines=12, secret_stall_cycles=60,
        ),
        CryptoBenchmark(
            "ECDSA", table_lines=32, mem_fraction=0.24, mlp=1.4,
            secret_demand_lines=6, secret_stall_cycles=30,
        ),
        CryptoBenchmark(
            "EdDSA", table_lines=28, mem_fraction=0.24, mlp=1.4,
            secret_demand_lines=4, secret_stall_cycles=20,
        ),
    ]
}


def get_crypto_benchmark(name: str) -> CryptoBenchmark:
    """Look up a crypto benchmark model by its Table 5 name."""
    try:
        return CRYPTO_BENCHMARKS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown crypto benchmark {name!r}; known: {sorted(CRYPTO_BENCHMARKS)}"
        ) from None
