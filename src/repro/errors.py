"""Exception hierarchy for the Untangle reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch a single base class. Subclasses are grouped by the
subsystem that raises them.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class DistributionError(ReproError):
    """A probability distribution is malformed (negative mass, sum != 1, ...)."""


class TraceError(ReproError):
    """A resizing trace is malformed (non-increasing timestamps, ...)."""


class ChannelModelError(ReproError):
    """A covert-channel model is misconfigured (duration < cooldown, ...)."""


class OptimizationError(ReproError):
    """The Dinkelbach / concave-programming solver failed to converge."""


class ConfigurationError(ReproError):
    """An architecture, scheme, or workload configuration is invalid."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state."""


class PrincipleViolation(ReproError):
    """A scheme component violates one of Untangle's design principles.

    Raised by :mod:`repro.core.principles` when a utilization metric or a
    resizing schedule declares (or is detected) to be timing-dependent but
    is used in a context that requires timing independence.
    """


class LeakageBudgetExceeded(ReproError):
    """An operation would push accumulated leakage past the user threshold.

    Untangle never raises this during normal accounting (it clamps resizing
    instead); it is raised only when client code explicitly asks for a
    resize after the budget is exhausted with ``strict=True``.
    """


class AnnotationError(ReproError):
    """Secret-dependence annotations are inconsistent with the program."""


class JournalError(ReproError):
    """A campaign journal cannot be written (bad path, disk full, ...)."""


class CampaignInterrupted(ReproError):
    """A campaign was stopped by SIGINT/SIGTERM after a clean shutdown.

    Raised by :meth:`repro.harness.exec.ExecutionEngine.run` once every
    completed cell has been journaled and the worker pool terminated.
    ``outcomes`` holds the cells that finished before the interrupt;
    ``journal_path`` (when a journal is attached) is where ``--resume``
    / ``REPRO_RESUME=1`` will pick the campaign back up.
    """

    def __init__(
        self,
        message: str,
        *,
        outcomes: list | tuple = (),
        journal_path=None,
    ):
        super().__init__(message)
        self.outcomes = list(outcomes)
        self.journal_path = journal_path
