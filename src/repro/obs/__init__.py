"""Unified observability layer: structured tracing and metrics.

Long campaigns span three subsystems — the parallel engine, the
crash-safe journal/supervisor, and the batched simulation kernel — and
this package is the single place they all report to:

* :mod:`repro.obs.trace` — nested spans with monotonic timestamps and
  attributes, appended as JSONL to a thread/process-safe sink
  (``REPRO_TRACE`` / ``--trace``). Workers inherit the configuration
  through the environment, so one trace file collects every process of
  a campaign.
* :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges, and fixed-bucket histograms with a Prometheus-style textfile
  exporter and a JSON snapshot (``REPRO_METRICS`` / ``--metrics-out``).
* :mod:`repro.obs.summarize` — turns a trace JSONL into a per-phase
  wall-time breakdown (``python -m repro trace-summarize``).

Everything is behind a no-op fast path: with ``REPRO_TRACE`` unset,
:func:`repro.obs.trace.span` returns a shared no-op context manager and
the hot simulation paths pay one dict lookup per *simulation run*, not
per access — the disabled overhead is unmeasurable in
``benchmarks/bench_kernel.py --quick``.
"""

from __future__ import annotations

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    metrics_output_path,
)
from repro.obs.liveness import progress_beat, progress_value
from repro.obs.trace import (
    TRACE_ENV,
    Tracer,
    configure_tracing,
    event,
    span,
    tracing_enabled,
)

__all__ = [
    "progress_beat",
    "progress_value",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_ENV",
    "Tracer",
    "configure_tracing",
    "event",
    "get_registry",
    "metrics_output_path",
    "span",
    "tracing_enabled",
]
