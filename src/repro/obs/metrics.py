"""Process-local metrics registry: counters, gauges, histograms.

The registry is the single source of truth for campaign counters — the
execution engine's :class:`~repro.harness.exec.EngineTelemetry` mirrors
into it (see ``EngineTelemetry.snapshot``), the simulator and journal
increment it directly, and two exporters read it back out:

* :meth:`MetricsRegistry.render_prometheus` — the Prometheus textfile
  exposition format, for node-exporter-style scraping of long campaigns
  (``--metrics-out metrics.prom`` / ``REPRO_METRICS``);
* :meth:`MetricsRegistry.snapshot` — a JSON-able dict, written beside
  the textfile as ``<name>.json``.

Metrics are cheap enough to record unconditionally — every increment in
this codebase happens per *cell*, per *simulation run*, or per *journal
append*, never per simulated memory access — so there is no enabled
flag on the recording side; ``REPRO_METRICS`` only controls whether the
files are written. Histogram buckets are fixed at construction
(Prometheus-style ``le`` upper bounds), so observation is O(#buckets)
with no allocation.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Iterable

#: Environment variable naming the metrics textfile output
#: (``--metrics-out`` writes it too). Empty/unset disables export.
METRICS_ENV = "REPRO_METRICS"

#: Default histogram buckets for per-cell wall-time, seconds.
CELL_SECONDS_BUCKETS = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0, 300.0)


def _format_labels(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    # Render integers without a trailing ``.0`` for readability.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """Monotonically increasing count (within one process)."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "value", "_lock")

    def __init__(self, name: str, help: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def set_total(self, value: float) -> None:
        """Mirror an externally accumulated total (never decreases)."""
        with self._lock:
            if value > self.value:
                self.value = value

    def render(self) -> list[str]:
        return [f"{self.name}{_format_labels(self.labels)} {_format_value(self.value)}"]

    def snapshot_value(self) -> float:
        return self.value


class Gauge:
    """A value that can go up and down (e.g. seconds, worker count)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "value", "_lock")

    def __init__(self, name: str, help: str, labels: tuple[tuple[str, str], ...]):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def render(self) -> list[str]:
        return [f"{self.name}{_format_labels(self.labels)} {_format_value(self.value)}"]

    def snapshot_value(self) -> float:
        return self.value


class Histogram:
    """Fixed-bucket histogram (Prometheus ``le`` upper-bound convention)."""

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum", "count", "_lock")

    def __init__(
        self,
        name: str,
        help: str,
        labels: tuple[tuple[str, str], ...],
        buckets: Iterable[float],
    ):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last bucket = +Inf
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1

    def render(self) -> list[str]:
        lines = []
        cumulative = 0
        for bound, count in zip(self.buckets, self.counts):
            cumulative += count
            labels = self.labels + (("le", _format_value(bound)),)
            lines.append(f"{self.name}_bucket{_format_labels(labels)} {cumulative}")
        labels = self.labels + (("le", "+Inf"),)
        lines.append(f"{self.name}_bucket{_format_labels(labels)} {self.count}")
        base = _format_labels(self.labels)
        lines.append(f"{self.name}_sum{base} {_format_value(self.sum)}")
        lines.append(f"{self.name}_count{base} {self.count}")
        return lines

    def snapshot_value(self) -> dict[str, Any]:
        return {
            "buckets": {
                _format_value(bound): count
                for bound, count in zip(self.buckets, self.counts)
            },
            "inf": self.counts[-1],
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """Get-or-create store of metrics, keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Any] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _get_or_create(self, cls, name: str, help: str, labels: dict, **extra):
        key = (name, tuple(sorted((k, str(v)) for k, v in labels.items())))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, help, key[1], **extra)
                self._metrics[key] = metric
            elif metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = CELL_SECONDS_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help, labels, buckets=buckets
        )

    # ------------------------------------------------------------------
    def _sorted_metrics(self):
        with self._lock:
            return sorted(self._metrics.items(), key=lambda item: item[0])

    def render_prometheus(self) -> str:
        """The Prometheus textfile exposition of every metric."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for (name, _), metric in self._sorted_metrics():
            if name not in seen_headers:
                seen_headers.add(name)
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict[str, Any]:
        """JSON-able dump: ``{name: {label-string or "": value}}``."""
        out: dict[str, Any] = {}
        for (name, labels), metric in self._sorted_metrics():
            key = _format_labels(labels)
            out.setdefault(name, {})[key or ""] = metric.snapshot_value()
        return out

    def write_textfile(self, path: str | Path) -> Path:
        """Atomically write the Prometheus exposition to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(self.render_prometheus(), encoding="utf-8")
        os.replace(tmp, path)
        return path

    def write_json(self, path: str | Path) -> Path:
        """Atomically write the JSON snapshot to ``path``."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(
            json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    def reset(self) -> None:
        """Drop every metric (tests only)."""
        with self._lock:
            self._metrics.clear()


#: The process-wide registry every subsystem records into.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def metrics_output_path() -> Path | None:
    """Where ``REPRO_METRICS`` asks the textfile to be written, if set."""
    raw = os.environ.get(METRICS_ENV, "").strip()
    if not raw or raw == "0":
        return None
    return Path(raw)


def export_metrics(path: str | Path | None = None) -> tuple[Path, Path] | None:
    """Write the textfile + JSON snapshot; returns both paths.

    ``path`` defaults to ``REPRO_METRICS``; with neither set, does
    nothing and returns ``None``. The JSON lands beside the textfile
    with a ``.json`` suffix appended.
    """
    target = Path(path) if path is not None else metrics_output_path()
    if target is None:
        return None
    registry = get_registry()
    text = registry.write_textfile(target)
    json_path = registry.write_json(target.with_name(target.name + ".json"))
    return text, json_path
