"""Process-local progress counter backing worker heartbeats.

A supervisor that only watches the clock cannot tell a *slow* cell from
a *hung* one: both are silent until the per-cell deadline expires. The
execution engine therefore has workers send periodic heartbeats carrying
this module's progress counter — a cheap, monotonically increasing
count of coarse work units completed in the current process:

* :class:`~repro.sim.system.MultiDomainSystem` beats once per scheduling
  quantum (thousands of simulated accesses, so the overhead is
  unmeasurable), and
* the engine's worker loop beats once per finished cell,

so a cell that is *computing* advances the counter between heartbeats,
while a cell that is stuck — deadlocked, sleeping, wedged in a syscall —
sends heartbeats with a frozen counter (or none at all, if the whole
process is stopped). The supervisor turns that distinction into
``worker.unresponsive`` events and early stall kills; see
``repro.harness.exec``.

The counter is deliberately *not* shared between processes: each worker
reports its own counter over its own pipe, and only deltas matter.
"""

from __future__ import annotations


class _Progress:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0


_PROGRESS = _Progress()


def progress_beat(amount: int = 1) -> None:
    """Advance this process's progress counter by ``amount`` units.

    Called from coarse-grained work loops (per simulation quantum, per
    finished cell). The heartbeat thread only ever *reads* the counter,
    so a plain attribute increment under the GIL is race-free enough —
    a lost update merely delays liveness evidence by one beat.
    """
    _PROGRESS.value += amount


def progress_value() -> int:
    """Current value of this process's progress counter."""
    return _PROGRESS.value
