"""Span-based tracer with a thread/process-safe JSONL event sink.

One campaign is many processes: the supervisor, its workers, and (for
serial runs) the calling process itself. The tracer therefore keeps its
configuration in the environment — ``REPRO_TRACE`` names the sink file —
so forked/spawned workers inherit it for free, and every process appends
self-contained JSON lines to the *same* file:

* each line is written with a single ``os.write`` on an ``O_APPEND``
  descriptor, so concurrent appends from many processes interleave
  whole lines, never torn fragments (for line sizes far below the pipe
  buffer, which ours are);
* a ``threading.Lock`` serializes writers inside one process;
* readers (:mod:`repro.obs.summarize`) skip lines that do not parse, so
  a trace cut short by SIGKILL is still usable.

Line schema (``kind`` discriminates):

* ``{"kind": "span", "name": ..., "t0": ..., "t1": ..., "dur": ...,
  "wall": ..., "pid": ..., "id": ..., "parent": ..., "attrs": {...}}``
  — a closed span; ``t0``/``t1`` are ``time.monotonic()`` readings
  (comparable across processes on one machine), ``wall`` is the
  ``time.time()`` at the start, ``parent`` is the enclosing span's id
  in the same thread (``None`` at top level).
* ``{"kind": "event", "name": ..., "t": ..., "wall": ..., "pid": ...,
  "parent": ..., "attrs": {...}}`` — a point-in-time event.

**Fast path**: with ``REPRO_TRACE`` unset (or ``0``), :func:`span` and
:func:`event` cost one environment lookup and return immediately —
nested instrumented code runs at full speed. Hot per-access simulation
loops are never instrumented at all; spans wrap whole simulation runs
and engine cells.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from pathlib import Path
from typing import Any

#: Environment variable naming the trace sink. ``1``/``true`` picks the
#: default location (``trace.jsonl`` beside the result cache directory,
#: like the profiler's ``.pstats`` output); any other non-empty value
#: that is not ``0`` is the path itself.
TRACE_ENV = "REPRO_TRACE"

#: Trace line layout version (carried by the summarizer's validation).
TRACE_FORMAT_VERSION = 1

_TRUTHY = ("1", "true", "yes", "on")


def default_trace_path() -> Path:
    """Default sink: ``trace.jsonl`` beside the result cache directory."""
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if cache_dir:
        return Path(cache_dir).parent / "trace.jsonl"
    return Path.cwd() / "trace.jsonl"


class _SpanHandle:
    """A live span: context manager collecting attributes until close."""

    __slots__ = ("_tracer", "name", "attrs", "_t0", "_wall", "_id", "_parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._t0 = 0.0
        self._wall = 0.0
        self._id: str | None = None
        self._parent: str | None = None

    def set(self, **attrs: Any) -> "_SpanHandle":
        """Attach attributes to the span (merged into the close line)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_SpanHandle":
        self._id, self._parent = self._tracer._push()
        self._wall = time.time()
        self._t0 = time.monotonic()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = time.monotonic()
        self._tracer._pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self._tracer._write(
            {
                "kind": "span",
                "name": self.name,
                "t0": self._t0,
                "t1": t1,
                "dur": t1 - self._t0,
                "wall": self._wall,
                "pid": os.getpid(),
                "id": self._id,
                "parent": self._parent,
                "attrs": self.attrs,
            }
        )


class _NoopSpan:
    """Shared do-nothing span: the disabled-tracing fast path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Appends span/event lines to one JSONL file.

    Safe for concurrent use by threads (internal lock) and by processes
    (``O_APPEND`` single-write appends). Failures to write are swallowed
    after disabling the sink: observability must never take down a
    campaign.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._fd: int | None = None
        self._lock = threading.Lock()
        self._broken = False
        self._local = threading.local()
        self._ids = itertools.count(1)

    # -- span stack (per thread) ---------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _push(self) -> tuple[str, str | None]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        span_id = f"{os.getpid()}-{next(self._ids)}"
        stack.append(span_id)
        return span_id, parent

    def _pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def current_span_id(self) -> str | None:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- sink ----------------------------------------------------------
    def _ensure_open(self) -> int | None:
        if self._broken:
            return None
        if self._fd is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
            except OSError:
                self._broken = True
                return None
        return self._fd

    def _write(self, fields: dict[str, Any]) -> None:
        try:
            data = (
                json.dumps(fields, separators=(",", ":"), default=str) + "\n"
            ).encode("utf-8")
        except (TypeError, ValueError):
            return
        with self._lock:
            fd = self._ensure_open()
            if fd is None:
                return
            try:
                os.write(fd, data)
            except OSError:
                self._broken = True

    # -- public --------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        return _SpanHandle(self, name, attrs)

    def event(self, name: str, **attrs: Any) -> None:
        self._write(
            {
                "kind": "event",
                "name": name,
                "t": time.monotonic(),
                "wall": time.time(),
                "pid": os.getpid(),
                "parent": self.current_span_id(),
                "attrs": attrs,
            }
        )

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None


# ----------------------------------------------------------------------
# Module-level API keyed off the environment
# ----------------------------------------------------------------------
# The active tracer is cached per observed REPRO_TRACE value, so a test
# (or a CLI flag) flipping the environment takes effect on the next
# span/event, while steady-state cost is one os.environ lookup and one
# string comparison.
_cached_raw: str | None = None
_tracer: Tracer | None = None
_cache_lock = threading.Lock()


def _active() -> Tracer | None:
    global _cached_raw, _tracer
    raw = os.environ.get(TRACE_ENV, "")
    if raw == _cached_raw:
        return _tracer
    with _cache_lock:
        if raw == _cached_raw:
            return _tracer
        stripped = raw.strip()
        old = _tracer
        if not stripped or stripped == "0":
            _tracer = None
        elif stripped.lower() in _TRUTHY:
            _tracer = Tracer(default_trace_path())
        else:
            _tracer = Tracer(stripped)
        _cached_raw = raw
        if old is not None:
            old.close()
        return _tracer


def tracing_enabled() -> bool:
    """Whether spans/events are being recorded right now."""
    return _active() is not None


def configure_tracing(path: str | Path | None) -> None:
    """Enable (or, with ``None``, disable) tracing process-wide.

    Writes ``REPRO_TRACE`` so worker processes forked/spawned later
    inherit the same sink — this is how ``--trace`` reaches cells that
    execute in the pool.
    """
    if path is None:
        os.environ.pop(TRACE_ENV, None)
    else:
        os.environ[TRACE_ENV] = str(path)


def span(name: str, **attrs: Any):
    """A new span under the active tracer, or the shared no-op."""
    tracer = _active()
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Record a point-in-time event (no-op when tracing is disabled)."""
    tracer = _active()
    if tracer is not None:
        tracer.event(name, **attrs)
