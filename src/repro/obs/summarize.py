"""Per-phase wall-time breakdown of a trace JSONL.

``python -m repro trace-summarize <trace.jsonl>`` reads the span/event
lines written by :mod:`repro.obs.trace` and renders, per span name, the
count, total/mean/min/max duration, and the share of all span time —
the "where does a campaign's time go" table. Events are summarized by
count.

Like the journal loader, the reader is damage-tolerant: lines that do
not parse (a process killed mid-append) are counted and skipped, never
fatal — a trace from a crashed campaign is exactly when you want this
tool to work.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigurationError


@dataclass
class PhaseSummary:
    """Aggregate of every span sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    min_seconds: float = float("inf")
    max_seconds: float = 0.0

    def add(self, seconds: float) -> None:
        self.count += 1
        self.total_seconds += seconds
        self.min_seconds = min(self.min_seconds, seconds)
        self.max_seconds = max(self.max_seconds, seconds)

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything :func:`summarize_trace` extracts from one file."""

    phases: list[PhaseSummary]
    events: dict[str, int]
    spans: int = 0
    skipped_lines: int = 0
    #: Wall-clock extent of the trace: max(t1) - min(t0) across spans.
    extent_seconds: float = 0.0
    #: Sum of every span's duration (overlapping/nested spans included,
    #: so this can exceed the extent on parallel or nested traces).
    total_span_seconds: float = 0.0


def _iter_trace(path: str | Path) -> Iterator[dict[str, Any] | None]:
    """Stream one trace JSONL line-by-line (``None`` = damaged line).

    A campaign-scale trace can run to millions of lines; streaming keeps
    summarization at O(1) memory — only the per-phase aggregates are
    held, never the parsed records. Damage tolerance is unchanged from
    the slurping reader: unparseable or foreign lines yield ``None`` so
    the caller can count them, and are never fatal.
    """
    path = Path(path)
    try:
        handle = open(path, "r", encoding="utf-8", errors="replace")
    except OSError as exc:
        raise ConfigurationError(f"cannot read trace file {path}: {exc}")
    with handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                fields = json.loads(line)
            except ValueError:
                yield None
                continue
            if not isinstance(fields, dict) or fields.get("kind") not in (
                "span",
                "event",
            ):
                yield None
                continue
            yield fields


def load_trace(path: str | Path) -> tuple[list[dict[str, Any]], int]:
    """Parse one trace JSONL; returns ``(records, skipped_lines)``.

    Materializes every record — kept for callers that genuinely need
    the full list. :func:`summarize_trace` streams instead.
    """
    records: list[dict[str, Any]] = []
    skipped = 0
    for fields in _iter_trace(path):
        if fields is None:
            skipped += 1
        else:
            records.append(fields)
    return records, skipped


def summarize_trace(path: str | Path) -> TraceSummary:
    """Aggregate a trace file into per-phase summaries.

    Streams the file line-by-line: memory use is bounded by the number
    of distinct span/event *names*, not the number of lines.
    """
    skipped = 0
    phases: dict[str, PhaseSummary] = {}
    events: dict[str, int] = {}
    spans = 0
    t_min = float("inf")
    t_max = float("-inf")
    total = 0.0
    for record in _iter_trace(path):
        if record is None:
            skipped += 1
            continue
        name = str(record.get("name", "?"))
        if record["kind"] == "event":
            events[name] = events.get(name, 0) + 1
            continue
        try:
            dur = float(record["dur"])
            t0 = float(record["t0"])
            t1 = float(record["t1"])
        except (KeyError, TypeError, ValueError):
            skipped += 1
            continue
        spans += 1
        total += dur
        t_min = min(t_min, t0)
        t_max = max(t_max, t1)
        phase = phases.get(name)
        if phase is None:
            phase = phases[name] = PhaseSummary(name=name)
        phase.add(dur)
    ordered = sorted(
        phases.values(), key=lambda p: p.total_seconds, reverse=True
    )
    return TraceSummary(
        phases=ordered,
        events=dict(sorted(events.items())),
        spans=spans,
        skipped_lines=skipped,
        extent_seconds=(t_max - t_min) if spans else 0.0,
        total_span_seconds=total,
    )


def render_summary(summary: TraceSummary) -> str:
    """The per-phase breakdown as a text table."""
    lines = ["Trace summary"]
    lines.append(
        f"  spans: {summary.spans}   extent: {summary.extent_seconds:.2f}s   "
        f"span time: {summary.total_span_seconds:.2f}s"
    )
    if summary.skipped_lines:
        lines.append(f"  skipped lines: {summary.skipped_lines} (damaged/foreign)")
    if summary.phases:
        header = (
            f"  {'phase':28s} {'count':>6s} {'total':>9s} {'mean':>9s} "
            f"{'min':>9s} {'max':>9s} {'share':>6s}"
        )
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        whole = summary.total_span_seconds or 1.0
        for phase in summary.phases:
            lines.append(
                f"  {phase.name:28s} {phase.count:>6d} "
                f"{phase.total_seconds:>8.2f}s {phase.mean_seconds:>8.3f}s "
                f"{phase.min_seconds:>8.3f}s {phase.max_seconds:>8.3f}s "
                f"{phase.total_seconds / whole:>6.1%}"
            )
    else:
        lines.append("  (no spans)")
    if summary.events:
        lines.append("  events:")
        for name, count in summary.events.items():
            lines.append(f"    {name:26s} {count:>6d}")
    return "\n".join(lines)
