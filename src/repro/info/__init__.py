"""Information-theory substrate (Section 2.2 of the paper)."""

from repro.info.distributions import (
    DiscreteDistribution,
    joint_from_conditional,
    marginals,
)
from repro.info.entropy import (
    binary_entropy,
    conditional_entropy,
    entropy,
    entropy_bits_vec,
    entropy_gradient_vec,
    expected_conditional_entropy,
    joint_entropy,
    kl_divergence_bits,
    max_entropy,
    mutual_information,
    normalize_vec,
    uniform_vec,
)

__all__ = [
    "DiscreteDistribution",
    "joint_from_conditional",
    "marginals",
    "entropy",
    "joint_entropy",
    "conditional_entropy",
    "mutual_information",
    "binary_entropy",
    "max_entropy",
    "expected_conditional_entropy",
    "entropy_bits_vec",
    "entropy_gradient_vec",
    "kl_divergence_bits",
    "normalize_vec",
    "uniform_vec",
]
