"""Entropy and mutual information (Section 2.2 of the paper).

Two API layers are provided:

* Object-level functions that take :class:`~repro.info.distributions.DiscreteDistribution`
  instances — used in the leakage decomposition where outcomes are traces.
* Array-level functions on numpy probability vectors — used in the hot path
  of the Dinkelbach optimizer (Appendix A), where the distribution is a
  dense vector over an integer alphabet.

All entropies are measured in bits (log base 2).
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from repro.errors import DistributionError
from repro.info.distributions import DiscreteDistribution, marginals

_LOG2E = math.log2(math.e)


# ----------------------------------------------------------------------
# Object-level API
# ----------------------------------------------------------------------
def entropy(distribution: DiscreteDistribution) -> float:
    """Shannon entropy ``H(X)`` in bits (Equation 2.1)."""
    return distribution.entropy_bits()


def joint_entropy(joint: DiscreteDistribution) -> float:
    """Joint entropy ``H(X, Y)`` of a distribution over pairs (Equation 2.2)."""
    return joint.entropy_bits()


def conditional_entropy(joint: DiscreteDistribution) -> float:
    """Conditional entropy ``H(Y | X)`` from a joint over ``(x, y)`` pairs.

    Uses ``H(Y | X) = H(X, Y) - H(X)`` (chain rule, Equation 2.3).
    """
    px, _ = marginals(joint)
    return joint.entropy_bits() - px.entropy_bits()

def mutual_information(joint: DiscreteDistribution) -> float:
    """Mutual information ``I(X; Y)`` from a joint over pairs (Equation 2.4).

    Computed as ``H(X) + H(Y) - H(X, Y)``; clamped at zero to absorb
    floating-point residue (mutual information is always non-negative).
    """
    px, py = marginals(joint)
    value = px.entropy_bits() + py.entropy_bits() - joint.entropy_bits()
    return max(value, 0.0)


def binary_entropy(p: float) -> float:
    """Entropy of a Bernoulli(p) variable in bits."""
    if not 0.0 <= p <= 1.0:
        raise DistributionError(f"probability {p!r} outside [0, 1]")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def max_entropy(alphabet_size: int) -> float:
    """Upper bound ``log2 |X|`` on the entropy over an alphabet.

    The paper uses this bound to describe the conservative prior-work
    leakage estimate (Section 3.3): ``log2 |A|`` bits per assessment.
    """
    if alphabet_size < 1:
        raise DistributionError(f"alphabet size {alphabet_size!r} must be >= 1")
    return math.log2(alphabet_size)


def expected_conditional_entropy(
    marginal: DiscreteDistribution,
    conditionals: dict[Hashable, DiscreteDistribution],
) -> float:
    """``E[H(Y | X = x)] = sum_x p(x) H(Y | X = x)``.

    This is exactly the scheduling-leakage term of Equation 5.6: ``marginal``
    is the action-sequence distribution ``p(s)`` and ``conditionals[s]`` is
    the timing distribution ``T_s`` for sequence ``s``.
    """
    total = 0.0
    for x, px in marginal.items():
        if x not in conditionals:
            raise DistributionError(f"no conditional distribution for outcome {x!r}")
        total += px * conditionals[x].entropy_bits()
    return total


# ----------------------------------------------------------------------
# Array-level API (numpy vectors)
# ----------------------------------------------------------------------
def entropy_bits_vec(p: np.ndarray) -> float:
    """Entropy in bits of a probability vector (zeros contribute nothing)."""
    p = np.asarray(p, dtype=np.float64)
    mask = p > 0.0
    return float(-np.sum(p[mask] * np.log2(p[mask])))


def entropy_gradient_vec(p: np.ndarray) -> np.ndarray:
    """Gradient of ``H(p)`` in bits with respect to ``p``.

    ``dH/dp_i = -(log2 p_i + log2 e)``. Entries with ``p_i == 0`` get the
    one-sided limit clamped to a large finite value so gradient ascent can
    move mass back onto them.
    """
    p = np.asarray(p, dtype=np.float64)
    mask = p > 0.0
    if mask.all():
        # Fast path for strictly positive vectors (the common case in
        # the solver's inner loop): skip the fancy-indexed scatter.
        return -(np.log2(p) + _LOG2E)
    grad = np.empty_like(p)
    grad[mask] = -(np.log2(p[mask]) + _LOG2E)
    grad[~mask] = -(np.log2(1e-300) + _LOG2E)
    return grad


def kl_divergence_bits(p: np.ndarray, q: np.ndarray) -> float:
    """Kullback-Leibler divergence ``D(p || q)`` in bits.

    Returns ``inf`` when ``p`` puts mass where ``q`` does not.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise DistributionError("KL divergence requires equal-length vectors")
    mask = p > 0.0
    if np.any(q[mask] <= 0.0):
        return math.inf
    return float(np.sum(p[mask] * np.log2(p[mask] / q[mask])))


def normalize_vec(weights: np.ndarray) -> np.ndarray:
    """Normalize non-negative weights into a probability vector."""
    weights = np.asarray(weights, dtype=np.float64)
    if np.any(weights < 0.0):
        raise DistributionError("weights must be non-negative")
    total = weights.sum()
    if total <= 0.0:
        raise DistributionError("weights must have positive total")
    return weights / total


def uniform_vec(n: int) -> np.ndarray:
    """Uniform probability vector of length ``n``."""
    if n < 1:
        raise DistributionError(f"vector length {n!r} must be >= 1")
    return np.full(n, 1.0 / n, dtype=np.float64)
