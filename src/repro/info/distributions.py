"""Discrete probability distributions.

This module provides a small, explicit representation of finite discrete
distributions used throughout the leakage framework: resizing-trace
distributions (Section 5.1 of the paper), input-symbol distributions
``p(x)`` and random-delay distributions ``p(delta)`` of the covert channel
(Section 5.3.3), and the derived output distribution ``p(y)``.

Outcomes may be any hashable value. For integer-valued distributions
(timestamps, durations, delays) the class additionally supports
convolution and difference, which are what Equation 5.8 of the paper
(``d_y = d_x + delta_i - delta_{i-1}``) needs.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from typing import Callable, Hashable

from repro.errors import DistributionError

#: Tolerance used when checking that probability masses sum to one.
PROBABILITY_TOLERANCE = 1e-9


class DiscreteDistribution:
    """A finite discrete probability distribution over hashable outcomes.

    The distribution is immutable after construction. Probabilities must be
    non-negative and sum to 1 within :data:`PROBABILITY_TOLERANCE`.

    Parameters
    ----------
    pmf:
        Mapping from outcome to probability. Outcomes with zero probability
        are dropped from the support.
    """

    __slots__ = ("_pmf",)

    def __init__(self, pmf: Mapping[Hashable, float]):
        cleaned: dict[Hashable, float] = {}
        total = 0.0
        for outcome, probability in pmf.items():
            if probability < -PROBABILITY_TOLERANCE:
                raise DistributionError(
                    f"negative probability {probability!r} for outcome {outcome!r}"
                )
            if probability > 0.0:
                cleaned[outcome] = cleaned.get(outcome, 0.0) + probability
                total += probability
        if not cleaned:
            raise DistributionError("distribution has empty support")
        if abs(total - 1.0) > 1e-6:
            raise DistributionError(f"probabilities sum to {total!r}, expected 1.0")
        # Renormalize away the tiny numerical residue so downstream entropy
        # computations see an exactly-normalized distribution.
        self._pmf = {outcome: p / total for outcome, p in cleaned.items()}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def uniform(cls, outcomes: Iterable[Hashable]) -> "DiscreteDistribution":
        """Uniform distribution over ``outcomes`` (duplicates collapse)."""
        unique = list(dict.fromkeys(outcomes))
        if not unique:
            raise DistributionError("cannot build uniform distribution over nothing")
        p = 1.0 / len(unique)
        return cls({outcome: p for outcome in unique})

    @classmethod
    def delta(cls, outcome: Hashable) -> "DiscreteDistribution":
        """Point-mass distribution at ``outcome``."""
        return cls({outcome: 1.0})

    @classmethod
    def from_counts(cls, counts: Mapping[Hashable, int | float]) -> "DiscreteDistribution":
        """Empirical distribution from observation counts."""
        total = float(sum(counts.values()))
        if total <= 0:
            raise DistributionError("counts must have positive total")
        return cls({outcome: count / total for outcome, count in counts.items()})

    @classmethod
    def from_samples(cls, samples: Iterable[Hashable]) -> "DiscreteDistribution":
        """Empirical distribution of an iterable of observed samples."""
        counts: dict[Hashable, int] = {}
        for sample in samples:
            counts[sample] = counts.get(sample, 0) + 1
        return cls.from_counts(counts)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def support(self) -> list[Hashable]:
        """Outcomes with strictly positive probability."""
        return list(self._pmf)

    def probability(self, outcome: Hashable) -> float:
        """Probability of ``outcome`` (0.0 if outside the support)."""
        return self._pmf.get(outcome, 0.0)

    def items(self):
        """Iterate over ``(outcome, probability)`` pairs."""
        return self._pmf.items()

    def as_dict(self) -> dict[Hashable, float]:
        """A copy of the underlying pmf mapping."""
        return dict(self._pmf)

    def __len__(self) -> int:
        return len(self._pmf)

    def __contains__(self, outcome: Hashable) -> bool:
        return outcome in self._pmf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        shown = ", ".join(f"{o!r}: {p:.4g}" for o, p in list(self._pmf.items())[:6])
        suffix = ", ..." if len(self._pmf) > 6 else ""
        return f"DiscreteDistribution({{{shown}{suffix}}})"

    def almost_equal(self, other: "DiscreteDistribution", tol: float = 1e-9) -> bool:
        """Whether the two distributions agree within ``tol`` pointwise."""
        outcomes = set(self._pmf) | set(other._pmf)
        return all(
            abs(self.probability(o) - other.probability(o)) <= tol for o in outcomes
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def expectation(self, value: Callable[[Hashable], float] | None = None) -> float:
        """Expected value of ``value(outcome)`` (identity by default).

        Outcomes must be numeric when ``value`` is ``None``.
        """
        if value is None:
            return sum(float(o) * p for o, p in self._pmf.items())  # type: ignore[arg-type]
        return sum(value(o) * p for o, p in self._pmf.items())

    def entropy_bits(self) -> float:
        """Shannon entropy in bits (Equation 2.1 of the paper)."""
        return -sum(p * math.log2(p) for p in self._pmf.values())

    def max_outcome(self) -> Hashable:
        """The outcome with the highest probability (ties broken arbitrarily)."""
        return max(self._pmf, key=lambda o: self._pmf[o])

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def map(self, fn: Callable[[Hashable], Hashable]) -> "DiscreteDistribution":
        """Push-forward distribution of ``fn(outcome)``."""
        pushed: dict[Hashable, float] = {}
        for outcome, p in self._pmf.items():
            image = fn(outcome)
            pushed[image] = pushed.get(image, 0.0) + p
        return DiscreteDistribution(pushed)

    def condition(self, predicate: Callable[[Hashable], bool]) -> "DiscreteDistribution":
        """Distribution conditioned on ``predicate(outcome)`` being true."""
        kept = {o: p for o, p in self._pmf.items() if predicate(o)}
        if not kept:
            raise DistributionError("conditioning event has zero probability")
        return DiscreteDistribution.from_counts(kept)

    def mix(self, other: "DiscreteDistribution", weight: float) -> "DiscreteDistribution":
        """Mixture ``weight * self + (1 - weight) * other``."""
        if not 0.0 <= weight <= 1.0:
            raise DistributionError(f"mixture weight {weight!r} outside [0, 1]")
        mixed: dict[Hashable, float] = {}
        for outcome, p in self._pmf.items():
            mixed[outcome] = mixed.get(outcome, 0.0) + weight * p
        for outcome, p in other._pmf.items():
            mixed[outcome] = mixed.get(outcome, 0.0) + (1.0 - weight) * p
        return DiscreteDistribution(mixed)

    # ------------------------------------------------------------------
    # Integer-valued operations (timestamps / durations / delays)
    # ------------------------------------------------------------------
    def _require_integer_support(self, operation: str) -> None:
        for outcome in self._pmf:
            if not isinstance(outcome, int):
                raise DistributionError(
                    f"{operation} requires integer outcomes, found {outcome!r}"
                )

    def convolve(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Distribution of the sum of two independent integer variables."""
        self._require_integer_support("convolve")
        other._require_integer_support("convolve")
        summed: dict[int, float] = {}
        for a, pa in self._pmf.items():
            for b, pb in other._pmf.items():
                summed[a + b] = summed.get(a + b, 0.0) + pa * pb  # type: ignore[operator]
        return DiscreteDistribution(summed)

    def negate(self) -> "DiscreteDistribution":
        """Distribution of ``-X`` for an integer-valued variable ``X``."""
        self._require_integer_support("negate")
        return self.map(lambda o: -o)  # type: ignore[operator,arg-type]

    def difference(self, other: "DiscreteDistribution") -> "DiscreteDistribution":
        """Distribution of ``X - Y`` for independent integer variables.

        This is exactly the ``delta_i - delta_{i-1}`` term of Equation 5.8.
        """
        return self.convolve(other.negate())

    def shift(self, offset: int) -> "DiscreteDistribution":
        """Distribution of ``X + offset`` for an integer-valued variable."""
        self._require_integer_support("shift")
        return self.map(lambda o: o + offset)  # type: ignore[operator,arg-type]


def joint_from_conditional(
    marginal: DiscreteDistribution,
    conditional: Callable[[Hashable], DiscreteDistribution],
) -> DiscreteDistribution:
    """Build the joint distribution ``p(x, y) = p(x) p(y | x)``.

    ``conditional(x)`` must return the distribution of ``Y`` given ``X = x``.
    Outcomes of the joint are ``(x, y)`` tuples.
    """
    joint: dict[Hashable, float] = {}
    for x, px in marginal.items():
        for y, py in conditional(x).items():
            joint[(x, y)] = joint.get((x, y), 0.0) + px * py
    return DiscreteDistribution(joint)


def marginals(joint: DiscreteDistribution) -> tuple[DiscreteDistribution, DiscreteDistribution]:
    """Marginal distributions of a joint over ``(x, y)`` tuples."""
    px: dict[Hashable, float] = {}
    py: dict[Hashable, float] = {}
    for outcome, p in joint.items():
        if not (isinstance(outcome, tuple) and len(outcome) == 2):
            raise DistributionError("joint outcomes must be (x, y) tuples")
        x, y = outcome
        px[x] = px.get(x, 0.0) + p
        py[y] = py.get(y, 0.0) + p
    return DiscreteDistribution(px), DiscreteDistribution(py)
