"""Parallel experiment execution engine with on-disk result caching.

Every figure and table of the paper is a grid of independent
``(mix, scheme, profile)`` — or, for Figure 11, ``(benchmark, size,
profile)`` — simulation cells. This module fans those cells out over a
process pool and memoizes their results in a content-addressed on-disk
cache, so that

* a grid of ``M`` mixes × ``S`` schemes runs on ``min(jobs, M*S)``
  cores instead of one, and
* re-running a benchmark driver after an unrelated edit performs zero
  simulations: each cell's cache key is a deterministic hash of the mix
  pairs, the scheme name, and the **full** :class:`RunProfile`, so a
  result is reused if and only if the inputs that determine it are
  unchanged.

Because each cell builds its own seeded :class:`MultiDomainSystem` from
scratch, parallel execution is *bit-identical* to serial execution (and
to a cache hit or a journal replay: the JSON round-trip used by both is
exact for Python floats). ``tests/harness/test_exec.py`` pins both
guarantees.

Fault tolerance — the measurement substrate must be at least as
dependable as the system under test:

* **Crash-safe journal + resume.** With a :class:`RunJournal` attached,
  every finished cell is durably appended before it is reported; after
  a crash/SIGKILL, ``resume=True`` replays journaled outcomes (zero
  re-simulation) and runs only the cells that never completed.
* **Worker supervision.** Parallel cells run on dedicated worker
  processes watched by a supervisor: a worker that crashes or blows its
  per-cell deadline is killed and respawned, and its cell is retried
  with exponential backoff + deterministic jitter — one stuck cell can
  no longer occupy a pool slot for the rest of the run.
* **Heartbeat liveness.** Workers interleave progress-carrying
  heartbeats with their result stream, so the supervisor distinguishes
  *slow* (progress advancing — deadlines extend) from *hung* (progress
  frozen — ``worker.unresponsive`` fires, and a stall kill lands well
  before a chunk of N cells would burn N deadlines).
* **Poison-cell circuit breaker.** A cell whose every attempt killed
  its worker is quarantined as ``poisoned`` instead of shooting workers
  forever: the campaign completes, a failure manifest
  (``failures.json``) is rendered, and ``--resume`` re-attempts exactly
  the poisoned/failed cells.
* **Degraded-mode I/O.** ``ENOSPC``/``EIO`` on the journal, result
  cache, or precompute store downgrades that subsystem (journal →
  no-resume warning, cache/store → compute-only) — visible in
  telemetry, ``repro_degraded_total``, and the run span — instead of
  aborting hours of surviving work.
* **Graceful shutdown.** SIGINT/SIGTERM terminate workers cleanly,
  leave the journal valid, and surface a resume hint via
  :class:`~repro.errors.CampaignInterrupted`.
* **Orphan reaping.** Startup sweeps shm store segments and fault-state
  directories whose owning process died uncleanly (SIGKILL) — see
  :mod:`repro.harness.reaper`.
* **Cache integrity.** Entries carry a payload checksum; corrupt,
  truncated, or version-mismatched entries are quarantined (renamed
  ``*.corrupt``) and counted in telemetry instead of being silently
  re-parsed forever.
* **Fault injection.** A :class:`~repro.harness.faults.FaultPlan`
  (``REPRO_FAULTS``) injects crashes, hangs, worker kills, and cache
  corruption so every recovery path above is provable by tests.

Telemetry: the engine counts cache hits/misses, journal replays,
simulations, retries, failures, quarantines, and supervision events;
:func:`repro.harness.report.render_telemetry` renders the summary and
the optional ``progress`` callback receives one structured line per
completed cell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
import signal
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.errors import CampaignInterrupted, ConfigurationError, JournalError
from repro.harness.faults import FaultPlan, faults_from_env, release_fault_state
from repro.harness.journal import JournalEntry, RunJournal, batching_from_env
from repro.harness.reaper import reap_orphans
from repro.harness.profiling import maybe_profile, reset_claim
from repro.harness.runconfig import RunProfile
from repro.harness.streamstats import StreamingSummary
from repro.harness.store import (
    STORE_DIR_ENV,
    STORE_SHM_ENV,
    PrecomputeStore,
    apply_store_stats_delta,
    clear_active_store,
    precompute_from_env,
    set_active_store,
    store_stats_delta,
    store_stats_snapshot,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.liveness import progress_beat, progress_value
from repro.sim.batch import cell_scratch

#: Bump when the cached payload layout or the simulator's semantics
#: change incompatibly; old entries are then quarantined, not misread.
#: (2: entries carry a payload checksum. 3: symmetric linear-
#: interpolation partition quartiles; unfinished slices report partial
#: IPC instead of 0.)
CACHE_FORMAT_VERSION = 3

#: Supported campaign schedulers: ``steal`` (per-worker deques seeded
#: longest-expected-first, idle workers steal from the most loaded
#: peer) and ``fifo`` (the legacy single global queue, retained as the
#: per-cell dispatch baseline of ``benchmarks/bench_campaign.py``).
SCHEDULERS = ("steal", "fifo")

#: Hard ceiling on cells per dispatched chunk (auto sizing stays below).
MAX_BATCH_CELLS = 32

#: Layout version of the failure manifest (``failures.json``).
MANIFEST_FORMAT_VERSION = 1

#: File the failure manifest is rendered to, next to the journal (or in
#: the cache directory when no journal is attached).
MANIFEST_NAME = "failures.json"

#: Cap on *successful* per-cell records retained in telemetry; beyond
#: it the streaming sketches carry the distribution (failures are
#: always retained for the manifest/report).
MAX_RETAINED_RECORDS = 10_000

# Engine-level metrics, recorded per cell / per supervision event (never
# per simulated access), so they are cheap enough to count always;
# REPRO_METRICS only controls whether they are exported. They live in
# the process-wide registry (repro.obs.metrics.get_registry()) alongside
# the simulator's and journal's counters.
_REG = obs_metrics.get_registry()
_M_CELLS = {
    status: _REG.counter(
        "repro_exec_cells_total",
        "Engine cell outcomes by status",
        status=status,
    )
    for status in ("computed", "hit", "replayed", "failed", "poisoned")
}
_M_RETRIES = _REG.counter("repro_exec_retries_total", "Cell retry attempts")
_M_CYCLES = _REG.counter(
    "repro_exec_cycles_simulated_total", "Simulated cycles across cells"
)
_M_WORKER = {
    kind: _REG.counter(
        "repro_exec_worker_events_total",
        "Worker supervision events",
        kind=kind,
    )
    for kind in ("crash", "timeout", "respawn", "unresponsive")
}
_M_DEGRADED = {
    subsystem: _REG.counter(
        "repro_degraded_total",
        "I/O subsystems downgraded mid-campaign instead of aborting",
        subsystem=subsystem,
    )
    for subsystem in ("journal", "cache", "store")
}
_M_BACKOFF = _REG.counter(
    "repro_exec_backoff_seconds_total", "Retry backoff delay scheduled"
)
_M_CACHE = {
    kind: _REG.counter(
        "repro_cache_requests_total",
        "Result-cache lookups by outcome",
        outcome=kind,
    )
    for kind in ("hit", "miss", "quarantined")
}
_M_PACK_BYTES = _REG.counter(
    "repro_cache_pack_bytes_total",
    "Bytes appended to result-cache pack segments",
)
_M_CELL_SECONDS = _REG.histogram(
    "repro_exec_cell_seconds",
    "Per-cell wall time (completed cells)",
    buckets=obs_metrics.CELL_SECONDS_BUCKETS,
)
_M_STEALS = _REG.counter(
    "repro_steals_total", "Chunks stolen from a peer worker's deque"
)
_M_BATCH_CELLS = _REG.histogram(
    "repro_batch_cells",
    "Cells per dispatched chunk",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
)


# ----------------------------------------------------------------------
# Cells: one independent unit of simulation work
# ----------------------------------------------------------------------
def _profile_token(profile: RunProfile) -> dict[str, Any]:
    """The full profile as a canonical, JSON-able dict (cache identity)."""
    return dataclasses.asdict(profile)


@dataclass(frozen=True)
class MixSchemeCell:
    """One mix simulated under one scheme — a Figure 10/12-17 cell.

    ``scheme_params`` holds registry parameter overrides as a sorted
    ``((name, value), ...)`` tuple (see
    :func:`repro.registry.canonical_params`). It is *omitted* from the
    cache token when empty, so every cell spelled the old way — every
    cell of every existing campaign — keeps its exact cache key.
    """

    pairs: tuple[tuple[str, str], ...]
    scheme: str
    profile: RunProfile
    scheme_params: tuple[tuple[str, Any], ...] = ()

    @property
    def label(self) -> str:
        base = f"mix[{'|'.join(s + '+' + c for s, c in self.pairs)}]/{self.scheme}"
        if not self.scheme_params:
            return base
        overrides = ",".join(f"{k}={v}" for k, v in self.scheme_params)
        return f"{base}{{{overrides}}}"

    def cache_token(self) -> dict[str, Any]:
        token = {
            "kind": "mix-scheme",
            "pairs": [list(pair) for pair in self.pairs],
            "scheme": self.scheme,
            "profile": _profile_token(self.profile),
        }
        if self.scheme_params:
            token["scheme_params"] = {
                name: list(value) if isinstance(value, tuple) else value
                for name, value in self.scheme_params
            }
        return token

    def execute(self) -> Any:
        from repro.harness.experiment import run_mix_scheme

        return run_mix_scheme(
            list(self.pairs),
            self.scheme,
            self.profile,
            scheme_params=dict(self.scheme_params) or None,
        )

    @staticmethod
    def execute_stacked(cells: list["MixSchemeCell"], max_lanes: int | None = None) -> list:
        """Execute a batch-compatible chunk of cells as stacked lanes.

        The chunk driver calls this instead of per-cell :meth:`execute`
        when lane stacking is enabled. Returns one result (or exception
        instance, for an isolated lane failure) per cell, in order —
        bit-identical to the sequential path
        (``tests/sim/test_stacked_lanes.py``).
        """
        from repro.harness.experiment import run_mix_schemes_stacked

        return run_mix_schemes_stacked(
            [
                (list(cell.pairs), cell.scheme, cell.profile,
                 cell.scheme_params)
                for cell in cells
            ],
            max_lanes=max_lanes,
        )

    @staticmethod
    def prefork_warm(cells: list["MixSchemeCell"]) -> int:
        """Pre-compute shared pure state in the dispatching process.

        The supervisor calls this once, right before forking workers,
        when lane stacking is enabled: L1 service traces and untangle
        rate tables are pure functions of the cell inputs, so one
        walk/solve here is inherited copy-on-write by every worker
        instead of being repeated per worker that draws a chunk needing
        it. Purely an optimization — results are identical without it.
        """
        from repro.harness.experiment import warm_l1_traces, warm_rate_tables

        warmed = warm_l1_traces(
            [(list(cell.pairs), cell.profile) for cell in cells]
        )
        warmed += warm_rate_tables(
            [(cell.scheme, cell.profile, cell.scheme_params)
             for cell in cells]
        )
        return warmed

    def batch_group(self) -> tuple:
        """Chunk-compatibility key for cell-major batching.

        Cells sharing a scheme (including parameter overrides) and
        profile have comparable runtimes and identical store needs, so
        stacking them through one worker's shared scratch arena
        amortizes well without creating stragglers inside a chunk.
        """
        return (
            "mix-scheme", self.scheme, self.profile.name,
            self.scheme_params,
        )

    def store_needs(self) -> list[tuple]:
        """Precomputable artifacts this cell will consume (store populate).

        One workload trace per pair (mirroring ``run_mix_scheme``'s
        seeds) plus whatever the scheme's registration declares — for
        the Untangle variants, the exact rate table its factory will
        request.
        """
        from repro.registry import scheme_store_needs

        needs: list[tuple] = [
            ("trace", spec, crypto, self.profile.workload_scale,
             self.profile.seed + index)
            for index, (spec, crypto) in enumerate(self.pairs)
        ]
        try:
            needs.extend(
                scheme_store_needs(
                    self.scheme, self.profile, dict(self.scheme_params)
                )
            )
        except ConfigurationError:
            # An unregistered scheme fails loudly at execute(); store
            # populate must not be the first place to die.
            pass
        return needs

    @staticmethod
    def cycles_of(value: Any) -> int:
        return int(value.total_cycles)

    @staticmethod
    def encode(value: Any) -> dict[str, Any]:
        return {
            "scheme": value.scheme,
            "total_cycles": value.total_cycles,
            "workloads": [
                {
                    "label": w.label,
                    "ipc": w.ipc,
                    "assessments": w.assessments,
                    "visible_actions": w.visible_actions,
                    "leakage_bits": w.leakage_bits,
                    "partition_quartiles": list(w.partition_quartiles),
                }
                for w in value.workloads
            ],
        }

    @staticmethod
    def decode(payload: dict[str, Any]) -> Any:
        from repro.harness.experiment import SchemeRunResult, WorkloadResult

        return SchemeRunResult(
            scheme=payload["scheme"],
            total_cycles=payload["total_cycles"],
            workloads=[
                WorkloadResult(
                    label=w["label"],
                    ipc=w["ipc"],
                    assessments=w["assessments"],
                    visible_actions=w["visible_actions"],
                    leakage_bits=w["leakage_bits"],
                    partition_quartiles=tuple(w["partition_quartiles"]),
                )
                for w in payload["workloads"]
            ],
        )


@dataclass(frozen=True)
class SensitivityCell:
    """One benchmark alone at one partition size — a Figure 11 cell."""

    benchmark: str
    partition_lines: int
    profile: RunProfile

    @property
    def label(self) -> str:
        return f"sensitivity[{self.benchmark}]/{self.partition_lines}"

    def cache_token(self) -> dict[str, Any]:
        return {
            "kind": "sensitivity",
            "benchmark": self.benchmark,
            "partition_lines": self.partition_lines,
            "profile": _profile_token(self.profile),
        }

    def execute(self) -> Any:
        from repro.harness.sensitivity import run_benchmark_at_size
        from repro.workloads.spec import SPEC_BENCHMARKS

        return run_benchmark_at_size(
            SPEC_BENCHMARKS[self.benchmark], self.partition_lines, self.profile
        )

    def batch_group(self) -> tuple:
        """Chunk-compatibility key: all sizes of one profile batch well
        (they share the benchmark-trace store needs and kernel shape)."""
        return ("sensitivity", self.profile.name)

    def store_needs(self) -> list[tuple]:
        """One shared SPEC-only trace per benchmark, reused by all sizes."""
        scale = self.profile.workload_scale
        return [
            (
                "spec-stream",
                self.benchmark,
                scale.spec_instructions,
                scale.lines_per_mb,
                self.profile.seed,
            )
        ]

    @staticmethod
    def cycles_of(value: Any) -> int | None:
        return None

    @staticmethod
    def encode(value: Any) -> dict[str, Any]:
        return {"ipc": value}

    @staticmethod
    def decode(payload: dict[str, Any]) -> Any:
        return payload["ipc"]


def cell_key(cell: Any) -> str:
    """Deterministic content hash identifying one cell's result."""
    token = {"format": CACHE_FORMAT_VERSION, **cell.cache_token()}
    canonical = json.dumps(token, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed store of cell results in packed segments.

    Entries are appended to per-shard pack segments
    (``<directory>/packs/<key[:1]>.pack``, one JSON line per entry)
    with an in-memory offset index, persisted as a compact sidecar
    (``<shard>.idx``) on teardown so a warm process locates every entry
    without rescanning. One put is one ``write(2)`` on an already-open
    ``O_APPEND`` descriptor — no per-entry ``mkdir``/``mkstemp``/
    ``os.replace`` — which is what lets the campaign control plane
    scale to 100k trivial cells.

    The legacy one-file-per-entry layout
    (``<directory>/<key[:2]>/<key>.json``) remains fully readable:
    :meth:`get` falls back to it when a key has no packed entry, so
    existing caches interchange without migration. ``layout="files"``
    keeps *writing* that layout (atomic temp file + rename) — retained
    as the baseline arm of ``benchmarks/bench_overhead.py``.

    Integrity: cache keys and the per-entry SHA-256 of the value
    payload are unchanged from the per-file layout. A packed entry that
    is torn, garbled, checksum-mismatched, or format-incompatible is
    *quarantined* — its bytes are appended to the shard's
    ``<shard>.corrupt`` sidecar and the pack is compacted (atomic
    rewrite + rename) to drop exactly the damaged lines, counted in
    :attr:`quarantined`. Legacy entries quarantine by rename
    (``<entry>.json.corrupt``) as before.
    """

    def __init__(self, directory: str | Path, *, layout: str = "pack"):
        if layout not in ("pack", "files"):
            raise ConfigurationError(
                f"unknown cache layout {layout!r}; accepted: pack, files"
            )
        self.directory = Path(directory)
        self.layout = layout
        #: Entries quarantined by :meth:`get` over this instance's life.
        self.quarantined = 0
        #: Successful/absent lookups over this instance's life.
        self.hits = 0
        self.misses = 0
        # Packed-segment state: per-shard offset index, bytes scanned,
        # open O_APPEND descriptors, and which sidecars need rewriting.
        self._index: dict[str, dict[str, tuple[int, int]]] = {}
        self._scanned: dict[str, int] = {}
        self._fds: dict[str, int] = {}
        self._dirty: set[str] = set()
        self._packs_dir_made = False
        #: Shards already brought up to date by :meth:`_refresh_shard`
        #: this instance (one ``stat`` + tail scan per shard, not per
        #: get). A validation failure still forces a full re-scan.
        self._refreshed: set[str] = set()
        # Whether the directory holds legacy per-file entries at all;
        # resolved lazily with one directory listing so a pure-pack
        # cache never pays the per-miss legacy path probe.
        self._legacy_checked = layout == "files"
        self._legacy_present = layout == "files"
        #: Shard dirs already created by the legacy writer (memoized so
        #: ``layout="files"`` pays one mkdir per shard, not per put).
        self._made_dirs: set[str] = set()

    # -- paths ----------------------------------------------------------
    def _path(self, key: str) -> Path:
        """Legacy per-file entry path (still read; written by
        ``layout="files"``)."""
        return self.directory / key[:2] / f"{key}.json"

    @staticmethod
    def _pack_shard(key: str) -> str:
        """Pack shard of a key: one hex character, sixteen segments.

        Coarser than the legacy two-character directory fan-out on
        purpose: the point of packing is few, large, append-only files
        (fewer descriptors, fewer sidecars, fewer fsync targets), and
        sixteen segments keep even a 100k-cell cache at a comfortable
        per-segment size.
        """
        return key[:1]

    def _pack_path(self, shard: str) -> Path:
        return self.directory / "packs" / f"{shard}.pack"

    def _index_path(self, shard: str) -> Path:
        return self.directory / "packs" / f"{shard}.idx"

    def _corrupt_path(self, shard: str) -> Path:
        return self.directory / "packs" / f"{shard}.corrupt"

    @staticmethod
    def _value_checksum(value: Any) -> str:
        canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    @staticmethod
    def _encode_entry(key: str, payload: dict[str, Any]) -> bytes:
        """One pack line, serializing the value exactly once.

        The value's canonical JSON feeds the sha256 *and* is spliced
        verbatim into the entry line (canonical JSON round-trips
        exactly, so the checksum re-verifies on read).
        """
        value_json = json.dumps(
            payload.get("value"), sort_keys=True, separators=(",", ":")
        )
        sha = hashlib.sha256(value_json.encode("utf-8")).hexdigest()
        rest = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "sha256": sha,
            **{k: v for k, v in payload.items() if k != "value"},
        }
        head = json.dumps(rest, separators=(",", ":"))
        return (head[:-1] + ',"value":' + value_json + "}\n").encode("utf-8")

    # -- pack plumbing --------------------------------------------------
    def _ensure_packs_dir(self) -> None:
        if not self._packs_dir_made:
            (self.directory / "packs").mkdir(parents=True, exist_ok=True)
            self._packs_dir_made = True

    def _fd(self, shard: str) -> int:
        """The shard's append descriptor, opened (and tail-repaired) once."""
        fd = self._fds.get(shard)
        if fd is not None:
            return fd
        self._ensure_packs_dir()
        fd = os.open(
            self._pack_path(shard),
            os.O_APPEND | os.O_CREAT | os.O_RDWR,
            0o644,
        )
        size = os.fstat(fd).st_size
        if size and os.pread(fd, 1, size - 1) != b"\n":
            # A torn final append (crash mid-write) left no newline;
            # terminate it so the fragment scans as one damaged line
            # instead of gluing itself onto the next entry.
            os.write(fd, b"\n")
        self._fds[shard] = fd
        return fd

    def _load_sidecar(self, shard: str, size: int) -> int:
        """Seed the in-memory index from ``<shard>.idx``; returns the
        byte offset up to which the sidecar is authoritative."""
        try:
            sidecar = json.loads(self._index_path(shard).read_bytes())
        except (OSError, ValueError):
            return 0
        if (
            not isinstance(sidecar, dict)
            or sidecar.get("format") != CACHE_FORMAT_VERSION
            or not isinstance(sidecar.get("entries"), dict)
            or not isinstance(sidecar.get("pack_bytes"), int)
            or sidecar["pack_bytes"] > size
        ):
            # Stale or damaged sidecar (e.g. the pack was compacted or
            # truncated after it was written): fall back to a full scan.
            return 0
        index = self._index.setdefault(shard, {})
        for key, loc in sidecar["entries"].items():
            if (
                isinstance(key, str)
                and isinstance(loc, list)
                and len(loc) == 2
                and all(isinstance(v, int) for v in loc)
            ):
                index[key] = (loc[0], loc[1])
        return sidecar["pack_bytes"]

    def _refresh_shard(self, shard: str) -> None:
        """Index any pack bytes this instance has not scanned yet.

        Damaged lines found while scanning (torn tail from a crash,
        foreign garbage) are quarantined immediately; parseable entries
        are indexed newest-wins. A trailing fragment without a newline
        is left unscanned — the tail repair in :meth:`_fd` bounds it.

        Runs once per shard per instance: a fresh instance always
        re-scans (so cross-process appends are picked up between
        campaigns), but within one campaign the supervisor is the only
        writer, so repeating the ``stat`` on every get buys nothing.
        :meth:`_read_packed` drops the memo when validation fails.
        """
        if shard in self._refreshed:
            return
        self._refreshed.add(shard)
        path = self._pack_path(shard)
        try:
            size = path.stat().st_size
        except OSError:
            self._index.setdefault(shard, {})
            self._scanned.setdefault(shard, 0)
            return
        scanned = self._scanned.get(shard)
        if scanned is None:
            scanned = self._load_sidecar(shard, size)
        if size <= scanned:
            self._index.setdefault(shard, {})
            self._scanned[shard] = scanned
            return
        try:
            with open(path, "rb") as handle:
                handle.seek(scanned)
                blob = handle.read(size - scanned)
        except OSError:
            self._index.setdefault(shard, {})
            self._scanned.setdefault(shard, scanned)
            return
        index = self._index.setdefault(shard, {})
        offset = scanned
        damaged: list[tuple[int, int]] = []
        end = len(blob)
        pos = 0
        while pos < end:
            newline = blob.find(b"\n", pos)
            if newline < 0:
                break  # in-flight/torn tail: not scanned, not damaged
            line = blob[pos : newline + 1]
            length = len(line)
            key = None
            try:
                fields = json.loads(line)
                if isinstance(fields, dict):
                    key = fields.get("key")
            except ValueError:
                pass
            if isinstance(key, str):
                index[key] = (offset, length)
            elif line.strip():
                damaged.append((offset, length))
            offset += length
            pos = newline + 1
        self._scanned[shard] = offset
        if damaged:
            for dmg_offset, dmg_length in damaged:
                self._quarantine_packed_bytes(
                    shard, blob[dmg_offset - scanned :][:dmg_length]
                )
            self._compact_shard(shard)

    def _quarantine_packed_bytes(self, shard: str, data: bytes) -> None:
        """Book one damaged packed entry: counted, bytes preserved in
        the shard's ``.corrupt`` sidecar for diagnosis."""
        self.quarantined += 1
        _M_CACHE["quarantined"].inc()
        obs_trace.event(
            "cache.quarantine", path=str(self._pack_path(shard)), shard=shard
        )
        try:
            self._ensure_packs_dir()
            with open(self._corrupt_path(shard), "ab") as handle:
                handle.write(data if data.endswith(b"\n") else data + b"\n")
        except OSError:
            pass

    def _compact_shard(self, shard: str) -> None:
        """Rewrite the shard's pack from its surviving index entries.

        Atomic (temp file + rename), so readers never see a half-
        compacted pack; only the quarantined lines are dropped, every
        surviving entry's bytes are preserved verbatim.
        """
        path = self._pack_path(shard)
        index = self._index.get(shard, {})
        with obs_trace.span(
            "cache.compact", path=str(path), entries=len(index)
        ):
            fd = self._fd(shard)
            survivors: list[tuple[str, bytes]] = []
            for key, (offset, length) in sorted(
                index.items(), key=lambda item: item[1][0]
            ):
                data = os.pread(fd, length, offset)
                if len(data) == length:
                    survivors.append((key, data))
            tmp_fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{shard}-", suffix=".tmp"
            )
            try:
                new_index: dict[str, tuple[int, int]] = {}
                offset = 0
                with os.fdopen(tmp_fd, "wb") as handle:
                    for key, data in survivors:
                        handle.write(data)
                        new_index[key] = (offset, len(data))
                        offset += len(data)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            # The open descriptor still points at the pre-compaction
            # inode; reopen lazily.
            os.close(self._fds.pop(shard))
            self._index[shard] = new_index
            self._scanned[shard] = offset
            self._dirty.add(shard)

    def _write_sidecar(self, shard: str) -> None:
        index = self._index.get(shard)
        if index is None:
            return
        payload = {
            "format": CACHE_FORMAT_VERSION,
            "pack_bytes": self._scanned.get(shard, 0),
            "entries": {key: list(loc) for key, loc in index.items()},
        }
        path = self._index_path(shard)
        try:
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{shard}-", suffix=".idx.tmp"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except (OSError, UnboundLocalError):
                pass

    def release_handles(self) -> None:
        """Persist dirty sidecar indexes and close pack descriptors.

        Called on engine teardown (and finalization) so a campaign
        holds at most one descriptor per touched shard while running
        and zero afterwards.
        """
        for shard in sorted(self._dirty):
            self._write_sidecar(shard)
        self._dirty.clear()
        for shard in list(self._fds):
            try:
                os.close(self._fds.pop(shard))
            except OSError:
                pass

    close = release_handles

    def __del__(self):  # pragma: no cover - finalization best-effort
        try:
            self.release_handles()
        except Exception:
            pass

    # -- quarantine (legacy + packed) -----------------------------------
    def _quarantine(self, path: Path) -> None:
        """Legacy per-file quarantine: rename to ``*.corrupt``."""
        self.quarantined += 1
        _M_CACHE["quarantined"].inc()
        obs_trace.event("cache.quarantine", path=str(path))
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def _miss(self) -> None:
        self.misses += 1
        _M_CACHE["miss"].inc()

    def _scan_legacy_dirs(self) -> bool:
        """Whether the directory holds any legacy two-hex shard dirs."""
        try:
            with os.scandir(self.directory) as entries:
                return any(
                    entry.is_dir()
                    and len(entry.name) == 2
                    and all(c in "0123456789abcdef" for c in entry.name)
                    for entry in entries
                )
        except OSError:
            return False

    @staticmethod
    def _valid(payload: Any) -> bool:
        return (
            isinstance(payload, dict)
            and payload.get("format") == CACHE_FORMAT_VERSION
            and "value" in payload
            and payload.get("sha256")
            == ResultCache._value_checksum(payload["value"])
        )

    # -- lookup ---------------------------------------------------------
    def _read_packed(self, shard: str, key: str) -> dict[str, Any] | None:
        """The packed entry for ``key``, quarantining it if damaged.

        Returns the payload on success, ``None`` when the key has no
        (surviving) packed entry. A validation failure first forces a
        full shard rescan — the index may be stale if another process
        appended or compacted — and only quarantines if the freshly
        located bytes are damaged too.
        """
        for attempt in range(2):
            loc = self._index.get(shard, {}).get(key)
            if loc is None:
                return None
            offset, length = loc
            try:
                data = os.pread(self._fd(shard), length, offset)
            except OSError:
                return None
            payload: Any = None
            if len(data) == length:
                try:
                    payload = json.loads(data)
                except ValueError:
                    payload = None
            if (
                isinstance(payload, dict)
                and payload.get("key") == key
                and self._valid(payload)
            ):
                return payload
            if attempt == 0:
                # Stale index? Re-scan the shard from scratch before
                # declaring the entry damaged.
                self._index.pop(shard, None)
                self._scanned.pop(shard, None)
                self._refreshed.discard(shard)
                self._refresh_shard(shard)
                if self._index.get(shard, {}).get(key) == loc:
                    break  # same bytes — genuinely damaged
        loc = self._index.get(shard, {}).get(key)
        if loc is None:
            return None
        offset, length = loc
        try:
            data = os.pread(self._fd(shard), length, offset)
        except OSError:
            data = b""
        self._index[shard].pop(key, None)
        self._quarantine_packed_bytes(shard, data)
        self._compact_shard(shard)
        return None

    def get(self, key: str) -> dict[str, Any] | None:
        shard = self._pack_shard(key)
        self._refresh_shard(shard)
        payload = self._read_packed(shard, key)
        if payload is not None:
            self.hits += 1
            _M_CACHE["hit"].inc()
            return payload
        # Fall back to the legacy per-file layout (pre-pack caches
        # interchange without migration). One directory listing decides
        # whether any legacy shard dirs exist at all; a pure-pack cache
        # then misses without per-key path probes.
        if not self._legacy_checked:
            self._legacy_checked = True
            self._legacy_present = self._scan_legacy_dirs()
        if not self._legacy_present:
            self._miss()
            return None
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self._miss()
            return None  # genuinely absent — a plain miss
        try:
            legacy = json.loads(text)
        except ValueError:
            self._quarantine(path)
            self._miss()
            return None
        if not self._valid(legacy):
            self._quarantine(path)
            self._miss()
            return None
        self.hits += 1
        _M_CACHE["hit"].inc()
        return legacy

    # -- write ----------------------------------------------------------
    def put(self, key: str, payload: dict[str, Any]) -> None:
        """Write one entry durably-replaceable and atomically visible.

        Packed layout: one append of one serialized line (newline-
        terminated appends are atomic for readers; a newer line for the
        same key shadows older ones). ``layout="files"``: the legacy
        atomic temp-file + rename. Raises ``OSError`` (e.g.
        ``ENOSPC``/``EIO``): the engine downgrades the cache to
        compute-only on the first write failure rather than silently
        dropping every entry onto a full disk for the rest of the
        campaign.
        """
        line = self._encode_entry(key, payload)
        if self.layout == "files":
            path = self._path(key)
            if key[:2] not in self._made_dirs:
                path.parent.mkdir(parents=True, exist_ok=True)
                self._made_dirs.add(key[:2])
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(line)
                os.replace(tmp, path)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return
        shard = self._pack_shard(key)
        fd = self._fd(shard)
        offset = os.lseek(fd, 0, os.SEEK_END)
        os.write(fd, line)
        _M_PACK_BYTES.inc(len(line))
        index = self._index.setdefault(shard, {})
        index[key] = (offset, len(line))
        if self._scanned.get(shard, 0) == offset:
            # Contiguous with what we have scanned; otherwise a foreign
            # writer appended in between and the next refresh re-scans.
            self._scanned[shard] = offset + len(line)
        self._dirty.add(shard)

    # -- fault seam -----------------------------------------------------
    def corrupt_entry(self, key: str) -> None:
        """Garble the stored entry for ``key`` in place (fault injection).

        Packed entries are damaged *within* their line — byte length
        and neighbors untouched, so exactly one entry is affected;
        legacy entries are truncated like a torn write.
        """
        shard = self._pack_shard(key)
        self._refresh_shard(shard)
        loc = self._index.get(shard, {}).get(key)
        if loc is None:
            FaultPlan.corrupt_file(self._path(key))
            return
        offset, length = loc
        stamp = b"#torn-write#"[: max(1, length - 2)]
        try:
            # Not the shard's O_APPEND descriptor: pwrite on O_APPEND
            # appends regardless of offset (Linux), which would leave
            # the target line intact.
            fd = os.open(self._pack_path(shard), os.O_WRONLY)
            try:
                os.pwrite(fd, stamp, offset)
            finally:
                os.close(fd)
        except OSError:
            pass


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
@dataclass
class CellRecord:
    """Per-cell telemetry line."""

    label: str
    status: str  # "hit" | "replayed" | "computed" | "failed" | "poisoned"
    wall_seconds: float
    attempts: int
    cycles: int | None = None
    error: str | None = None


@dataclass
class EngineTelemetry:
    """Counters accumulated across one engine's lifetime."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    journal_replays: int = 0
    simulations: int = 0
    retries: int = 0
    failures: int = 0
    #: Subset of ``failures`` quarantined as poison: every attempt ended
    #: in a worker death, so retrying further is hopeless by evidence.
    poisoned: int = 0
    #: Corrupt/stale cache entries renamed ``*.corrupt`` by this engine.
    quarantines: int = 0
    #: Worker processes that died mid-cell (and were respawned).
    worker_crashes: int = 0
    #: Workers killed for blowing the per-cell deadline (or for stalling
    #: past the stall deadline with frozen heartbeat progress).
    worker_timeouts: int = 0
    workers_respawned: int = 0
    #: ``worker.unresponsive`` warnings: heartbeats silent or progress
    #: frozen long enough to flag, before any kill decision.
    worker_unresponsive: int = 0
    #: I/O subsystems downgraded mid-run instead of aborting the
    #: campaign: subsystem name -> first error, e.g.
    #: ``{"cache": "OSError: [Errno 28] No space left on device"}``.
    degraded: dict[str, str] = field(default_factory=dict)
    #: Total retry backoff delay scheduled (seconds).
    backoff_seconds: float = 0.0
    #: True when the run ended via SIGINT/SIGTERM.
    interrupted: bool = False
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0
    cycles_simulated: int = 0
    #: Precompute-store accounting (PR 5), absorbed once per run from
    #: the metrics registry (populate + serial cells + worker deltas).
    store_trace_hits: int = 0
    store_trace_misses: int = 0
    store_trace_bytes: int = 0
    store_rmax_hits: int = 0
    store_rmax_misses: int = 0
    store_quarantines: int = 0
    #: Full workload compositions / Dinkelbach solves paid anywhere in
    #: the campaign — a warm store drives both to zero.
    workload_builds: int = 0
    rmax_solves: int = 0
    #: Chunks stolen from a peer worker's deque (steal scheduler only).
    steals: int = 0
    #: Chunks sent to workers / cells carried by those chunks. Equal
    #: when ``batch_cells=1``; their ratio is the realized batch factor.
    batches_dispatched: int = 0
    batched_cells: int = 0
    #: Cells executed inside stacked-lanes groups and the lane
    #: divergences (assessments, early finishes) those groups saw —
    #: absorbed from the ``repro_stacked_*`` counters, wherever the
    #: lanes actually ran (serial driver or worker processes).
    stacked_cells: int = 0
    lane_divergences: int = 0
    #: Per-cell records retained for reporting. Successful cells are
    #: capped at :data:`MAX_RETAINED_RECORDS` (the overflow counted in
    #: :attr:`records_dropped`) so a 100k-cell campaign's telemetry
    #: stays O(1); failed/poisoned cells are *always* retained — the
    #: failure manifest and report need every one of them.
    records: list[CellRecord] = field(default_factory=list)
    records_dropped: int = 0
    #: Streaming per-cell wall-time distribution — exact counters above
    #: stay exact; this adds percentiles without retaining cells.
    cell_seconds_stats: StreamingSummary = field(
        default_factory=lambda: StreamingSummary(quantiles=(0.5, 0.9, 0.99))
    )

    def note(self, record: CellRecord) -> None:
        if (
            record.status in ("failed", "poisoned")
            or len(self.records) < MAX_RETAINED_RECORDS
        ):
            self.records.append(record)
        else:
            self.records_dropped += 1
        self.cell_seconds_stats.add(record.wall_seconds)
        self.cells += 1
        self.cell_seconds += record.wall_seconds
        _M_CELLS[record.status].inc()
        _M_CELL_SECONDS.observe(record.wall_seconds)
        if record.status == "hit":
            self.cache_hits += 1
            return
        if record.status == "replayed":
            # Replayed cells were *not* looked up in the cache and were
            # *not* re-simulated: they must never count as misses or
            # simulations (they would double-book work that a previous
            # campaign already paid for).
            self.journal_replays += 1
            return
        self.cache_misses += 1
        if record.status == "computed":
            self.simulations += 1
            if record.cycles is not None:
                self.cycles_simulated += record.cycles
                _M_CYCLES.inc(record.cycles)
        else:
            # "poisoned" is a flavor of failure: it counts inside
            # ``failures`` (keeping the accounting invariant four-way)
            # with its own subset counter for the breakdown/manifest.
            self.failures += 1
            if record.status == "poisoned":
                self.poisoned += 1
        retries = max(0, record.attempts - 1)
        self.retries += retries
        if retries:
            _M_RETRIES.inc(retries)

    def snapshot(self) -> dict[str, Any]:
        """Canonical counter dict — the single source of truth that both
        :func:`repro.harness.report.render_telemetry` and the metrics
        exporters render from.

        Invariant (pinned by tests):
        ``computed + hit + replayed + failed == total``
        (``poisoned`` is a subset of ``failed``, not a fifth term).
        """
        return {
            "total": self.cells,
            "computed": self.simulations,
            "hit": self.cache_hits,
            "replayed": self.journal_replays,
            "failed": self.failures,
            "poisoned": self.poisoned,
            "misses": self.cache_misses,
            "retries": self.retries,
            "quarantined": self.quarantines,
            "worker_crashes": self.worker_crashes,
            "worker_timeouts": self.worker_timeouts,
            "workers_respawned": self.workers_respawned,
            "worker_unresponsive": self.worker_unresponsive,
            "degraded": dict(self.degraded),
            "backoff_seconds": self.backoff_seconds,
            "interrupted": self.interrupted,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "cycles_simulated": self.cycles_simulated,
            "store_trace_hits": self.store_trace_hits,
            "store_trace_misses": self.store_trace_misses,
            "store_trace_bytes": self.store_trace_bytes,
            "store_rmax_hits": self.store_rmax_hits,
            "store_rmax_misses": self.store_rmax_misses,
            "store_quarantines": self.store_quarantines,
            "workload_builds": self.workload_builds,
            "rmax_solves": self.rmax_solves,
            "steals": self.steals,
            "batches": self.batches_dispatched,
            "batched_cells": self.batched_cells,
            "stacked_cells": self.stacked_cells,
            "lane_divergences": self.lane_divergences,
            "records_dropped": self.records_dropped,
            "cell_seconds_p50": self.cell_seconds_stats.quantile(0.5),
            "cell_seconds_p90": self.cell_seconds_stats.quantile(0.9),
            "cell_seconds_p99": self.cell_seconds_stats.quantile(0.99),
        }

    def absorb_store(self, delta: dict[str, float]) -> None:
        """Fold one run's store/build/solve counter delta into telemetry.

        ``delta`` comes from :func:`repro.harness.store.store_stats_delta`
        over the run's registry snapshots — by then worker deltas have
        already been replayed into the parent registry, so each unit of
        work is counted exactly once regardless of where it executed.
        """
        self.store_trace_hits += int(delta.get("store_trace_hits", 0))
        self.store_trace_misses += int(delta.get("store_trace_misses", 0))
        self.store_trace_bytes += int(delta.get("store_trace_bytes", 0))
        self.store_rmax_hits += int(delta.get("store_rmax_hits", 0))
        self.store_rmax_misses += int(delta.get("store_rmax_misses", 0))
        self.store_quarantines += int(
            delta.get("store_quarantined_trace", 0)
            + delta.get("store_quarantined_rmax", 0)
        )
        self.workload_builds += int(delta.get("workload_builds", 0))
        self.rmax_solves += int(delta.get("rmax_solves", 0))
        self.stacked_cells += int(delta.get("stacked_cells", 0))
        self.lane_divergences += int(delta.get("lane_divergences", 0))

    def publish(self, registry=None) -> None:
        """Mirror the timing aggregates into the metrics registry.

        The count-like fields are already incremented live (in
        :meth:`note` and by the supervisor); only the engine-lifetime
        seconds, which accumulate outside any single counter event, are
        synced here as gauges.
        """
        registry = registry if registry is not None else _REG
        registry.gauge(
            "repro_exec_wall_seconds", "Engine wall-clock time"
        ).set(self.wall_seconds)
        # Per-cell seconds are NOT mirrored here: the
        # ``repro_exec_cell_seconds`` histogram already exports the sum
        # (and a second series under the same name would be invalid
        # Prometheus exposition).


@dataclass
class CellOutcome:
    """Result of running one cell through the engine."""

    cell: Any
    key: str
    value: Any | None
    status: str  # "hit" | "replayed" | "computed" | "failed" | "poisoned"
    wall_seconds: float
    attempts: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status not in ("failed", "poisoned")


# ----------------------------------------------------------------------
# Retry backoff
# ----------------------------------------------------------------------
def backoff_delay(
    key: str, attempt: int, base: float, cap: float
) -> float:
    """Exponential backoff with *deterministic* jitter.

    ``base * 2**(attempt-1)`` capped at ``cap``, scaled by a jitter
    factor in ``[0.5, 1.0)`` derived from a hash of ``(key, attempt)``
    — so concurrent retries de-synchronize, yet a re-run of the same
    campaign schedules bit-identical delays (no hidden randomness).
    """
    if base <= 0:
        return 0.0
    raw = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    jitter = 0.5 + digest[0] / 512.0
    return raw * jitter


# ----------------------------------------------------------------------
# Cost model (steal-scheduler seeding)
# ----------------------------------------------------------------------
def _cost_family(label: str) -> str:
    """The scheduling family of a cell label (its trailing component).

    ``mix[...]/untangle`` → ``untangle``; parameter overrides are
    stripped (``.../threshold{expand_fraction=0.95}`` → ``threshold``)
    so variants of one scheme share its cost history and weight;
    ``sensitivity[x]/4096`` → ``4096`` (sensitivity sizes fall through
    to the default weight, which is fine — they are mutually
    homogeneous).
    """
    family = label.rsplit("/", 1)[-1]
    return family.split("{", 1)[0]


def _family_weight(family: str) -> float:
    """Static cost seed for a family, from its scheme registration.

    Registered schemes declare their relative cost (Untangle variants
    pay monitors + Dinkelbach-style assessments; Time pays monitors;
    Static/Shared are bare simulation); non-scheme families — e.g.
    sensitivity partition sizes — take the neutral weight.
    """
    from repro.registry import scheme_cost_weight

    weight = scheme_cost_weight(family)
    return 1.0 if weight is None else weight


def runtime_hints_from_entries(
    entries: dict[str, JournalEntry]
) -> dict[Any, float]:
    """Mean computed wall-seconds by label, (family, profile), and family.

    Only ``computed`` entries count: hits/replays report ~zero wall and
    would drag an estimate toward "free". Three hint granularities are
    built from one pass:

    * exact cell label — real per-cell history, what lets the
      cost-aware chunk planner see skew *inside* one batch group (whose
      cells all share a family and profile);
    * ``(family, profile)`` — so a ``bench``-profile campaign never
      inherits stale full-profile means and misplans its chunks
      (profiles differ in workload scale by orders of magnitude);
    * bare family — legacy granularity, kept only for journal entries
      recorded before profiles were journaled (no profile field).
    """
    sums: dict[Any, list[float]] = {}
    for entry in entries.values():
        if entry.status != "computed":
            continue
        family = _cost_family(entry.label)
        sums.setdefault(entry.label, []).append(entry.wall_seconds)
        if entry.profile is not None:
            sums.setdefault((family, entry.profile), []).append(
                entry.wall_seconds
            )
        else:
            sums.setdefault(family, []).append(entry.wall_seconds)
    return {key: sum(walls) / len(walls) for key, walls in sums.items()}


def expected_cost(cell: Any, hints: dict[Any, float]) -> float:
    """Expected relative runtime of one cell, for LPT deque seeding.

    Preference order: measured journal history — the cell's own label,
    then its (family, profile), then the legacy bare family — then the
    cell's own ``cost_hint()`` (if it defines one), then the static
    family weight table. Only the *ordering* matters — an inaccurate
    estimate degrades the seeding, never correctness, and work stealing
    recovers the imbalance at run time.
    """
    family = _cost_family(cell.label)
    hint = hints.get(cell.label)
    if hint is not None:
        return hint
    profile = getattr(cell, "profile", None)
    if profile is not None:
        hint = hints.get((family, profile.name))
        if hint is not None:
            return hint
    hint = hints.get(family)
    if hint is not None:
        return hint
    own = getattr(cell, "cost_hint", None)
    if own is not None:
        return float(own())
    return _family_weight(family)


# ----------------------------------------------------------------------
# Worker entry points (must be importable for multiprocessing)
# ----------------------------------------------------------------------
def _execute_cell(
    cell: Any,
    faults: FaultPlan | None = None,
    worker_id: int | None = None,
) -> tuple[Any, float]:
    """Run one cell in the current process; returns (value, wall_seconds)."""
    if faults is not None:
        faults.on_cell_start(cell.label, worker_id)
    with obs_trace.span("cell.compute", label=cell.label, worker=worker_id):
        start = time.perf_counter()
        value = maybe_profile(cell.label, cell.execute, worker_id)
        return value, time.perf_counter() - start


def _stackable(chunk, stack: int | None) -> bool:
    """True when a chunk qualifies for lane-stacked execution.

    Requires stacking enabled, at least two cells, and every cell of
    the chunk implementing ``execute_stacked`` under one shared batch
    group. Chunks are planned group-homogeneous, so the group check is
    belt-and-braces against a stolen retry or a hand-built chunk.
    """
    if stack is None or len(chunk) < 2:
        return False
    first = chunk[0][1]
    if getattr(type(first), "execute_stacked", None) is None:
        return False
    hook = getattr(first, "batch_group", None)
    if hook is None:
        return False
    group = hook()
    for _, cell in chunk[1:]:
        if getattr(type(cell), "execute_stacked", None) is None:
            return False
        peer_hook = getattr(cell, "batch_group", None)
        if peer_hook is None or peer_hook() != group:
            return False
    return True


def _stacked_messages(chunk, faults, worker_id, stack: int):
    """Run one batch-compatible chunk as stacked lanes; yield messages.

    The whole chunk executes inside one ``execute_stacked`` call
    (``stack == 0`` auto-sizes the lane count to the chunk), then one
    result message per cell streams home in chunk order — the same
    shape the sequential path sends, so supervisor accounting is
    untouched. Per-cell wall is the chunk wall split evenly (lanes
    genuinely interleave, so no truer attribution exists); the store
    delta rides on the first message only, so absorbed totals match a
    sequential run. A lane that raised is an ``error`` message for that
    cell alone; a failure of the stacked driver itself fails every cell
    of the chunk (the supervisor's retry path then re-runs them, most
    as singletons).
    """
    cells = [cell for _, cell in chunk]
    if faults is not None:
        for cell in cells:
            faults.on_cell_start(cell.label, worker_id)
    start = time.perf_counter()
    stats_before = store_stats_snapshot()
    failure: str | None = None
    results: list[Any] = []
    with obs_trace.span(
        "chunk.stacked", cells=len(cells), first=cells[0].label, worker=worker_id
    ):
        try:
            results = maybe_profile(
                cells[0].label,
                lambda: type(cells[0]).execute_stacked(
                    cells, max_lanes=stack if stack else None
                ),
                worker_id,
            )
        except Exception as exc:
            failure = f"{type(exc).__name__}: {exc}"
    delta = store_stats_delta(stats_before, store_stats_snapshot())
    wall = (time.perf_counter() - start) / len(cells)
    for position, (index, _) in enumerate(chunk):
        cell_delta = delta if position == 0 else {}
        if failure is not None:
            yield (index, "error", failure, wall, cell_delta)
        elif isinstance(results[position], BaseException):
            exc = results[position]
            yield (
                index,
                "error",
                f"{type(exc).__name__}: {exc}",
                wall,
                cell_delta,
            )
        else:
            yield (index, "ok", results[position], wall, cell_delta)


def _chunk_messages(chunk, faults, worker_id, stack: int | None):
    """Yield one result message per cell of a chunk, stacking when able."""
    if _stackable(chunk, stack):
        yield from _stacked_messages(chunk, faults, worker_id, stack)
        return
    for index, cell in chunk:
        start = time.perf_counter()
        # Store/build/solve counters accumulate in *this* process's
        # registry; ship the per-cell delta home so the parent registry
        # (the one the exporters and telemetry read) accounts for work
        # wherever it ran.
        stats_before = store_stats_snapshot()
        try:
            value, wall = _execute_cell(cell, faults, worker_id)
            delta = store_stats_delta(stats_before, store_stats_snapshot())
            yield (index, "ok", value, wall, delta)
        except Exception as exc:  # graceful degradation
            delta = store_stats_delta(stats_before, store_stats_snapshot())
            yield (
                index,
                "error",
                f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start,
                delta,
            )


def _heartbeat_loop(
    conn: multiprocessing.connection.Connection,
    send_lock: threading.Lock,
    stop: threading.Event,
    interval: float,
) -> None:
    """Heartbeat thread body: ship the progress counter home periodically.

    Each beat is ``("heartbeat", progress_value())`` — the supervisor
    compares successive values to distinguish a *slow* cell (counter
    advancing: simulation quanta are completing) from a *hung* one
    (beats arriving with a frozen counter, or no beats at all once even
    this thread is stopped). The thread runs as a daemon and exits on
    the first failed send: a broken pipe means the supervisor is gone.

    Note the limits of the evidence: Python threads share the GIL, so a
    C extension that blocks *without releasing the GIL* also silences
    the heartbeat — which is fine, because silence is treated exactly
    like frozen progress.
    """
    while not stop.wait(interval):
        try:
            with send_lock:
                conn.send(("heartbeat", progress_value()))
        except Exception:
            return


def _worker_main(
    conn: multiprocessing.connection.Connection,
    worker_id: int,
    faults: FaultPlan | None,
    heartbeat: float | None = None,
    stack: int | None = None,
) -> None:
    """Worker loop: receive chunks of ``(index, cell)`` tasks, send back
    one result message per cell.

    Cell-major batching: a chunk's cells run back-to-back under one
    shared :func:`~repro.sim.batch.cell_scratch` arena, so the hot numpy
    buffers of the cumsum/searchsorted cores are allocated once per
    chunk instead of once per call. Results stream home *per cell* (the
    message shape is unchanged from per-cell dispatch), so supervisor
    accounting, deadlines, and retry bookkeeping see individual cells —
    and results stay bit-identical to serial execution.

    With ``stack`` set (engine ``stack_lanes``), a chunk whose cells
    all support it instead executes as stacked lanes — one interleaved
    pass over all cells (:class:`~repro.sim.batch.StackedLanes`) — and
    its per-cell messages stream home when the stack drains. The
    per-cell deadline then effectively covers the whole chunk, which is
    sound: heartbeats carry simulation progress, so slow-but-working
    stacks extend their deadline exactly like slow single cells.

    Liveness: with ``heartbeat`` set, a daemon thread interleaves
    ``("heartbeat", progress)`` tuples with the result stream (the send
    lock keeps messages whole), so the supervisor can tell slow from
    hung *mid-cell* instead of waiting out a whole chunk of deadlines.

    SIGINT is ignored so a terminal Ctrl-C reaches only the supervisor,
    which then terminates workers deliberately (after flushing the
    journal) instead of racing N KeyboardInterrupts. SIGTERM is reset
    to its default action: a forked worker inherits the supervisor's
    flag-setting handler, which would make ``Process.terminate()`` a
    no-op and force the slow SIGKILL fallback when reaping hung workers.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    send_lock = threading.Lock()
    stop_beats = threading.Event()
    if heartbeat:
        threading.Thread(
            target=_heartbeat_loop,
            args=(conn, send_lock, stop_beats, heartbeat),
            daemon=True,
            name=f"repro-heartbeat-{worker_id}",
        ).start()
    try:
        while True:
            try:
                chunk = conn.recv()
            except (EOFError, OSError):
                return
            if chunk is None:
                return
            with cell_scratch():
                for message in _chunk_messages(chunk, faults, worker_id, stack):
                    # A finished cell is progress even if the cell's own
                    # execution never beat (non-simulation cells).
                    progress_beat()
                    try:
                        with send_lock:
                            conn.send(message)
                    except Exception as exc:  # e.g. an unpicklable result
                        try:
                            with send_lock:
                                conn.send(
                                    (
                                        message[0],
                                        "error",
                                        "result not transferable: "
                                        f"{type(exc).__name__}: {exc}",
                                        message[3],
                                        message[4],
                                    )
                                )
                        except Exception:
                            return
    finally:
        stop_beats.set()


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
@dataclass
class _Chunk:
    """A run of batch-compatible cells dispatched to one worker as a unit."""

    cells: list[tuple[int, Any, str]]  # (index, cell, key)
    #: Summed expected cost — orders LPT seeding and steal-victim choice.
    cost: float


@dataclass
class _Worker:
    """Supervisor-side handle for one worker process."""

    process: Any
    conn: multiprocessing.connection.Connection
    id: int
    #: Scheduling slot (deque index); stable across respawns.
    slot: int
    #: Cells of the in-flight chunk that have not reported a result yet;
    #: ``chunk[0]`` is the cell currently executing (the deadline applies
    #: to it alone). Empty when the worker is idle.
    chunk: list[tuple[int, Any, str]] = field(default_factory=list)
    started: float = 0.0
    deadline: float | None = None
    #: When the last heartbeat (or result/dispatch) was observed.
    last_beat: float = 0.0
    #: Progress counter carried by the last heartbeat. Starts at 0 (the
    #: counter of a fresh process), so a first cell that never advances
    #: is correctly seen as frozen rather than as one unit of progress.
    last_progress: int = 0
    #: When progress was first observed frozen (None = progressing).
    stall_since: float | None = None
    #: The ``worker.unresponsive`` warning fired for the current stall.
    unresponsive_fired: bool = False


class _Supervisor:
    """Owns the worker pool for one parallel engine run.

    Unlike the former round-barrier ``Pool.apply_async`` loop, tasks are
    assigned to dedicated workers with per-task deadlines: a hung or
    crashed worker is killed and respawned immediately, its task is
    rescheduled with backoff, and every other slot keeps streaming cells
    — no failure can stall the round or leak a pool slot.

    Scheduling comes in two flavors, selected by ``engine.scheduler``:

    * ``steal`` (default): pending cells are grouped into batch-
      compatible *chunks* (cell-major batching: one worker runs a run of
      cells under a shared scratch arena) and seeded onto per-slot
      deques longest-expected-first (LPT, using journal runtime hints).
      A worker that drains its own deque steals the cheapest chunk from
      the most loaded peer, so one straggler slot cannot serialize the
      tail of a campaign.
    * ``fifo``: the legacy single global queue with per-cell dispatch,
      retained as the baseline ``benchmarks/bench_campaign.py`` measures
      the steal scheduler against.

    Either way, workers report results per *cell*, attempts/deadlines
    are booked per cell, and outcomes are bit-identical to serial
    execution. Backed-off retries always live in the global ``queue``
    and take priority over unstarted chunks.
    """

    #: How long one poll of the worker pipes blocks, seconds. Bounds
    #: both deadline-detection latency and interrupt responsiveness.
    POLL_SECONDS = 0.1

    def __init__(self, engine: "ExecutionEngine", pending):
        self.engine = engine
        self.scheduler = engine.scheduler
        self.context = multiprocessing.get_context()
        # (index, cell, key, ready_at): backed-off retries (and, under
        # the fifo scheduler, all initial work). ready_at defers retries.
        self.queue: deque[tuple[int, Any, str, float]] = deque()
        self.attempts = {index: 0 for index, _, _ in pending}
        #: Cumulative elapsed seconds per cell across all its attempts —
        #: crashed/hung/failed attempts included, so telemetry no longer
        #: undercounts failed cells as zero-cost.
        self.elapsed = {index: 0.0 for index, _, _ in pending}
        slots = min(engine.jobs, len(pending))
        self.deques: list[deque[_Chunk]] = [deque() for _ in range(slots)]
        if self.scheduler == "steal":
            self.hints = engine._runtime_hints()
            self._seed_deques(self._plan_chunks(pending))
        else:
            self.hints = {}
            self.queue.extend(
                (index, cell, key, 0.0) for index, cell, key in pending
            )
        #: Per-cell count of attempts that ended in a worker *death*
        #: (crash / deadline kill / stall kill) rather than a reported
        #: error — the poison circuit breaker's evidence.
        self.deaths = {index: 0 for index, _, _ in pending}
        # Liveness policy, derived once. A stall kill needs an explicit
        # mandate: either the engine's stall_timeout, or a per-cell
        # timeout to bound it by — heartbeats alone never license
        # killing, because cells that do not instrument progress (no
        # simulation quanta) would look permanently stalled.
        hb = engine.heartbeat
        self._stall_kill: float | None = None
        self._unresponsive_after: float | None = None
        if hb:
            if engine.stall_timeout is not None:
                self._stall_kill = engine.stall_timeout
            elif engine.timeout is not None:
                self._stall_kill = min(
                    engine.timeout, max(5.0 * hb, 2.0)
                )
            self._unresponsive_after = 3.0 * hb
            if self._stall_kill is not None:
                self._unresponsive_after = min(
                    self._unresponsive_after, 0.6 * self._stall_kill
                )
        self._next_worker_id = 0
        if (
            engine.stack_lanes is not None
            and self.context.get_start_method() == "fork"
        ):
            self._prefork_warm(pending)
        self.workers = [self._spawn(slot) for slot in range(slots)]

    def _prefork_warm(self, pending) -> None:
        """Warm shareable per-cell precompute before the workers fork.

        Cell types may expose ``prefork_warm(cells)`` to walk precompute
        that is a pure function of the cell inputs (e.g. the L1 service
        traces stacked lanes share). Doing it here, in the parent, makes
        the warmed state copy-on-write-inherited by every worker instead
        of recomputed per worker. Best-effort: a warming failure only
        forfeits the head start, never the run.
        """
        by_type: dict[type, list] = {}
        for _, cell, _ in pending:
            if getattr(type(cell), "prefork_warm", None) is not None:
                by_type.setdefault(type(cell), []).append(cell)
        for cell_type, cells in by_type.items():
            try:
                warmed = cell_type.prefork_warm(cells)
            except Exception as exc:  # noqa: BLE001 - warming is optional
                obs_trace.event(
                    "warm.failed", cell_type=cell_type.__name__, error=str(exc)
                )
            else:
                obs_trace.event(
                    "warm.prefork", cell_type=cell_type.__name__, warmed=warmed
                )

    # ------------------------------------------------------------------
    # Chunk planning and deque seeding (steal scheduler)
    # ------------------------------------------------------------------
    def _chunk_cost(self, cells) -> float:
        return sum(expected_cost(cell, self.hints) for _, cell, _ in cells)

    #: A batch group is *skewed* when its most expensive cell is hinted
    #: at more than this multiple of the group's median cell cost; the
    #: outliers then dispatch as singleton chunks.
    SKEW_FACTOR = 2.0

    def _plan_chunks(self, pending) -> list[_Chunk]:
        """Group batch-compatible cells into dispatch chunks, cost-aware.

        Cells sharing a ``batch_group()`` key are packed, in input
        order, into runs of at most ``engine.batch_cells`` cells. When
        unset, the cap auto-sizes to leave every group at least
        ``2 * slots`` chunks, so batching amortizes dispatch overhead
        without ever costing load balance (small groups — e.g. the few
        expensive Untangle cells of a mixed campaign — stay singletons).
        Cells without a ``batch_group`` hook are never chunked.

        Cost awareness: when journal-hinted runtimes inside one group
        are skewed (:attr:`SKEW_FACTOR`), the stragglers split off as
        singleton chunks instead of chunking purely by count — a chunk
        is a scheduling atom, so a straggler packed with cheap peers
        would pin them all to one worker's lap (and hand the
        stacked-lanes driver a chunk whose lanes finish wildly apart).
        Per-cell skew is only visible through per-label journal
        history; without it every cell in a group shares one estimate
        and the split never triggers.
        """
        slots = max(1, len(self.deques))
        groups: dict[Any, list] = {}
        order: list[tuple[Any, list]] = []  # plan order, groups coalesced
        for task in pending:
            hook = getattr(task[1], "batch_group", None)
            if hook is None:
                order.append((None, [task]))
                continue
            group = hook()
            if group not in groups:
                groups[group] = []
                order.append((group, groups[group]))
            groups[group].append(task)
        chunks: list[_Chunk] = []
        for group, cells in order:
            if group is None:
                cap = 1
            elif self.engine.batch_cells is not None:
                cap = min(MAX_BATCH_CELLS, self.engine.batch_cells)
            else:
                cap = max(1, min(MAX_BATCH_CELLS, len(cells) // (slots * 2)))
            stragglers, cells = self._split_skewed(group, cells)
            for task in stragglers:
                chunks.append(
                    _Chunk(cells=[task], cost=self._chunk_cost([task]))
                )
            for start in range(0, len(cells), cap):
                run = cells[start : start + cap]
                chunks.append(_Chunk(cells=run, cost=self._chunk_cost(run)))
        return chunks

    def _split_skewed(self, group, cells):
        """Partition one batch group into (stragglers, normal cells).

        Both halves preserve input order. A group is left whole unless
        its hinted max exceeds ``SKEW_FACTOR`` times its median — with
        family-level hints only (identical estimates across the group)
        that never happens, so this is exactly the lever per-label
        journal hints unlock.
        """
        if group is None or len(cells) < 2:
            return [], list(cells)
        costs = [expected_cost(cell, self.hints) for _, cell, _ in cells]
        median = sorted(costs)[len(costs) // 2]
        threshold = self.SKEW_FACTOR * median
        if median <= 0 or max(costs) <= threshold:
            return [], list(cells)
        stragglers = [t for t, c in zip(cells, costs) if c > threshold]
        normal = [t for t, c in zip(cells, costs) if c <= threshold]
        return stragglers, normal

    def _seed_deques(self, chunks: list[_Chunk]) -> None:
        """Longest-processing-time-first seeding.

        Chunks are placed, most expensive first, onto the currently
        least-loaded slot (the classic LPT greedy). Each deque therefore
        holds its chunks in non-increasing cost order: owners pop
        expensive work from the front, thieves steal cheap work from
        the back.
        """
        if not self.deques:
            return
        load = [0.0] * len(self.deques)
        for chunk in sorted(
            chunks, key=lambda chunk: chunk.cost, reverse=True
        ):
            slot = min(range(len(load)), key=lambda s: (load[s], s))
            self.deques[slot].append(chunk)
            load[slot] += chunk.cost

    # ------------------------------------------------------------------
    def _spawn(self, slot: int) -> _Worker:
        parent_conn, child_conn = self.context.Pipe()
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self.context.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker_id,
                self.engine.faults,
                self.engine.heartbeat,
                self.engine.stack_lanes,
            ),
            daemon=True,
            name=f"repro-exec-{worker_id}",
        )
        process.start()
        child_conn.close()
        return _Worker(
            process=process,
            conn=parent_conn,
            id=worker_id,
            slot=slot,
            last_beat=time.monotonic(),
        )

    def _reap(self, worker: _Worker) -> None:
        """Tear one worker down for good (terminate if still alive)."""
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
        else:
            worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass

    def _replace(self, worker: _Worker) -> None:
        """Kill a crashed/hung worker; respawn into the same slot."""
        self._reap(worker)
        self.workers.remove(worker)
        # A replacement is always useful: the failed task is about to be
        # requeued by the caller (or other tasks are still queued), and
        # spawning is cheap next to multi-second simulation cells.
        self.workers.append(self._spawn(worker.slot))
        self.engine.telemetry.workers_respawned += 1
        _M_WORKER["respawn"].inc()
        obs_trace.event("worker.respawn", worker=worker.id)

    # ------------------------------------------------------------------
    def run(self) -> Iterator[tuple[int, CellOutcome]]:
        try:
            while self._work_remaining() or any(
                w.chunk for w in self.workers
            ):
                if self.engine._interrupted:
                    raise KeyboardInterrupt
                yield from self._assign()
                yield from self._collect()
        finally:
            self._shutdown()

    def _work_remaining(self) -> bool:
        return bool(self.queue) or any(self.deques)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _next_chunk(self, slot: int, now: float):
        """The next run of cells for an idle worker, or ``None``.

        Backed-off retries (strictly older work) go first in both
        scheduler modes; then the slot's own deque, front (most
        expensive) first; then a steal from the most loaded peer.
        """
        for position, task in enumerate(self.queue):
            if task[3] <= now:
                del self.queue[position]
                index, cell, key, _ = task
                return [(index, cell, key)]
        if self.scheduler != "steal":
            return None
        own = self.deques[slot]
        if own:
            return own.popleft().cells
        return self._steal(slot)

    def _peer_load(self, slot: int) -> tuple[float, int]:
        """A slot's remaining load: summed expected chunk cost.

        Cost — not chunk count — is the victim-selection weight, so a
        peer holding one huge straggler outranks a peer holding many
        already-cheap chunks. Chunk count is only the tie-break (more
        chunks = more stealable units when costs are equal, e.g. when
        no journal history exists yet and every hint is identical).
        """
        peer = self.deques[slot]
        return (sum(chunk.cost for chunk in peer), len(peer))

    def _steal(self, slot: int):
        """Steal the cheapest chunk from the most loaded peer deque."""
        victim = None
        victim_load: tuple[float, int] = (0.0, 0)
        for other, peer in enumerate(self.deques):
            if other == slot or not peer:
                continue
            load = self._peer_load(other)
            if victim is None or load > victim_load:
                victim, victim_load = other, load
        if victim is None:
            return None
        chunk = self.deques[victim].pop()  # cheapest end
        self.engine.telemetry.steals += 1
        _M_STEALS.inc()
        obs_trace.event(
            "cell.steal",
            thief=slot,
            victim=victim,
            cells=len(chunk.cells),
            label=chunk.cells[0][1].label,
        )
        return chunk.cells

    def _assign(self) -> Iterator[tuple[int, CellOutcome]]:
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.chunk:
                continue
            cells = self._next_chunk(worker.slot, now)
            if cells is None:
                continue
            yield from self._dispatch(worker, cells)

    def _dispatch(
        self, worker: _Worker, cells
    ) -> Iterator[tuple[int, CellOutcome]]:
        """Send a chunk to an idle worker; handle a dead one in place."""
        worker.chunk = list(cells)
        self.engine.telemetry.batches_dispatched += 1
        self.engine.telemetry.batched_cells += len(cells)
        _M_BATCH_CELLS.observe(float(len(cells)))
        if len(cells) > 1:
            obs_trace.event(
                "batch.dispatch",
                worker=worker.id,
                cells=len(cells),
                first=cells[0][1].label,
            )
        self._start_cell(worker, time.monotonic())
        try:
            worker.conn.send([(index, cell) for index, cell, _ in cells])
        except (OSError, ValueError):
            yield from self._dispatch_failed(worker)

    def _start_cell(self, worker: _Worker, now: float) -> None:
        """Book the head of the worker's chunk as executing now.

        Attempts increment per *cell start*, not per chunk dispatch, so
        retry budgets are identical to per-cell dispatch; the deadline
        restarts for each cell of a chunk as its predecessor reports.
        """
        index, cell, _ = worker.chunk[0]
        self.attempts[index] += 1
        obs_trace.event(
            "cell.dispatch",
            label=cell.label,
            worker=worker.id,
            attempt=self.attempts[index],
        )
        worker.started = now
        worker.deadline = (
            now + self.engine.timeout
            if self.engine.timeout is not None
            else None
        )
        # A fresh cell gets a fresh stall clock (the dispatch itself is
        # the most recent sign of life).
        worker.last_beat = now
        worker.stall_since = None
        worker.unresponsive_fired = False

    def _dispatch_failed(
        self, worker: _Worker
    ) -> Iterator[tuple[int, CellOutcome]]:
        """``conn.send`` failed: the worker (or its pipe) is already dead.

        Handled synchronously — crash accounted exactly once, worker
        replaced, head cell retried, unstarted tail requeued — with the
        deadline cleared *before* anything else, so the deadline sweep
        can never also book a ``worker.timeout`` for a cell the worker
        never received.
        """
        cells = worker.chunk
        worker.chunk = []
        worker.deadline = None
        index, cell, key = cells[0]
        self.elapsed[index] += time.monotonic() - worker.started
        self.engine.telemetry.worker_crashes += 1
        _M_WORKER["crash"].inc()
        obs_trace.event(
            "worker.crash",
            worker=worker.id,
            label=cell.label,
            exitcode=worker.process.exitcode,
        )
        self._replace(worker)
        self._requeue_unstarted(worker.slot, cells[1:])
        yield from self._attempt_failed(
            index, cell, key, "worker died before dispatch", worker_died=True
        )

    def _requeue_unstarted(self, slot: int, cells) -> None:
        """Return a dead chunk's not-yet-started cells to the schedule.

        These cells never incremented ``attempts`` and never reported a
        result, so they come back unpenalized: ahead of other pending
        work (they were next in line) and without consuming retries.
        """
        if not cells:
            return
        cells = list(cells)
        if self.scheduler == "steal":
            self.deques[slot].appendleft(
                _Chunk(cells=cells, cost=self._chunk_cost(cells))
            )
        else:
            self.queue.extendleft(
                (index, cell, key, 0.0)
                for index, cell, key in reversed(cells)
            )

    def _collect(self) -> Iterator[tuple[int, CellOutcome]]:
        handles: dict[Any, _Worker] = {}
        for worker in self.workers:
            handles[worker.conn] = worker
            handles[worker.process.sentinel] = worker
        ready = multiprocessing.connection.wait(
            list(handles), timeout=self.POLL_SECONDS
        )
        serviced: set[int] = set()
        for handle in ready:
            worker = handles[handle]
            if worker.id in serviced or worker not in self.workers:
                continue
            serviced.add(worker.id)
            yield from self._service(worker)
        now = time.monotonic()
        for worker in list(self.workers):
            if (
                worker.chunk
                and worker.deadline is not None
                and now > worker.deadline
                and worker.id not in serviced
            ):
                yield from self._expire(worker)
        if self._unresponsive_after is not None:
            yield from self._stall_sweep(now, serviced)

    def _stalled_for(self, worker: _Worker, now: float) -> float:
        """Seconds of stall evidence against a worker's current cell.

        Two independent signals, strongest wins: the progress counter
        has been frozen across heartbeats since ``stall_since``, or the
        pipe has been *silent* well past the beat interval (the process
        is stopped, wedged in a non-GIL-releasing call, or its beat
        thread is dead) — silence only starts counting once it exceeds
        two intervals, so ordinary scheduling jitter never registers.
        """
        frozen = (
            now - worker.stall_since if worker.stall_since is not None else 0.0
        )
        silent = now - worker.last_beat
        if silent <= 2.0 * (self.engine.heartbeat or 0.0):
            silent = 0.0
        return max(frozen, silent)

    def _stall_sweep(
        self, now: float, serviced: set[int]
    ) -> Iterator[tuple[int, CellOutcome]]:
        """Escalate workers whose heartbeats show no progress.

        First ``worker.unresponsive`` — an early warning fired well
        before any kill, so operators watching the trace see a hang
        forming instead of discovering it a full deadline later. Then,
        if stall kills are licensed (see ``__init__``), the worker is
        killed at ``_stall_kill`` seconds of evidence: a chunk of N
        cells no longer needs N deadlines to declare a dead worker.
        """
        for worker in list(self.workers):
            if not worker.chunk or worker.id in serviced:
                continue
            if worker not in self.workers:
                continue
            stalled = self._stalled_for(worker, now)
            if (
                not worker.unresponsive_fired
                and stalled >= self._unresponsive_after
            ):
                worker.unresponsive_fired = True
                self.engine.telemetry.worker_unresponsive += 1
                _M_WORKER["unresponsive"].inc()
                obs_trace.event(
                    "worker.unresponsive",
                    worker=worker.id,
                    label=worker.chunk[0][1].label,
                    stalled_seconds=round(stalled, 3),
                    progress=worker.last_progress,
                )
            if self._stall_kill is not None and stalled >= self._stall_kill:
                yield from self._stall_expire(worker, stalled)

    def _stall_expire(
        self, worker: _Worker, stalled: float
    ) -> Iterator[tuple[int, CellOutcome]]:
        """Kill a worker whose cell stalled past the stall deadline."""
        cells = worker.chunk
        worker.chunk = []
        index, cell, key = cells[0]
        self.elapsed[index] += time.monotonic() - worker.started
        self.engine.telemetry.worker_timeouts += 1
        _M_WORKER["timeout"].inc()
        obs_trace.event(
            "worker.stall-kill",
            worker=worker.id,
            label=cell.label,
            stalled_seconds=round(stalled, 3),
        )
        error = (
            f"no progress for {stalled:.1f}s despite heartbeats "
            "(worker killed)"
        )
        self._replace(worker)
        self._requeue_unstarted(worker.slot, cells[1:])
        yield from self._attempt_failed(
            index, cell, key, error, worker_died=True
        )

    def _note_beat(self, worker: _Worker, progress: int) -> None:
        """Fold one heartbeat into the worker's liveness state.

        Advancing progress is proof of life: it clears the stall clock
        and — when a per-cell timeout is set — extends the deadline, so
        the timeout bounds *inactivity* rather than total runtime and a
        slow-but-working cell is never killed mid-computation. A frozen
        counter starts the stall clock; the sweep in :meth:`_collect`
        escalates it to a warning and (policy permitting) a kill.
        """
        now = time.monotonic()
        worker.last_beat = now
        if progress > worker.last_progress:
            worker.last_progress = progress
            worker.stall_since = None
            worker.unresponsive_fired = False
            if worker.chunk and self.engine.timeout is not None:
                worker.deadline = now + self.engine.timeout
        elif worker.stall_since is None:
            worker.stall_since = now

    def _service(self, worker: _Worker) -> Iterator[tuple[int, CellOutcome]]:
        """Handle a worker whose pipe or sentinel became ready.

        Heartbeats are drained greedily (they only update liveness
        state); at most one *result* is consumed per call, preserving
        the one-result-per-service accounting the rest of the
        supervisor is built around.
        """
        message = None
        try:
            while worker.conn.poll():
                received = worker.conn.recv()
                if (
                    isinstance(received, tuple)
                    and received
                    and received[0] == "heartbeat"
                ):
                    self._note_beat(worker, received[1])
                    continue
                message = received
                break
        except (EOFError, OSError):
            message = None
        if message is not None:
            index, status, payload, wall, stats_delta = message
            apply_store_stats_delta(stats_delta)
            assert worker.chunk and worker.chunk[0][0] == index
            _, cell, key = worker.chunk.pop(0)
            self.elapsed[index] += wall
            if worker.chunk:
                # The worker moved on to the chunk's next cell the moment
                # it sent this result: restart attempts/deadline for it.
                self._start_cell(worker, time.monotonic())
            else:
                worker.deadline = None
            if status == "ok":
                yield index, CellOutcome(
                    cell=cell,
                    key=key,
                    value=payload,
                    status="computed",
                    wall_seconds=self.elapsed[index],
                    attempts=self.attempts[index],
                    error=None,
                )
            else:
                yield from self._attempt_failed(index, cell, key, payload)
            return
        if worker.process.is_alive():
            return  # spurious wakeup
        if not worker.chunk:
            # An idle worker died (infant mortality): just replace it.
            self._replace(worker)
            return
        cells = worker.chunk
        worker.chunk = []
        index, cell, key = cells[0]
        self.elapsed[index] += time.monotonic() - worker.started
        self.engine.telemetry.worker_crashes += 1
        _M_WORKER["crash"].inc()
        obs_trace.event(
            "worker.crash",
            worker=worker.id,
            label=cell.label,
            exitcode=worker.process.exitcode,
        )
        error = f"worker crashed (exit code {worker.process.exitcode})"
        self._replace(worker)
        self._requeue_unstarted(worker.slot, cells[1:])
        yield from self._attempt_failed(
            index, cell, key, error, worker_died=True
        )

    def _expire(self, worker: _Worker) -> Iterator[tuple[int, CellOutcome]]:
        """Kill a worker that blew the head cell's deadline; retry it."""
        assert worker.chunk
        cells = worker.chunk
        worker.chunk = []
        index, cell, key = cells[0]
        self.elapsed[index] += time.monotonic() - worker.started
        self.engine.telemetry.worker_timeouts += 1
        _M_WORKER["timeout"].inc()
        obs_trace.event(
            "worker.timeout",
            worker=worker.id,
            label=cell.label,
            timeout=self.engine.timeout,
        )
        error = f"timeout after {self.engine.timeout:.1f}s (worker killed)"
        self._replace(worker)
        self._requeue_unstarted(worker.slot, cells[1:])
        yield from self._attempt_failed(
            index, cell, key, error, worker_died=True
        )

    def _attempt_failed(
        self,
        index: int,
        cell: Any,
        key: str,
        error: str,
        *,
        worker_died: bool = False,
    ) -> Iterator[tuple[int, CellOutcome]]:
        """Book one failed attempt: retry with backoff, or give up.

        ``worker_died`` marks attempts that took their worker down with
        them (crash, deadline kill, stall kill). A cell whose *every*
        attempt killed a worker is quarantined as ``poisoned`` rather
        than merely ``failed``: the evidence says retrying it again
        would only shoot more workers, so the circuit breaker trips,
        the rest of the campaign completes, and the journal entry
        ensures a ``--resume`` re-attempts exactly this cell.
        """
        if worker_died:
            self.deaths[index] += 1
        if self.attempts[index] <= self.engine.retries:
            delay = backoff_delay(
                key,
                self.attempts[index],
                self.engine.backoff_base,
                self.engine.backoff_cap,
            )
            self.engine.telemetry.backoff_seconds += delay
            _M_BACKOFF.inc(delay)
            obs_trace.event(
                "cell.retry",
                label=cell.label,
                attempt=self.attempts[index],
                delay=delay,
                error=error,
            )
            self.queue.append((index, cell, key, time.monotonic() + delay))
            return
        poisoned = (
            self.deaths[index] > 0
            and self.deaths[index] == self.attempts[index]
        )
        if poisoned:
            obs_trace.event(
                "cell.poisoned",
                label=cell.label,
                attempts=self.attempts[index],
                error=error,
            )
        yield index, CellOutcome(
            cell=cell,
            key=key,
            value=None,
            status="poisoned" if poisoned else "failed",
            wall_seconds=self.elapsed[index],
            attempts=self.attempts[index],
            error=error,
        )

    def _shutdown(self) -> None:
        for worker in self.workers:
            if not worker.chunk and worker.process.is_alive():
                try:
                    worker.conn.send(None)  # polite stop for idle workers
                except (OSError, ValueError):
                    pass
            else:
                worker.process.terminate()
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers = []


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ExecutionEngine:
    """Fan simulation cells out over a supervised process pool.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (the default) executes serially in the
        calling process — the debugging fallback — but still consults
        the cache and journal. Results are bit-identical either way.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    timeout:
        Per-cell deadline in seconds (parallel mode only: a serial run
        cannot preempt the simulation it is executing). A worker past
        its deadline is killed and respawned. ``None`` waits forever.
        With heartbeats on, the deadline is *extended* whenever a beat
        shows advancing progress: it bounds inactivity, not runtime, so
        slow-but-working cells survive while hung ones die early.
    heartbeat:
        Interval in seconds of worker liveness heartbeats (default 1).
        Each beat carries the worker's progress counter (advanced per
        simulation quantum and per finished cell), letting the
        supervisor distinguish slow from hung mid-chunk: frozen
        progress fires a ``worker.unresponsive`` warning after ~3
        intervals, and — when a ``timeout`` or ``stall_timeout``
        licenses killing — a stall kill well before a chunk of N cells
        would burn N deadlines. ``0``/``None`` disables heartbeats.
    stall_timeout:
        Seconds of frozen progress after which a stalled worker is
        killed (requires ``heartbeat``). Defaults to
        ``min(timeout, max(5 * heartbeat, 2.0))`` when a timeout is
        set; without either, stalls only warn — heartbeats alone never
        license killing, because cells that do not instrument progress
        would look permanently stalled.
    retries:
        How many times a failed, crashed, or timed-out cell is
        re-attempted (default one retry).
    backoff_base / backoff_cap:
        Exponential-backoff schedule for those retries: attempt ``n``
        is delayed ``base * 2**(n-1)`` seconds (capped), with
        deterministic jitter — see :func:`backoff_delay`.
    journal:
        Optional :class:`RunJournal`; every finished cell is durably
        appended before being reported.
    resume:
        Replay journaled outcomes instead of re-running them; only
        cells absent from (or failed in) the journal execute.
    faults:
        Optional :class:`FaultPlan` for chaos testing.
    progress:
        Optional callback receiving one structured line per finished
        cell, e.g. ``print`` or a logger method.
    store:
        Optional :class:`~repro.harness.store.PrecomputeStore`. Before
        cells fan out, every distinct artifact the pending cells declare
        via ``store_needs()`` is precomputed once (``store.populate``,
        traced as a ``store.populate`` span); workers then attach
        zero-copy instead of regenerating. The store is torn down
        (shared-memory segments unlinked) when the run exits — the
        SIGINT path included. ``None`` disables the layer; results are
        bit-identical either way. Independent of ``cache``: the *result*
        cache memoizes finished cells, the store memoizes the expensive
        *inputs* of cells that do run.
    scheduler:
        ``"steal"`` (default) assigns cells to per-worker deques seeded
        longest-expected-first and lets idle workers steal from the most
        loaded peer; ``"fifo"`` is the legacy single global queue with
        per-cell dispatch. Results are bit-identical either way — only
        the order and placement of work differ.
    batch_cells:
        Cells per dispatched chunk under the steal scheduler. ``None``
        or ``0`` auto-sizes per batch group (see
        ``_Supervisor._plan_chunks``); ``1`` forces per-cell dispatch;
        larger values cap at :data:`MAX_BATCH_CELLS`.
    stack_lanes:
        Lane-stacked multi-cell execution
        (:class:`~repro.sim.batch.StackedLanes`). ``None`` (default)
        runs each chunk's cells sequentially; ``0`` stacks every
        batch-compatible chunk with lane count auto-sized to the chunk;
        ``K >= 1`` caps each stack at K lanes. Stacking applies only to
        cells that implement ``execute_stacked`` and share a batch
        group — anything else silently falls back to the sequential
        path. Results are bit-identical either way (the stacked cumsum
        performs the same per-lane float chain; see
        ``docs/performance.md`` layer 4).
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        *,
        timeout: float | None = None,
        heartbeat: float | None = 1.0,
        stall_timeout: float | None = None,
        retries: int = 1,
        backoff_base: float = 0.05,
        backoff_cap: float = 30.0,
        journal: RunJournal | None = None,
        resume: bool = False,
        faults: FaultPlan | None = None,
        progress: Callable[[str], None] | None = None,
        store: PrecomputeStore | None = None,
        scheduler: str = "steal",
        batch_cells: int | None = None,
        stack_lanes: int | None = None,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if heartbeat is not None and heartbeat < 0:
            raise ConfigurationError("heartbeat must be >= 0")
        heartbeat = heartbeat or None  # 0 disables, like REPRO_HEARTBEAT=0
        if stall_timeout is not None and stall_timeout <= 0:
            raise ConfigurationError("stall_timeout must be positive")
        if stall_timeout is not None and heartbeat is None:
            raise ConfigurationError(
                "stall_timeout requires heartbeats (heartbeat > 0)"
            )
        if backoff_base < 0 or backoff_cap < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        if scheduler not in SCHEDULERS:
            raise ConfigurationError(
                f"unknown scheduler {scheduler!r}; accepted: "
                + ", ".join(SCHEDULERS)
            )
        if batch_cells is not None and batch_cells < 0:
            raise ConfigurationError("batch_cells must be >= 0")
        if stack_lanes is not None and stack_lanes < 0:
            raise ConfigurationError("stack_lanes must be >= 0")
        self.jobs = jobs
        self.scheduler = scheduler
        #: ``None`` means auto-size per batch group; 0 normalizes to it.
        self.batch_cells = batch_cells if batch_cells else None
        #: ``None`` = stacking off; 0 = auto lanes; K >= 1 = lane cap.
        self.stack_lanes = stack_lanes
        self.cache = cache
        self.timeout = timeout
        self.heartbeat = heartbeat
        self.stall_timeout = stall_timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.journal = journal
        self.resume = resume
        self.faults = faults
        self.progress = progress
        self.store = store
        self.telemetry = EngineTelemetry()
        #: Path of the failure manifest rendered by the last run, if any.
        self.manifest_path: Path | None = None
        self._interrupted = False
        self._serial_mode = True
        self._campaign: str | None = None
        self._old_handlers: dict[int, Any] = {}
        #: Finished cells whose journal record is not yet fsync'd
        #: (group commit): the ack — the progress line that marks a
        #: cell resume-skippable — is held until its sequence number is
        #: durable. (outcome, done, total, seq), FIFO by seq.
        self._pending_acks: deque[tuple[CellOutcome, int, int, int]] = deque()

    # ------------------------------------------------------------------
    # Signal handling (graceful shutdown)
    # ------------------------------------------------------------------
    def _install_signals(self) -> None:
        self._interrupted = False
        self._old_handlers = {}
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers[signum] = signal.signal(
                    signum, self._on_signal
                )
            except (ValueError, OSError):
                pass

    def _restore_signals(self) -> None:
        for signum, handler in self._old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        self._old_handlers = {}

    def _on_signal(self, signum, frame) -> None:
        if self._interrupted:
            # Second signal: the user means it — die with default action.
            try:
                signal.signal(signum, signal.SIG_DFL)
            except (ValueError, OSError):
                pass
            os.kill(os.getpid(), signum)
            return
        self._interrupted = True
        if self._serial_mode:
            # Serial execution has no supervisor loop polling the flag;
            # unwind the in-flight cell now (run() converts this to a
            # clean CampaignInterrupted after flushing state).
            raise KeyboardInterrupt

    # ------------------------------------------------------------------
    def _emit(self, outcome: CellOutcome, done: int, total: int) -> None:
        if self.progress is None:
            return
        cycles = outcome.cell.cycles_of(outcome.value) if outcome.ok else None
        parts = [
            f"[exec {done}/{total}]",
            outcome.cell.label,
            f"status={outcome.status}",
            f"wall={outcome.wall_seconds:.2f}s",
        ]
        if cycles is not None:
            parts.append(f"cycles={cycles}")
        if outcome.attempts > 1:
            parts.append(f"attempts={outcome.attempts}")
        if outcome.error:
            parts.append(f"error={outcome.error}")
        self.progress(" ".join(parts))

    def _degrade(self, subsystem: str, error: Exception) -> None:
        """Downgrade one I/O subsystem after a write failure.

        A full or failing disk under the journal, result cache, or
        precompute store must cost *durability* (no resume, no memoized
        results, no shared inputs), never the campaign itself — hours
        of surviving simulation work would be lost to an error in a
        bookkeeping layer. The first failure per subsystem is recorded
        in telemetry (``degraded:`` lines), metrics
        (``repro_degraded_total``), the trace (``degraded`` event and
        an ``engine.run`` span attribute), and the progress stream;
        subsequent writes to that subsystem are skipped.
        """
        if subsystem in self.telemetry.degraded:
            return
        detail = f"{type(error).__name__}: {error}"
        self.telemetry.degraded[subsystem] = detail
        _M_DEGRADED[subsystem].inc()
        obs_trace.event("degraded", subsystem=subsystem, error=detail)
        consequence = {
            "journal": "campaign continues WITHOUT crash recovery "
            "(--resume will re-run cells finished from here on)",
            "cache": "campaign continues compute-only "
            "(results from here on are not memoized)",
            "store": "campaign continues compute-only "
            "(workers rebuild inputs instead of attaching)",
        }[subsystem]
        if self.progress is not None:
            self.progress(f"[exec] degraded: {subsystem} — {detail}; {consequence}")

    def _check_io(self, subsystem: str) -> None:
        """Raise any injected I/O fault armed for ``subsystem``."""
        if self.faults is not None:
            self.faults.check_io(subsystem)

    def _finish(
        self, outcome: CellOutcome, done: int, total: int
    ) -> CellOutcome:
        cycles = (
            outcome.cell.cycles_of(outcome.value)
            if outcome.status == "computed"
            else None
        )
        self.telemetry.note(
            CellRecord(
                label=outcome.cell.label,
                status=outcome.status,
                wall_seconds=outcome.wall_seconds,
                attempts=outcome.attempts,
                cycles=cycles,
                error=outcome.error,
            )
        )
        if (
            outcome.status == "computed"
            and self.cache is not None
            and "cache" not in self.telemetry.degraded
        ):
            try:
                self._check_io("cache")
                self.cache.put(
                    outcome.key,
                    {
                        "cell": outcome.cell.cache_token(),
                        "value": outcome.cell.encode(outcome.value),
                        "wall_seconds": outcome.wall_seconds,
                    },
                )
            except OSError as exc:
                self._degrade("cache", exc)
            else:
                if self.faults is not None and self.faults.should_corrupt(
                    outcome.cell.label
                ):
                    self.cache.corrupt_entry(outcome.key)
        seq: int | None = None
        if (
            self.journal is not None
            and outcome.status != "replayed"
            and "journal" not in self.telemetry.degraded
        ):
            try:
                self._check_io("journal")
                seq = self.journal.record(
                    JournalEntry(
                        key=outcome.key,
                        label=outcome.cell.label,
                        status=outcome.status,
                        wall_seconds=outcome.wall_seconds,
                        attempts=outcome.attempts,
                        campaign=self._campaign,
                        value=(
                            outcome.cell.encode(outcome.value)
                            if outcome.ok
                            else None
                        ),
                        error=outcome.error,
                        profile=getattr(
                            getattr(outcome.cell, "profile", None), "name", None
                        ),
                    )
                )
            except (OSError, JournalError) as exc:
                self._degrade("journal", exc)
                # Durability is waived from here on; release any held
                # acks — the lines were honest when their cells ran.
                self._drain_acks(force=True)
        if seq is not None:
            # Ack-after-fsync: the progress line (the ack that marks
            # this cell done and resume-skippable) waits for the
            # group commit covering its journal record. With the
            # default batch of 1 the record is already durable and the
            # ack is emitted immediately, as before.
            self._pending_acks.append((outcome, done, total, seq))
            self._drain_acks()
        else:
            self._drain_acks(force=self.journal is None)
            self._emit(outcome, done, total)
        return outcome

    def _drain_acks(self, force: bool = False) -> None:
        """Emit held progress lines whose journal records are durable.

        ``force=True`` (teardown after a final flush, or journal
        degradation) releases everything: at that point either the
        records are on disk or durability is no longer promised.
        """
        if not self._pending_acks:
            return
        durable = self.journal.durable_seq if self.journal is not None else 0
        while self._pending_acks:
            outcome, done, total, seq = self._pending_acks[0]
            if not force and seq > durable:
                break
            self._pending_acks.popleft()
            self._emit(outcome, done, total)

    def _replay(self, cell: Any, key: str, entry: JournalEntry) -> Any | None:
        """Decode a journaled result, or ``None`` if it is unusable."""
        if not entry.ok or entry.value is None:
            return None
        try:
            return cell.decode(entry.value)
        except Exception:
            return None

    def _runtime_hints(self) -> dict[Any, float]:
        """Runtime estimates from journal history, if any (per label,
        per (family, profile), and legacy per family).

        Feeds the steal scheduler's LPT seeding; an empty dict (no
        journal, fresh journal, unreadable journal) falls back to the
        static family weights — scheduling quality degrades, never
        correctness.
        """
        if self.journal is None:
            return {}
        try:
            return runtime_hints_from_entries(self.journal.load())
        except Exception:
            return {}

    # ------------------------------------------------------------------
    # Failure manifest
    # ------------------------------------------------------------------
    def _manifest_target(self) -> Path | None:
        if self.journal is not None:
            return Path(self.journal.path).parent / MANIFEST_NAME
        if self.cache is not None:
            return Path(self.cache.directory) / MANIFEST_NAME
        return None

    def _write_manifest(
        self, outcomes: list[CellOutcome | None], total: int
    ) -> None:
        """Render ``failures.json`` next to the journal after a run.

        Written when any cell ended ``failed``/``poisoned`` (and on a
        fully clean run any stale manifest from a previous campaign is
        removed, so its presence is a reliable signal). Interrupted
        runs skip it: their story is the journal plus the resume hint.
        The write is atomic and failure-tolerant — a manifest must
        never be able to take down the campaign it reports on.
        """
        target = self._manifest_target()
        if target is None:
            return
        failing = [o for o in outcomes if o is not None and not o.ok]
        if not failing:
            try:
                target.unlink()
            except OSError:
                pass
            self.manifest_path = None
            return
        manifest = {
            "format": MANIFEST_FORMAT_VERSION,
            "campaign": self._campaign,
            "total": total,
            "failed": sum(1 for o in failing if o.status == "failed"),
            "poisoned": sum(1 for o in failing if o.status == "poisoned"),
            "degraded": dict(self.telemetry.degraded),
            "cells": [
                {
                    "label": o.cell.label,
                    "key": o.key,
                    "status": o.status,
                    "attempts": o.attempts,
                    "wall_seconds": o.wall_seconds,
                    "error": o.error,
                }
                for o in failing
            ],
            "resume": (
                "re-run with --resume (or REPRO_RESUME=1) to re-attempt "
                "exactly these cells"
                if self.journal is not None
                else "no journal attached; a re-run re-attempts uncached cells"
            ),
        }
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=target.parent, prefix=".failures-", suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w") as handle:
                    json.dump(manifest, handle, indent=2)
                os.replace(tmp, target)
            except OSError:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except OSError:
            return
        self.manifest_path = target
        obs_trace.event(
            "manifest.written",
            path=str(target),
            failed=manifest["failed"],
            poisoned=manifest["poisoned"],
        )

    # ------------------------------------------------------------------
    def run(
        self, cells: Sequence[Any], *, campaign: str | None = None
    ) -> list[CellOutcome]:
        """Execute every cell; outcomes come back in input order.

        On SIGINT/SIGTERM the run shuts down cleanly — journal flushed,
        workers terminated — and raises
        :class:`~repro.errors.CampaignInterrupted` carrying the
        outcomes that completed.
        """
        start = time.perf_counter()
        total = len(cells)
        outcomes: list[CellOutcome | None] = [None] * total
        done = 0
        self._campaign = campaign
        self._pending_acks.clear()
        if self.journal is not None and self.journal.faults is None:
            # The group-commit crash window (journal-batch-crash) fires
            # inside the journal's flush; hand it this run's plan.
            self.journal.faults = self.faults
        run_span = obs_trace.span(
            "engine.run",
            campaign=campaign,
            jobs=self.jobs,
            cells=total,
            scheduler=self.scheduler,
        )
        run_span.__enter__()
        journaled = (
            self.journal.load()
            if (self.journal is not None and self.resume)
            else {}
        )
        quarantined_before = self.cache.quarantined if self.cache else 0
        stats_before = store_stats_snapshot()
        reset_claim()  # each campaign gets one REPRO_PROFILE capture
        # Startup hygiene: reclaim shm segments and fault-state dirs a
        # SIGKILL'd previous run could not tear down (owner-PID probed,
        # so concurrent live campaigns are never touched).
        reap_orphans()
        self.manifest_path = None
        self._install_signals()
        try:
            pending: list[tuple[int, Any, str]] = []
            for index, cell in enumerate(cells):
                key = cell_key(cell)
                entry = journaled.get(key)
                if entry is not None:
                    value = self._replay(cell, key, entry)
                    if value is not None:
                        done += 1
                        with obs_trace.span("cell.replayed", label=cell.label):
                            outcomes[index] = self._finish(
                                CellOutcome(
                                    cell=cell,
                                    key=key,
                                    value=value,
                                    status="replayed",
                                    wall_seconds=0.0,
                                    attempts=0,
                                ),
                                done,
                                total,
                            )
                        continue
                payload = self.cache.get(key) if self.cache is not None else None
                if payload is not None:
                    done += 1
                    with obs_trace.span("cell.hit", label=cell.label):
                        outcomes[index] = self._finish(
                            CellOutcome(
                                cell=cell,
                                key=key,
                                value=cell.decode(payload["value"]),
                                status="hit",
                                wall_seconds=0.0,
                                attempts=0,
                            ),
                            done,
                            total,
                        )
                else:
                    pending.append((index, cell, key))

            if pending and self.store is not None:
                # Populate-before-fan-out: every distinct artifact the
                # pending cells declare is computed exactly once here,
                # then served zero-copy to serial cells, forked workers
                # (inherited mapping), and spawned/respawned workers
                # (reattach via the exported environment). An I/O error
                # (full/failing disk) downgrades the run to compute-only
                # — workers rebuild inputs — instead of aborting it.
                try:
                    self._check_io("store")
                    set_active_store(self.store)
                    self.store.export_env()
                    needs: list[tuple] = []
                    for _, cell, _ in pending:
                        hook = getattr(cell, "store_needs", None)
                        if hook is not None:
                            needs.extend(hook())
                    if needs:
                        with obs_trace.span(
                            "store.populate",
                            store=self.store.describe(),
                            needs=len(needs),
                        ) as populate_span:
                            ensured = self.store.populate(
                                needs, jobs=self.jobs
                            )
                            populate_span.set(distinct=ensured)
                except OSError as exc:
                    self._degrade("store", exc)
                    # Detach so neither this process nor any (re)spawned
                    # worker keeps hitting the failing backend.
                    clear_active_store()
                    os.environ.pop(STORE_DIR_ENV, None)
                    os.environ.pop(STORE_SHM_ENV, None)

            if pending:
                if self.jobs == 1:
                    self._serial_mode = True
                    runner = self._run_serial(pending)
                else:
                    self._serial_mode = False
                    runner = _Supervisor(self, pending).run()
                for index, outcome in runner:
                    done += 1
                    outcomes[index] = self._finish(outcome, done, total)
        except KeyboardInterrupt:
            self.telemetry.interrupted = True
            completed = [o for o in outcomes if o is not None]
            journal_path = self.journal.path if self.journal else None
            hint = (
                f"campaign interrupted with {done}/{total} cells finished"
            )
            if journal_path is not None:
                hint += (
                    f"; completed cells are journaled at {journal_path} — "
                    "re-run with --resume (or REPRO_RESUME=1) to finish "
                    "without re-simulating them"
                )
            raise CampaignInterrupted(
                hint, outcomes=completed, journal_path=journal_path
            ) from None
        finally:
            self._restore_signals()
            self._serial_mode = True
            if (
                self.journal is not None
                and "journal" not in self.telemetry.degraded
            ):
                # Commit any partial group-commit batch before acking:
                # every progress line ever emitted stays backed by an
                # fsync'd record, even for the tail of the campaign.
                try:
                    self.journal.flush()
                except (OSError, JournalError) as exc:
                    self._degrade("journal", exc)
            self._drain_acks(force=True)
            if self.cache is not None:
                # Persist pack sidecar indexes and drop descriptors so
                # a campaign never leaks fds across runs.
                self.cache.release_handles()
            if not self.telemetry.interrupted:
                # Interrupted runs tell their story via the journal +
                # resume hint; completed runs with failures render the
                # failure manifest (and clean runs remove a stale one).
                self._write_manifest(outcomes, total)
            self._campaign = None
            # One-shot chaos state is per-run: drop the auto-created
            # fault-state directory (recreated if this plan runs again).
            release_fault_state(self.faults)
            if self.cache is not None:
                self.telemetry.quarantines += (
                    self.cache.quarantined - quarantined_before
                )
            # One run-level registry delta: populate + serial cells +
            # worker deltas (already replayed into this registry by
            # _service), each counted exactly once.
            self.telemetry.absorb_store(
                store_stats_delta(stats_before, store_stats_snapshot())
            )
            if self.store is not None:
                # Teardown on every exit path — SIGINT included — so no
                # /dev/shm segment outlives the run.
                self.store.release()
                clear_active_store()
                if self.store.directory is None:
                    os.environ.pop(STORE_SHM_ENV, None)
            self.telemetry.wall_seconds += time.perf_counter() - start
            self.telemetry.publish()
            snap = self.telemetry.snapshot()
            run_span.set(
                done=done,
                computed=snap["computed"],
                hit=snap["hit"],
                replayed=snap["replayed"],
                failed=snap["failed"],
                poisoned=snap["poisoned"],
                degraded=sorted(self.telemetry.degraded),
                interrupted=snap["interrupted"],
                store_trace_hits=snap["store_trace_hits"],
                store_trace_misses=snap["store_trace_misses"],
                store_trace_bytes=snap["store_trace_bytes"],
            )
            run_span.__exit__(None, None, None)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_serial(self, pending):
        # One scratch arena for the whole serial run: the serial path is
        # effectively a single maximal chunk, so it amortizes the hot
        # numpy buffers exactly like a batched worker does.
        with cell_scratch():
            stacked: dict[int, tuple[Any, float]] = {}
            if self.stack_lanes is not None:
                stacked = self._stack_serial(pending)
            for index, cell, key in pending:
                if self._interrupted:
                    raise KeyboardInterrupt
                if index in stacked:
                    value, wall = stacked[index]
                    yield index, CellOutcome(
                        cell=cell,
                        key=key,
                        value=value,
                        status="computed",
                        wall_seconds=wall,
                        attempts=1,
                        error=None,
                    )
                    continue
                attempts = 0
                error: str | None = None
                # Accumulated *execution* time across attempts. Backoff
                # sleeps are excluded, matching the supervised parallel
                # path (which books only real worker time) — a retried
                # serial cell used to report wall_seconds inflated by
                # its own backoff delays.
                elapsed = 0.0
                value = None
                status = "failed"
                while attempts <= self.retries:
                    attempts += 1
                    attempt_start = time.perf_counter()
                    try:
                        value, wall = _execute_cell(cell, self.faults)
                        elapsed += wall
                        status = "computed"
                        error = None
                        break
                    except KeyboardInterrupt:
                        raise
                    except Exception as exc:  # graceful degradation
                        elapsed += time.perf_counter() - attempt_start
                        error = f"{type(exc).__name__}: {exc}"
                        if attempts <= self.retries:
                            delay = backoff_delay(
                                key,
                                attempts,
                                self.backoff_base,
                                self.backoff_cap,
                            )
                            self.telemetry.backoff_seconds += delay
                            _M_BACKOFF.inc(delay)
                            obs_trace.event(
                                "cell.retry",
                                label=cell.label,
                                attempt=attempts,
                                delay=delay,
                                error=error,
                            )
                            if delay:
                                time.sleep(delay)
                yield index, CellOutcome(
                    cell=cell,
                    key=key,
                    value=value,
                    status=status,
                    wall_seconds=elapsed,
                    attempts=attempts,
                    error=error,
                )

    def _stack_serial(self, pending) -> dict[int, tuple[Any, float]]:
        """Pre-execute stackable pending cells as stacked-lanes groups.

        Groups cells by ``batch_group()`` (cells lacking the hooks stay
        sequential), runs each group of two or more through
        ``execute_stacked`` — lane count capped at ``stack_lanes`` when
        nonzero — and returns ``{index: (value, wall)}`` for the lanes
        that succeeded. Per-cell wall is the group wall split evenly,
        matching the parallel workers' attribution. A lane that raised
        is simply omitted, and a failure of the whole group omits every
        member: the sequential loop then re-runs those cells from
        scratch with their full retry budget, so stacking never costs
        fault isolation.
        """
        groups: dict[tuple, list[tuple[int, Any]]] = {}
        for index, cell, _ in pending:
            if getattr(type(cell), "execute_stacked", None) is None:
                continue
            hook = getattr(cell, "batch_group", None)
            if hook is None:
                continue
            groups.setdefault(hook(), []).append((index, cell))
        values: dict[int, tuple[Any, float]] = {}
        cap = self.stack_lanes or None
        for members in groups.values():
            if len(members) < 2:
                continue
            if self._interrupted:
                raise KeyboardInterrupt
            cells = [cell for _, cell in members]
            if self.faults is not None:
                for cell in cells:
                    self.faults.on_cell_start(cell.label, None)
            start = time.perf_counter()
            with obs_trace.span(
                "chunk.stacked", cells=len(cells), first=cells[0].label
            ):
                try:
                    results = type(cells[0]).execute_stacked(
                        cells, max_lanes=cap
                    )
                except KeyboardInterrupt:
                    raise
                except Exception:  # whole group falls back to sequential
                    continue
            wall = (time.perf_counter() - start) / len(members)
            for (index, _), result in zip(members, results):
                if not isinstance(result, BaseException):
                    values[index] = (result, wall)
        return values


# ----------------------------------------------------------------------
# Environment wiring (shared by the CLI and the benchmark harness)
# ----------------------------------------------------------------------
def _int_from_env(name: str, default: int, minimum: int, accepted: str) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name}={raw!r} is not an integer; accepted: {accepted}"
        )
    if value < minimum:
        raise ConfigurationError(
            f"{name}={raw!r} is out of range; accepted: {accepted}"
        )
    return value


def _truthy_env(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def _seconds_from_env(name: str, default: float | None) -> float | None:
    """A seconds value from the environment; ``0`` means disabled."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name}={raw!r} is not a number; accepted: a non-negative "
            "number of seconds (0 = disabled)"
        )
    if value < 0:
        raise ConfigurationError(
            f"{name}={raw!r} is out of range; accepted: a non-negative "
            "number of seconds (0 = disabled)"
        )
    return value if value else None


def engine_from_env(
    default_cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> ExecutionEngine:
    """Build an engine from ``REPRO_*`` environment variables.

    * ``REPRO_JOBS``: worker count (default 1 — the serial fallback);
      ``0`` means one worker per CPU.
    * ``REPRO_CACHE``: set to ``0`` to disable the on-disk cache.
    * ``REPRO_CACHE_DIR``: cache directory (falls back to
      ``default_cache_dir``; if both are unset, caching is off).
    * ``REPRO_RETRIES``: retry budget per cell (default 1).
    * ``REPRO_TIMEOUT``: per-cell deadline in seconds for parallel runs
      (default none; ``0`` also means none).
    * ``REPRO_HEARTBEAT``: worker liveness heartbeat interval in
      seconds (default 1; ``0`` disables heartbeats).
    * ``REPRO_STALL_TIMEOUT``: seconds of frozen heartbeat progress
      after which a stalled worker is killed (default derived from the
      timeout; requires heartbeats).
    * ``REPRO_JOURNAL``: journal path (default
      ``<cache-dir>/journal.jsonl`` whenever a cache directory is in
      use; ``0`` disables journaling).
    * ``REPRO_JOURNAL_BATCH``: journal group-commit batch size
      (default 64; ``1`` restores one fsync per cell). Acks are held
      until the batch's fsync, so crash-safety is unchanged.
    * ``REPRO_JOURNAL_LINGER``: max seconds a partial batch may wait
      for its fsync (default 0.05).
    * ``REPRO_RESUME``: set to ``1`` to replay journaled cells instead
      of re-running them.
    * ``REPRO_FAULTS``: fault-injection spec for chaos runs (see
      :mod:`repro.harness.faults`).
    * ``REPRO_SCHED``: campaign scheduler, ``steal`` (default) or
      ``fifo`` (legacy per-cell global queue).
    * ``REPRO_BATCH_CELLS``: cells per dispatched chunk under the steal
      scheduler (``0`` = auto-size per batch group, ``1`` = per-cell
      dispatch).
    * ``REPRO_SIM_STACK``: lane-stacked multi-cell execution. Unset =
      off; ``0`` = stack every compatible chunk, lanes auto-sized to
      the chunk; ``K`` = cap each stack at K lanes.
    * ``REPRO_PRECOMPUTE``: ``off`` disables the precompute store
      (legacy build-per-cell path); default on.
    * ``REPRO_STORE_DIR``: precompute-store directory. Defaults to
      ``<cache-dir>/store`` — using ``REPRO_CACHE_DIR`` or
      ``default_cache_dir`` even when ``REPRO_CACHE=0``, because the
      *result* cache and the *input* store are independent layers; with
      no directory at all the store falls back to shared memory.

    Malformed values raise :class:`~repro.errors.ConfigurationError`
    naming the offending value and the accepted forms.
    """
    jobs = _int_from_env(
        "REPRO_JOBS",
        default=1,
        minimum=0,
        accepted="a non-negative integer (1 = serial, N = N workers, "
        "0 = one per CPU)",
    )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    retries = _int_from_env(
        "REPRO_RETRIES",
        default=1,
        minimum=0,
        accepted="a non-negative integer retry budget per cell",
    )
    scheduler = os.environ.get("REPRO_SCHED", "").strip().lower() or "steal"
    if scheduler not in SCHEDULERS:
        raise ConfigurationError(
            f"REPRO_SCHED={scheduler!r} is not a scheduler; accepted: "
            + ", ".join(SCHEDULERS)
        )
    batch_cells = _int_from_env(
        "REPRO_BATCH_CELLS",
        default=0,
        minimum=0,
        accepted="a non-negative integer (0 = auto, 1 = per-cell dispatch)",
    )
    stack_lanes: int | None = None
    if os.environ.get("REPRO_SIM_STACK", "").strip():
        stack_lanes = _int_from_env(
            "REPRO_SIM_STACK",
            default=0,
            minimum=0,
            accepted="a non-negative integer (0 = auto lane count, "
            "K = cap stacks at K lanes; unset = stacking off)",
        )
    timeout: float | None = None
    raw_timeout = os.environ.get("REPRO_TIMEOUT", "").strip()
    if raw_timeout:
        try:
            timeout = float(raw_timeout)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_TIMEOUT={raw_timeout!r} is not a number; accepted: "
                "a positive number of seconds (0 = no deadline)"
            )
        if timeout < 0:
            raise ConfigurationError(
                f"REPRO_TIMEOUT={raw_timeout!r} is out of range; accepted: "
                "a positive number of seconds (0 = no deadline)"
            )
        if timeout == 0:
            timeout = None
    heartbeat = _seconds_from_env("REPRO_HEARTBEAT", 1.0)
    stall_timeout = _seconds_from_env("REPRO_STALL_TIMEOUT", None)
    cache: ResultCache | None = None
    directory: str | Path | None = None
    if os.environ.get("REPRO_CACHE", "1") != "0":
        directory = os.environ.get("REPRO_CACHE_DIR") or default_cache_dir
        if directory is not None:
            cache = ResultCache(directory)
    journal: RunJournal | None = None
    raw_journal = os.environ.get("REPRO_JOURNAL", "").strip()
    batch_entries, linger_seconds = batching_from_env()
    if raw_journal == "0":
        journal = None
    elif raw_journal:
        journal = RunJournal(
            raw_journal,
            batch_entries=batch_entries,
            linger_seconds=linger_seconds,
        )
    elif directory is not None:
        journal = RunJournal(
            Path(directory) / "journal.jsonl",
            batch_entries=batch_entries,
            linger_seconds=linger_seconds,
        )
    store: PrecomputeStore | None = None
    if precompute_from_env():
        # The trace store is allowed even when the result cache is off
        # (REPRO_CACHE=0): it memoizes cell *inputs*, not results, so
        # "always re-simulate" semantics are preserved either way.
        explicit_dir = os.environ.get(STORE_DIR_ENV)
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or default_cache_dir
        if explicit_dir:
            store = PrecomputeStore(explicit_dir)
        elif cache_dir is not None:
            store = PrecomputeStore(Path(cache_dir) / "store")
        else:
            store = PrecomputeStore()  # shared-memory backend
    return ExecutionEngine(
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        heartbeat=heartbeat,
        stall_timeout=stall_timeout,
        retries=retries,
        journal=journal,
        resume=_truthy_env("REPRO_RESUME"),
        faults=faults_from_env(),
        progress=progress,
        store=store,
        scheduler=scheduler,
        batch_cells=batch_cells,
        stack_lanes=stack_lanes,
    )
