"""Parallel experiment execution engine with on-disk result caching.

Every figure and table of the paper is a grid of independent
``(mix, scheme, profile)`` — or, for Figure 11, ``(benchmark, size,
profile)`` — simulation cells. This module fans those cells out over a
process pool and memoizes their results in a content-addressed on-disk
cache, so that

* a grid of ``M`` mixes × ``S`` schemes runs on ``min(jobs, M*S)``
  cores instead of one, and
* re-running a benchmark driver after an unrelated edit performs zero
  simulations: each cell's cache key is a deterministic hash of the mix
  pairs, the scheme name, and the **full** :class:`RunProfile`, so a
  result is reused if and only if the inputs that determine it are
  unchanged.

Because each cell builds its own seeded :class:`MultiDomainSystem` from
scratch, parallel execution is *bit-identical* to serial execution (and
to a cache hit or a journal replay: the JSON round-trip used by both is
exact for Python floats). ``tests/harness/test_exec.py`` pins both
guarantees.

Fault tolerance — the measurement substrate must be at least as
dependable as the system under test:

* **Crash-safe journal + resume.** With a :class:`RunJournal` attached,
  every finished cell is durably appended before it is reported; after
  a crash/SIGKILL, ``resume=True`` replays journaled outcomes (zero
  re-simulation) and runs only the cells that never completed.
* **Worker supervision.** Parallel cells run on dedicated worker
  processes watched by a supervisor: a worker that crashes or blows its
  per-cell deadline is killed and respawned, and its cell is retried
  with exponential backoff + deterministic jitter — one stuck cell can
  no longer occupy a pool slot for the rest of the run.
* **Graceful shutdown.** SIGINT/SIGTERM terminate workers cleanly,
  leave the journal valid, and surface a resume hint via
  :class:`~repro.errors.CampaignInterrupted`.
* **Cache integrity.** Entries carry a payload checksum; corrupt,
  truncated, or version-mismatched entries are quarantined (renamed
  ``*.corrupt``) and counted in telemetry instead of being silently
  re-parsed forever.
* **Fault injection.** A :class:`~repro.harness.faults.FaultPlan`
  (``REPRO_FAULTS``) injects crashes, hangs, worker kills, and cache
  corruption so every recovery path above is provable by tests.

Telemetry: the engine counts cache hits/misses, journal replays,
simulations, retries, failures, quarantines, and supervision events;
:func:`repro.harness.report.render_telemetry` renders the summary and
the optional ``progress`` callback receives one structured line per
completed cell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import multiprocessing.connection
import os
import signal
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.errors import CampaignInterrupted, ConfigurationError
from repro.harness.faults import FaultPlan, faults_from_env
from repro.harness.journal import JournalEntry, RunJournal
from repro.harness.profiling import maybe_profile, reset_claim
from repro.harness.runconfig import RunProfile
from repro.harness.store import (
    STORE_DIR_ENV,
    STORE_SHM_ENV,
    PrecomputeStore,
    apply_store_stats_delta,
    clear_active_store,
    precompute_from_env,
    set_active_store,
    store_stats_delta,
    store_stats_snapshot,
)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Bump when the cached payload layout or the simulator's semantics
#: change incompatibly; old entries are then quarantined, not misread.
#: (2: entries carry a payload checksum.)
CACHE_FORMAT_VERSION = 2

# Engine-level metrics, recorded per cell / per supervision event (never
# per simulated access), so they are cheap enough to count always;
# REPRO_METRICS only controls whether they are exported. They live in
# the process-wide registry (repro.obs.metrics.get_registry()) alongside
# the simulator's and journal's counters.
_REG = obs_metrics.get_registry()
_M_CELLS = {
    status: _REG.counter(
        "repro_exec_cells_total",
        "Engine cell outcomes by status",
        status=status,
    )
    for status in ("computed", "hit", "replayed", "failed")
}
_M_RETRIES = _REG.counter("repro_exec_retries_total", "Cell retry attempts")
_M_CYCLES = _REG.counter(
    "repro_exec_cycles_simulated_total", "Simulated cycles across cells"
)
_M_WORKER = {
    kind: _REG.counter(
        "repro_exec_worker_events_total",
        "Worker supervision events",
        kind=kind,
    )
    for kind in ("crash", "timeout", "respawn")
}
_M_BACKOFF = _REG.counter(
    "repro_exec_backoff_seconds_total", "Retry backoff delay scheduled"
)
_M_CACHE = {
    kind: _REG.counter(
        "repro_cache_requests_total",
        "Result-cache lookups by outcome",
        outcome=kind,
    )
    for kind in ("hit", "miss", "quarantined")
}
_M_CELL_SECONDS = _REG.histogram(
    "repro_exec_cell_seconds",
    "Per-cell wall time (completed cells)",
    buckets=obs_metrics.CELL_SECONDS_BUCKETS,
)


# ----------------------------------------------------------------------
# Cells: one independent unit of simulation work
# ----------------------------------------------------------------------
def _profile_token(profile: RunProfile) -> dict[str, Any]:
    """The full profile as a canonical, JSON-able dict (cache identity)."""
    return dataclasses.asdict(profile)


@dataclass(frozen=True)
class MixSchemeCell:
    """One mix simulated under one scheme — a Figure 10/12-17 cell."""

    pairs: tuple[tuple[str, str], ...]
    scheme: str
    profile: RunProfile

    @property
    def label(self) -> str:
        return f"mix[{'|'.join(s + '+' + c for s, c in self.pairs)}]/{self.scheme}"

    def cache_token(self) -> dict[str, Any]:
        return {
            "kind": "mix-scheme",
            "pairs": [list(pair) for pair in self.pairs],
            "scheme": self.scheme,
            "profile": _profile_token(self.profile),
        }

    def execute(self) -> Any:
        from repro.harness.experiment import run_mix_scheme

        return run_mix_scheme(list(self.pairs), self.scheme, self.profile)

    def store_needs(self) -> list[tuple]:
        """Precomputable artifacts this cell will consume (store populate).

        One workload trace per pair (mirroring ``run_mix_scheme``'s
        seeds) plus — for the Untangle variants — the exact rate table
        ``make_scheme`` will request.
        """
        needs: list[tuple] = [
            ("trace", spec, crypto, self.profile.workload_scale,
             self.profile.seed + index)
            for index, (spec, crypto) in enumerate(self.pairs)
        ]
        if self.scheme == "untangle":
            from repro.schemes.untangle import DEFAULT_TABLE_CAPACITY

            needs.append(
                ("rmax", self.profile.cooldown, DEFAULT_TABLE_CAPACITY)
            )
        elif self.scheme == "untangle-unopt":
            needs.append(("rmax-worst", self.profile.cooldown))
        return needs

    @staticmethod
    def cycles_of(value: Any) -> int:
        return int(value.total_cycles)

    @staticmethod
    def encode(value: Any) -> dict[str, Any]:
        return {
            "scheme": value.scheme,
            "total_cycles": value.total_cycles,
            "workloads": [
                {
                    "label": w.label,
                    "ipc": w.ipc,
                    "assessments": w.assessments,
                    "visible_actions": w.visible_actions,
                    "leakage_bits": w.leakage_bits,
                    "partition_quartiles": list(w.partition_quartiles),
                }
                for w in value.workloads
            ],
        }

    @staticmethod
    def decode(payload: dict[str, Any]) -> Any:
        from repro.harness.experiment import SchemeRunResult, WorkloadResult

        return SchemeRunResult(
            scheme=payload["scheme"],
            total_cycles=payload["total_cycles"],
            workloads=[
                WorkloadResult(
                    label=w["label"],
                    ipc=w["ipc"],
                    assessments=w["assessments"],
                    visible_actions=w["visible_actions"],
                    leakage_bits=w["leakage_bits"],
                    partition_quartiles=tuple(w["partition_quartiles"]),
                )
                for w in payload["workloads"]
            ],
        )


@dataclass(frozen=True)
class SensitivityCell:
    """One benchmark alone at one partition size — a Figure 11 cell."""

    benchmark: str
    partition_lines: int
    profile: RunProfile

    @property
    def label(self) -> str:
        return f"sensitivity[{self.benchmark}]/{self.partition_lines}"

    def cache_token(self) -> dict[str, Any]:
        return {
            "kind": "sensitivity",
            "benchmark": self.benchmark,
            "partition_lines": self.partition_lines,
            "profile": _profile_token(self.profile),
        }

    def execute(self) -> Any:
        from repro.harness.sensitivity import run_benchmark_at_size
        from repro.workloads.spec import SPEC_BENCHMARKS

        return run_benchmark_at_size(
            SPEC_BENCHMARKS[self.benchmark], self.partition_lines, self.profile
        )

    def store_needs(self) -> list[tuple]:
        """One shared SPEC-only trace per benchmark, reused by all sizes."""
        scale = self.profile.workload_scale
        return [
            (
                "spec-stream",
                self.benchmark,
                scale.spec_instructions,
                scale.lines_per_mb,
                self.profile.seed,
            )
        ]

    @staticmethod
    def cycles_of(value: Any) -> int | None:
        return None

    @staticmethod
    def encode(value: Any) -> dict[str, Any]:
        return {"ipc": value}

    @staticmethod
    def decode(payload: dict[str, Any]) -> Any:
        return payload["ipc"]


def cell_key(cell: Any) -> str:
    """Deterministic content hash identifying one cell's result."""
    token = {"format": CACHE_FORMAT_VERSION, **cell.cache_token()}
    canonical = json.dumps(token, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed JSON store of cell results.

    Entries live at ``<directory>/<key[:2]>/<key>.json`` and are written
    atomically (temp file + rename), so concurrent workers and concurrent
    benchmark sessions can share one cache directory safely.

    Integrity: each entry embeds a SHA-256 checksum of its value
    payload. An entry that is truncated, garbled, checksum-mismatched,
    or written by an incompatible :data:`CACHE_FORMAT_VERSION` is
    *quarantined* — renamed to ``<entry>.json.corrupt`` and counted in
    :attr:`quarantined` — so it is diagnosable on disk and is never
    re-read and re-parsed on subsequent runs.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        #: Entries quarantined by :meth:`get` over this instance's life.
        self.quarantined = 0
        #: Successful/absent lookups over this instance's life.
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    @staticmethod
    def _value_checksum(value: Any) -> str:
        canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _quarantine(self, path: Path) -> None:
        self.quarantined += 1
        _M_CACHE["quarantined"].inc()
        obs_trace.event("cache.quarantine", path=str(path))
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def _miss(self) -> None:
        self.misses += 1
        _M_CACHE["miss"].inc()

    def get(self, key: str) -> dict[str, Any] | None:
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self._miss()
            return None  # genuinely absent — a plain miss
        try:
            payload = json.loads(text)
        except ValueError:
            self._quarantine(path)
            self._miss()
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != CACHE_FORMAT_VERSION
            or "value" not in payload
            or payload.get("sha256") != self._value_checksum(payload["value"])
        ):
            self._quarantine(path)
            self._miss()
            return None
        self.hits += 1
        _M_CACHE["hit"].inc()
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": CACHE_FORMAT_VERSION,
            "sha256": self._value_checksum(payload.get("value")),
            **payload,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
@dataclass
class CellRecord:
    """Per-cell telemetry line."""

    label: str
    status: str  # "hit" | "replayed" | "computed" | "failed"
    wall_seconds: float
    attempts: int
    cycles: int | None = None
    error: str | None = None


@dataclass
class EngineTelemetry:
    """Counters accumulated across one engine's lifetime."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    journal_replays: int = 0
    simulations: int = 0
    retries: int = 0
    failures: int = 0
    #: Corrupt/stale cache entries renamed ``*.corrupt`` by this engine.
    quarantines: int = 0
    #: Worker processes that died mid-cell (and were respawned).
    worker_crashes: int = 0
    #: Workers killed for blowing the per-cell deadline.
    worker_timeouts: int = 0
    workers_respawned: int = 0
    #: Total retry backoff delay scheduled (seconds).
    backoff_seconds: float = 0.0
    #: True when the run ended via SIGINT/SIGTERM.
    interrupted: bool = False
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0
    cycles_simulated: int = 0
    #: Precompute-store accounting (PR 5), absorbed once per run from
    #: the metrics registry (populate + serial cells + worker deltas).
    store_trace_hits: int = 0
    store_trace_misses: int = 0
    store_trace_bytes: int = 0
    store_rmax_hits: int = 0
    store_rmax_misses: int = 0
    store_quarantines: int = 0
    #: Full workload compositions / Dinkelbach solves paid anywhere in
    #: the campaign — a warm store drives both to zero.
    workload_builds: int = 0
    rmax_solves: int = 0
    records: list[CellRecord] = field(default_factory=list)

    def note(self, record: CellRecord) -> None:
        self.records.append(record)
        self.cells += 1
        self.cell_seconds += record.wall_seconds
        _M_CELLS[record.status].inc()
        _M_CELL_SECONDS.observe(record.wall_seconds)
        if record.status == "hit":
            self.cache_hits += 1
            return
        if record.status == "replayed":
            # Replayed cells were *not* looked up in the cache and were
            # *not* re-simulated: they must never count as misses or
            # simulations (they would double-book work that a previous
            # campaign already paid for).
            self.journal_replays += 1
            return
        self.cache_misses += 1
        if record.status == "computed":
            self.simulations += 1
            if record.cycles is not None:
                self.cycles_simulated += record.cycles
                _M_CYCLES.inc(record.cycles)
        else:
            self.failures += 1
        retries = max(0, record.attempts - 1)
        self.retries += retries
        if retries:
            _M_RETRIES.inc(retries)

    def snapshot(self) -> dict[str, Any]:
        """Canonical counter dict — the single source of truth that both
        :func:`repro.harness.report.render_telemetry` and the metrics
        exporters render from.

        Invariant (pinned by tests):
        ``computed + hit + replayed + failed == total``.
        """
        return {
            "total": self.cells,
            "computed": self.simulations,
            "hit": self.cache_hits,
            "replayed": self.journal_replays,
            "failed": self.failures,
            "misses": self.cache_misses,
            "retries": self.retries,
            "quarantined": self.quarantines,
            "worker_crashes": self.worker_crashes,
            "worker_timeouts": self.worker_timeouts,
            "workers_respawned": self.workers_respawned,
            "backoff_seconds": self.backoff_seconds,
            "interrupted": self.interrupted,
            "wall_seconds": self.wall_seconds,
            "cell_seconds": self.cell_seconds,
            "cycles_simulated": self.cycles_simulated,
            "store_trace_hits": self.store_trace_hits,
            "store_trace_misses": self.store_trace_misses,
            "store_trace_bytes": self.store_trace_bytes,
            "store_rmax_hits": self.store_rmax_hits,
            "store_rmax_misses": self.store_rmax_misses,
            "store_quarantines": self.store_quarantines,
            "workload_builds": self.workload_builds,
            "rmax_solves": self.rmax_solves,
        }

    def absorb_store(self, delta: dict[str, float]) -> None:
        """Fold one run's store/build/solve counter delta into telemetry.

        ``delta`` comes from :func:`repro.harness.store.store_stats_delta`
        over the run's registry snapshots — by then worker deltas have
        already been replayed into the parent registry, so each unit of
        work is counted exactly once regardless of where it executed.
        """
        self.store_trace_hits += int(delta.get("store_trace_hits", 0))
        self.store_trace_misses += int(delta.get("store_trace_misses", 0))
        self.store_trace_bytes += int(delta.get("store_trace_bytes", 0))
        self.store_rmax_hits += int(delta.get("store_rmax_hits", 0))
        self.store_rmax_misses += int(delta.get("store_rmax_misses", 0))
        self.store_quarantines += int(
            delta.get("store_quarantined_trace", 0)
            + delta.get("store_quarantined_rmax", 0)
        )
        self.workload_builds += int(delta.get("workload_builds", 0))
        self.rmax_solves += int(delta.get("rmax_solves", 0))

    def publish(self, registry=None) -> None:
        """Mirror the timing aggregates into the metrics registry.

        The count-like fields are already incremented live (in
        :meth:`note` and by the supervisor); only the engine-lifetime
        seconds, which accumulate outside any single counter event, are
        synced here as gauges.
        """
        registry = registry if registry is not None else _REG
        registry.gauge(
            "repro_exec_wall_seconds", "Engine wall-clock time"
        ).set(self.wall_seconds)
        # Per-cell seconds are NOT mirrored here: the
        # ``repro_exec_cell_seconds`` histogram already exports the sum
        # (and a second series under the same name would be invalid
        # Prometheus exposition).


@dataclass
class CellOutcome:
    """Result of running one cell through the engine."""

    cell: Any
    key: str
    value: Any | None
    status: str  # "hit" | "replayed" | "computed" | "failed"
    wall_seconds: float
    attempts: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status != "failed"


# ----------------------------------------------------------------------
# Retry backoff
# ----------------------------------------------------------------------
def backoff_delay(
    key: str, attempt: int, base: float, cap: float
) -> float:
    """Exponential backoff with *deterministic* jitter.

    ``base * 2**(attempt-1)`` capped at ``cap``, scaled by a jitter
    factor in ``[0.5, 1.0)`` derived from a hash of ``(key, attempt)``
    — so concurrent retries de-synchronize, yet a re-run of the same
    campaign schedules bit-identical delays (no hidden randomness).
    """
    if base <= 0:
        return 0.0
    raw = min(cap, base * (2.0 ** (attempt - 1)))
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).digest()
    jitter = 0.5 + digest[0] / 512.0
    return raw * jitter


# ----------------------------------------------------------------------
# Worker entry points (must be importable for multiprocessing)
# ----------------------------------------------------------------------
def _execute_cell(
    cell: Any,
    faults: FaultPlan | None = None,
    worker_id: int | None = None,
) -> tuple[Any, float]:
    """Run one cell in the current process; returns (value, wall_seconds)."""
    if faults is not None:
        faults.on_cell_start(cell.label, worker_id)
    with obs_trace.span("cell.compute", label=cell.label, worker=worker_id):
        start = time.perf_counter()
        value = maybe_profile(cell.label, cell.execute, worker_id)
        return value, time.perf_counter() - start


def _worker_main(
    conn: multiprocessing.connection.Connection,
    worker_id: int,
    faults: FaultPlan | None,
) -> None:
    """Worker loop: receive ``(index, cell)`` tasks, send back results.

    SIGINT is ignored so a terminal Ctrl-C reaches only the supervisor,
    which then terminates workers deliberately (after flushing the
    journal) instead of racing N KeyboardInterrupts. SIGTERM is reset
    to its default action: a forked worker inherits the supervisor's
    flag-setting handler, which would make ``Process.terminate()`` a
    no-op and force the slow SIGKILL fallback when reaping hung workers.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):
        pass
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            return
        index, cell = task
        start = time.perf_counter()
        # Store/build/solve counters accumulate in *this* process's
        # registry; ship the per-cell delta home so the parent registry
        # (the one the exporters and telemetry read) accounts for work
        # wherever it ran.
        stats_before = store_stats_snapshot()
        try:
            value, wall = _execute_cell(cell, faults, worker_id)
            delta = store_stats_delta(stats_before, store_stats_snapshot())
            message = (index, "ok", value, wall, delta)
        except Exception as exc:  # graceful degradation
            delta = store_stats_delta(stats_before, store_stats_snapshot())
            message = (
                index,
                "error",
                f"{type(exc).__name__}: {exc}",
                time.perf_counter() - start,
                delta,
            )
        try:
            conn.send(message)
        except Exception as exc:  # e.g. an unpicklable result value
            try:
                conn.send(
                    (
                        index,
                        "error",
                        f"result not transferable: {type(exc).__name__}: {exc}",
                        time.perf_counter() - start,
                        delta,
                    )
                )
            except Exception:
                return


# ----------------------------------------------------------------------
# Worker supervision
# ----------------------------------------------------------------------
@dataclass
class _Worker:
    """Supervisor-side handle for one worker process."""

    process: Any
    conn: multiprocessing.connection.Connection
    id: int
    task: tuple[int, Any, str] | None = None  # (index, cell, key)
    started: float = 0.0
    deadline: float | None = None


class _Supervisor:
    """Owns the worker pool for one parallel engine run.

    Unlike the former round-barrier ``Pool.apply_async`` loop, tasks are
    assigned to dedicated workers with per-task deadlines: a hung or
    crashed worker is killed and respawned immediately, its task is
    rescheduled with backoff, and every other slot keeps streaming cells
    — no failure can stall the round or leak a pool slot.
    """

    #: How long one poll of the worker pipes blocks, seconds. Bounds
    #: both deadline-detection latency and interrupt responsiveness.
    POLL_SECONDS = 0.1

    def __init__(self, engine: "ExecutionEngine", pending):
        self.engine = engine
        self.context = multiprocessing.get_context()
        # (index, cell, key, ready_at): ready_at defers backed-off retries.
        self.queue: deque[tuple[int, Any, str, float]] = deque(
            (index, cell, key, 0.0) for index, cell, key in pending
        )
        self.attempts = {index: 0 for index, _, _ in pending}
        #: Cumulative elapsed seconds per cell across all its attempts —
        #: crashed/hung/failed attempts included, so telemetry no longer
        #: undercounts failed cells as zero-cost.
        self.elapsed = {index: 0.0 for index, _, _ in pending}
        self._next_worker_id = 0
        self.workers = [
            self._spawn() for _ in range(min(engine.jobs, len(pending)))
        ]

    # ------------------------------------------------------------------
    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self.context.Pipe()
        worker_id = self._next_worker_id
        self._next_worker_id += 1
        process = self.context.Process(
            target=_worker_main,
            args=(child_conn, worker_id, self.engine.faults),
            daemon=True,
            name=f"repro-exec-{worker_id}",
        )
        process.start()
        child_conn.close()
        return _Worker(process=process, conn=parent_conn, id=worker_id)

    def _reap(self, worker: _Worker) -> None:
        """Tear one worker down for good (terminate if still alive)."""
        if worker.process.is_alive():
            worker.process.terminate()
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
        else:
            worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass

    def _replace(self, worker: _Worker) -> None:
        """Kill a crashed/hung worker; respawn if there is work left."""
        self._reap(worker)
        self.workers.remove(worker)
        # A replacement is always useful: the failed task is about to be
        # requeued by the caller (or other tasks are still queued), and
        # spawning is cheap next to multi-second simulation cells.
        self.workers.append(self._spawn())
        self.engine.telemetry.workers_respawned += 1
        _M_WORKER["respawn"].inc()
        obs_trace.event("worker.respawn", worker=worker.id)

    # ------------------------------------------------------------------
    def run(self) -> Iterator[tuple[int, CellOutcome]]:
        try:
            while self.queue or any(w.task for w in self.workers):
                if self.engine._interrupted:
                    raise KeyboardInterrupt
                self._assign()
                yield from self._collect()
        finally:
            self._shutdown()

    def _pop_ready(self, now: float):
        for position, task in enumerate(self.queue):
            if task[3] <= now:
                del self.queue[position]
                return task
        return None

    def _assign(self) -> None:
        now = time.monotonic()
        for worker in self.workers:
            if worker.task is not None:
                continue
            task = self._pop_ready(now)
            if task is None:
                return
            index, cell, key, _ = task
            self.attempts[index] += 1
            obs_trace.event(
                "cell.dispatch",
                label=cell.label,
                worker=worker.id,
                attempt=self.attempts[index],
            )
            worker.task = (index, cell, key)
            worker.started = now
            worker.deadline = (
                now + self.engine.timeout
                if self.engine.timeout is not None
                else None
            )
            try:
                worker.conn.send((index, cell))
            except (OSError, ValueError):
                # Worker already dead; its sentinel wakes _collect, which
                # reschedules the task through the crash path.
                pass

    def _collect(self) -> Iterator[tuple[int, CellOutcome]]:
        handles: dict[Any, _Worker] = {}
        for worker in self.workers:
            handles[worker.conn] = worker
            handles[worker.process.sentinel] = worker
        ready = multiprocessing.connection.wait(
            list(handles), timeout=self.POLL_SECONDS
        )
        serviced: set[int] = set()
        for handle in ready:
            worker = handles[handle]
            if worker.id in serviced or worker not in self.workers:
                continue
            serviced.add(worker.id)
            yield from self._service(worker)
        now = time.monotonic()
        for worker in list(self.workers):
            if (
                worker.task is not None
                and worker.deadline is not None
                and now > worker.deadline
                and worker.id not in serviced
            ):
                yield from self._expire(worker)

    def _service(self, worker: _Worker) -> Iterator[tuple[int, CellOutcome]]:
        """Handle a worker whose pipe or sentinel became ready."""
        message = None
        try:
            if worker.conn.poll():
                message = worker.conn.recv()
        except (EOFError, OSError):
            message = None
        if message is not None:
            index, status, payload, wall, stats_delta = message
            apply_store_stats_delta(stats_delta)
            assert worker.task is not None and worker.task[0] == index
            _, cell, key = worker.task
            worker.task = None
            worker.deadline = None
            self.elapsed[index] += wall
            if status == "ok":
                yield index, CellOutcome(
                    cell=cell,
                    key=key,
                    value=payload,
                    status="computed",
                    wall_seconds=self.elapsed[index],
                    attempts=self.attempts[index],
                    error=None,
                )
            else:
                yield from self._attempt_failed(index, cell, key, payload)
            return
        if worker.process.is_alive():
            return  # spurious wakeup
        if worker.task is None:
            # An idle worker died (infant mortality): just replace it.
            self._replace(worker)
            return
        index, cell, key = worker.task
        self.elapsed[index] += time.monotonic() - worker.started
        self.engine.telemetry.worker_crashes += 1
        _M_WORKER["crash"].inc()
        obs_trace.event(
            "worker.crash",
            worker=worker.id,
            label=cell.label,
            exitcode=worker.process.exitcode,
        )
        error = f"worker crashed (exit code {worker.process.exitcode})"
        self._replace(worker)
        yield from self._attempt_failed(index, cell, key, error)

    def _expire(self, worker: _Worker) -> Iterator[tuple[int, CellOutcome]]:
        """Kill a worker that blew its per-cell deadline; retry the cell."""
        assert worker.task is not None
        index, cell, key = worker.task
        self.elapsed[index] += time.monotonic() - worker.started
        self.engine.telemetry.worker_timeouts += 1
        _M_WORKER["timeout"].inc()
        obs_trace.event(
            "worker.timeout",
            worker=worker.id,
            label=cell.label,
            timeout=self.engine.timeout,
        )
        error = f"timeout after {self.engine.timeout:.1f}s (worker killed)"
        self._replace(worker)
        yield from self._attempt_failed(index, cell, key, error)

    def _attempt_failed(
        self, index: int, cell: Any, key: str, error: str
    ) -> Iterator[tuple[int, CellOutcome]]:
        if self.attempts[index] <= self.engine.retries:
            delay = backoff_delay(
                key,
                self.attempts[index],
                self.engine.backoff_base,
                self.engine.backoff_cap,
            )
            self.engine.telemetry.backoff_seconds += delay
            _M_BACKOFF.inc(delay)
            obs_trace.event(
                "cell.retry",
                label=cell.label,
                attempt=self.attempts[index],
                delay=delay,
                error=error,
            )
            self.queue.append((index, cell, key, time.monotonic() + delay))
            return
        yield index, CellOutcome(
            cell=cell,
            key=key,
            value=None,
            status="failed",
            wall_seconds=self.elapsed[index],
            attempts=self.attempts[index],
            error=error,
        )

    def _shutdown(self) -> None:
        for worker in self.workers:
            if worker.task is None and worker.process.is_alive():
                try:
                    worker.conn.send(None)  # polite stop for idle workers
                except (OSError, ValueError):
                    pass
            else:
                worker.process.terminate()
        for worker in self.workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self.workers = []


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ExecutionEngine:
    """Fan simulation cells out over a supervised process pool.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (the default) executes serially in the
        calling process — the debugging fallback — but still consults
        the cache and journal. Results are bit-identical either way.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    timeout:
        Per-cell deadline in seconds (parallel mode only: a serial run
        cannot preempt the simulation it is executing). A worker past
        its deadline is killed and respawned. ``None`` waits forever.
    retries:
        How many times a failed, crashed, or timed-out cell is
        re-attempted (default one retry).
    backoff_base / backoff_cap:
        Exponential-backoff schedule for those retries: attempt ``n``
        is delayed ``base * 2**(n-1)`` seconds (capped), with
        deterministic jitter — see :func:`backoff_delay`.
    journal:
        Optional :class:`RunJournal`; every finished cell is durably
        appended before being reported.
    resume:
        Replay journaled outcomes instead of re-running them; only
        cells absent from (or failed in) the journal execute.
    faults:
        Optional :class:`FaultPlan` for chaos testing.
    progress:
        Optional callback receiving one structured line per finished
        cell, e.g. ``print`` or a logger method.
    store:
        Optional :class:`~repro.harness.store.PrecomputeStore`. Before
        cells fan out, every distinct artifact the pending cells declare
        via ``store_needs()`` is precomputed once (``store.populate``,
        traced as a ``store.populate`` span); workers then attach
        zero-copy instead of regenerating. The store is torn down
        (shared-memory segments unlinked) when the run exits — the
        SIGINT path included. ``None`` disables the layer; results are
        bit-identical either way. Independent of ``cache``: the *result*
        cache memoizes finished cells, the store memoizes the expensive
        *inputs* of cells that do run.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        *,
        timeout: float | None = None,
        retries: int = 1,
        backoff_base: float = 0.05,
        backoff_cap: float = 30.0,
        journal: RunJournal | None = None,
        resume: bool = False,
        faults: FaultPlan | None = None,
        progress: Callable[[str], None] | None = None,
        store: PrecomputeStore | None = None,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        if backoff_base < 0 or backoff_cap < 0:
            raise ConfigurationError("backoff delays must be >= 0")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.journal = journal
        self.resume = resume
        self.faults = faults
        self.progress = progress
        self.store = store
        self.telemetry = EngineTelemetry()
        self._interrupted = False
        self._serial_mode = True
        self._campaign: str | None = None
        self._old_handlers: dict[int, Any] = {}

    # ------------------------------------------------------------------
    # Signal handling (graceful shutdown)
    # ------------------------------------------------------------------
    def _install_signals(self) -> None:
        self._interrupted = False
        self._old_handlers = {}
        if threading.current_thread() is not threading.main_thread():
            return
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._old_handlers[signum] = signal.signal(
                    signum, self._on_signal
                )
            except (ValueError, OSError):
                pass

    def _restore_signals(self) -> None:
        for signum, handler in self._old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        self._old_handlers = {}

    def _on_signal(self, signum, frame) -> None:
        if self._interrupted:
            # Second signal: the user means it — die with default action.
            try:
                signal.signal(signum, signal.SIG_DFL)
            except (ValueError, OSError):
                pass
            os.kill(os.getpid(), signum)
            return
        self._interrupted = True
        if self._serial_mode:
            # Serial execution has no supervisor loop polling the flag;
            # unwind the in-flight cell now (run() converts this to a
            # clean CampaignInterrupted after flushing state).
            raise KeyboardInterrupt

    # ------------------------------------------------------------------
    def _emit(self, outcome: CellOutcome, done: int, total: int) -> None:
        if self.progress is None:
            return
        cycles = outcome.cell.cycles_of(outcome.value) if outcome.ok else None
        parts = [
            f"[exec {done}/{total}]",
            outcome.cell.label,
            f"status={outcome.status}",
            f"wall={outcome.wall_seconds:.2f}s",
        ]
        if cycles is not None:
            parts.append(f"cycles={cycles}")
        if outcome.attempts > 1:
            parts.append(f"attempts={outcome.attempts}")
        if outcome.error:
            parts.append(f"error={outcome.error}")
        self.progress(" ".join(parts))

    def _finish(
        self, outcome: CellOutcome, done: int, total: int
    ) -> CellOutcome:
        cycles = (
            outcome.cell.cycles_of(outcome.value)
            if outcome.status == "computed"
            else None
        )
        self.telemetry.note(
            CellRecord(
                label=outcome.cell.label,
                status=outcome.status,
                wall_seconds=outcome.wall_seconds,
                attempts=outcome.attempts,
                cycles=cycles,
                error=outcome.error,
            )
        )
        if outcome.status == "computed" and self.cache is not None:
            self.cache.put(
                outcome.key,
                {
                    "cell": outcome.cell.cache_token(),
                    "value": outcome.cell.encode(outcome.value),
                    "wall_seconds": outcome.wall_seconds,
                },
            )
            if self.faults is not None and self.faults.should_corrupt(
                outcome.cell.label
            ):
                self.faults.corrupt_file(self.cache._path(outcome.key))
        if self.journal is not None and outcome.status != "replayed":
            self.journal.record(
                JournalEntry(
                    key=outcome.key,
                    label=outcome.cell.label,
                    status=outcome.status,
                    wall_seconds=outcome.wall_seconds,
                    attempts=outcome.attempts,
                    campaign=self._campaign,
                    value=(
                        outcome.cell.encode(outcome.value)
                        if outcome.ok
                        else None
                    ),
                    error=outcome.error,
                )
            )
        self._emit(outcome, done, total)
        return outcome

    def _replay(self, cell: Any, key: str, entry: JournalEntry) -> Any | None:
        """Decode a journaled result, or ``None`` if it is unusable."""
        if not entry.ok or entry.value is None:
            return None
        try:
            return cell.decode(entry.value)
        except Exception:
            return None

    # ------------------------------------------------------------------
    def run(
        self, cells: Sequence[Any], *, campaign: str | None = None
    ) -> list[CellOutcome]:
        """Execute every cell; outcomes come back in input order.

        On SIGINT/SIGTERM the run shuts down cleanly — journal flushed,
        workers terminated — and raises
        :class:`~repro.errors.CampaignInterrupted` carrying the
        outcomes that completed.
        """
        start = time.perf_counter()
        total = len(cells)
        outcomes: list[CellOutcome | None] = [None] * total
        done = 0
        self._campaign = campaign
        run_span = obs_trace.span(
            "engine.run", campaign=campaign, jobs=self.jobs, cells=total
        )
        run_span.__enter__()
        journaled = (
            self.journal.load()
            if (self.journal is not None and self.resume)
            else {}
        )
        quarantined_before = self.cache.quarantined if self.cache else 0
        stats_before = store_stats_snapshot()
        reset_claim()  # each campaign gets one REPRO_PROFILE capture
        self._install_signals()
        try:
            pending: list[tuple[int, Any, str]] = []
            for index, cell in enumerate(cells):
                key = cell_key(cell)
                entry = journaled.get(key)
                if entry is not None:
                    value = self._replay(cell, key, entry)
                    if value is not None:
                        done += 1
                        with obs_trace.span("cell.replayed", label=cell.label):
                            outcomes[index] = self._finish(
                                CellOutcome(
                                    cell=cell,
                                    key=key,
                                    value=value,
                                    status="replayed",
                                    wall_seconds=0.0,
                                    attempts=0,
                                ),
                                done,
                                total,
                            )
                        continue
                payload = self.cache.get(key) if self.cache is not None else None
                if payload is not None:
                    done += 1
                    with obs_trace.span("cell.hit", label=cell.label):
                        outcomes[index] = self._finish(
                            CellOutcome(
                                cell=cell,
                                key=key,
                                value=cell.decode(payload["value"]),
                                status="hit",
                                wall_seconds=0.0,
                                attempts=0,
                            ),
                            done,
                            total,
                        )
                else:
                    pending.append((index, cell, key))

            if pending and self.store is not None:
                # Populate-before-fan-out: every distinct artifact the
                # pending cells declare is computed exactly once here,
                # then served zero-copy to serial cells, forked workers
                # (inherited mapping), and spawned/respawned workers
                # (reattach via the exported environment).
                set_active_store(self.store)
                self.store.export_env()
                needs: list[tuple] = []
                for _, cell, _ in pending:
                    hook = getattr(cell, "store_needs", None)
                    if hook is not None:
                        needs.extend(hook())
                if needs:
                    with obs_trace.span(
                        "store.populate",
                        store=self.store.describe(),
                        needs=len(needs),
                    ) as populate_span:
                        ensured = self.store.populate(needs, jobs=self.jobs)
                        populate_span.set(distinct=ensured)

            if pending:
                if self.jobs == 1:
                    self._serial_mode = True
                    runner = self._run_serial(pending)
                else:
                    self._serial_mode = False
                    runner = _Supervisor(self, pending).run()
                for index, outcome in runner:
                    done += 1
                    outcomes[index] = self._finish(outcome, done, total)
        except KeyboardInterrupt:
            self.telemetry.interrupted = True
            completed = [o for o in outcomes if o is not None]
            journal_path = self.journal.path if self.journal else None
            hint = (
                f"campaign interrupted with {done}/{total} cells finished"
            )
            if journal_path is not None:
                hint += (
                    f"; completed cells are journaled at {journal_path} — "
                    "re-run with --resume (or REPRO_RESUME=1) to finish "
                    "without re-simulating them"
                )
            raise CampaignInterrupted(
                hint, outcomes=completed, journal_path=journal_path
            ) from None
        finally:
            self._restore_signals()
            self._serial_mode = True
            self._campaign = None
            if self.cache is not None:
                self.telemetry.quarantines += (
                    self.cache.quarantined - quarantined_before
                )
            # One run-level registry delta: populate + serial cells +
            # worker deltas (already replayed into this registry by
            # _service), each counted exactly once.
            self.telemetry.absorb_store(
                store_stats_delta(stats_before, store_stats_snapshot())
            )
            if self.store is not None:
                # Teardown on every exit path — SIGINT included — so no
                # /dev/shm segment outlives the run.
                self.store.release()
                clear_active_store()
                if self.store.directory is None:
                    os.environ.pop(STORE_SHM_ENV, None)
            self.telemetry.wall_seconds += time.perf_counter() - start
            self.telemetry.publish()
            snap = self.telemetry.snapshot()
            run_span.set(
                done=done,
                computed=snap["computed"],
                hit=snap["hit"],
                replayed=snap["replayed"],
                failed=snap["failed"],
                interrupted=snap["interrupted"],
                store_trace_hits=snap["store_trace_hits"],
                store_trace_misses=snap["store_trace_misses"],
                store_trace_bytes=snap["store_trace_bytes"],
            )
            run_span.__exit__(None, None, None)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_serial(self, pending):
        for index, cell, key in pending:
            if self._interrupted:
                raise KeyboardInterrupt
            attempts = 0
            error: str | None = None
            # Accumulated *execution* time across attempts. Backoff
            # sleeps are excluded, matching the supervised parallel
            # path (which books only real worker time) — a retried
            # serial cell used to report wall_seconds inflated by its
            # own backoff delays.
            elapsed = 0.0
            value = None
            status = "failed"
            while attempts <= self.retries:
                attempts += 1
                attempt_start = time.perf_counter()
                try:
                    value, wall = _execute_cell(cell, self.faults)
                    elapsed += wall
                    status = "computed"
                    error = None
                    break
                except KeyboardInterrupt:
                    raise
                except Exception as exc:  # graceful degradation
                    elapsed += time.perf_counter() - attempt_start
                    error = f"{type(exc).__name__}: {exc}"
                    if attempts <= self.retries:
                        delay = backoff_delay(
                            key, attempts, self.backoff_base, self.backoff_cap
                        )
                        self.telemetry.backoff_seconds += delay
                        _M_BACKOFF.inc(delay)
                        obs_trace.event(
                            "cell.retry",
                            label=cell.label,
                            attempt=attempts,
                            delay=delay,
                            error=error,
                        )
                        if delay:
                            time.sleep(delay)
            yield index, CellOutcome(
                cell=cell,
                key=key,
                value=value,
                status=status,
                wall_seconds=elapsed,
                attempts=attempts,
                error=error,
            )


# ----------------------------------------------------------------------
# Environment wiring (shared by the CLI and the benchmark harness)
# ----------------------------------------------------------------------
def _int_from_env(name: str, default: int, minimum: int, accepted: str) -> int:
    raw = os.environ.get(name)
    if raw is None or not raw.strip():
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{name}={raw!r} is not an integer; accepted: {accepted}"
        )
    if value < minimum:
        raise ConfigurationError(
            f"{name}={raw!r} is out of range; accepted: {accepted}"
        )
    return value


def _truthy_env(name: str) -> bool:
    return os.environ.get(name, "").strip().lower() in ("1", "true", "yes", "on")


def engine_from_env(
    default_cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> ExecutionEngine:
    """Build an engine from ``REPRO_*`` environment variables.

    * ``REPRO_JOBS``: worker count (default 1 — the serial fallback);
      ``0`` means one worker per CPU.
    * ``REPRO_CACHE``: set to ``0`` to disable the on-disk cache.
    * ``REPRO_CACHE_DIR``: cache directory (falls back to
      ``default_cache_dir``; if both are unset, caching is off).
    * ``REPRO_RETRIES``: retry budget per cell (default 1).
    * ``REPRO_TIMEOUT``: per-cell deadline in seconds for parallel runs
      (default none; ``0`` also means none).
    * ``REPRO_JOURNAL``: journal path (default
      ``<cache-dir>/journal.jsonl`` whenever a cache directory is in
      use; ``0`` disables journaling).
    * ``REPRO_RESUME``: set to ``1`` to replay journaled cells instead
      of re-running them.
    * ``REPRO_FAULTS``: fault-injection spec for chaos runs (see
      :mod:`repro.harness.faults`).
    * ``REPRO_PRECOMPUTE``: ``off`` disables the precompute store
      (legacy build-per-cell path); default on.
    * ``REPRO_STORE_DIR``: precompute-store directory. Defaults to
      ``<cache-dir>/store`` — using ``REPRO_CACHE_DIR`` or
      ``default_cache_dir`` even when ``REPRO_CACHE=0``, because the
      *result* cache and the *input* store are independent layers; with
      no directory at all the store falls back to shared memory.

    Malformed values raise :class:`~repro.errors.ConfigurationError`
    naming the offending value and the accepted forms.
    """
    jobs = _int_from_env(
        "REPRO_JOBS",
        default=1,
        minimum=0,
        accepted="a non-negative integer (1 = serial, N = N workers, "
        "0 = one per CPU)",
    )
    if jobs == 0:
        jobs = os.cpu_count() or 1
    retries = _int_from_env(
        "REPRO_RETRIES",
        default=1,
        minimum=0,
        accepted="a non-negative integer retry budget per cell",
    )
    timeout: float | None = None
    raw_timeout = os.environ.get("REPRO_TIMEOUT", "").strip()
    if raw_timeout:
        try:
            timeout = float(raw_timeout)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_TIMEOUT={raw_timeout!r} is not a number; accepted: "
                "a positive number of seconds (0 = no deadline)"
            )
        if timeout < 0:
            raise ConfigurationError(
                f"REPRO_TIMEOUT={raw_timeout!r} is out of range; accepted: "
                "a positive number of seconds (0 = no deadline)"
            )
        if timeout == 0:
            timeout = None
    cache: ResultCache | None = None
    directory: str | Path | None = None
    if os.environ.get("REPRO_CACHE", "1") != "0":
        directory = os.environ.get("REPRO_CACHE_DIR") or default_cache_dir
        if directory is not None:
            cache = ResultCache(directory)
    journal: RunJournal | None = None
    raw_journal = os.environ.get("REPRO_JOURNAL", "").strip()
    if raw_journal == "0":
        journal = None
    elif raw_journal:
        journal = RunJournal(raw_journal)
    elif directory is not None:
        journal = RunJournal(Path(directory) / "journal.jsonl")
    store: PrecomputeStore | None = None
    if precompute_from_env():
        # The trace store is allowed even when the result cache is off
        # (REPRO_CACHE=0): it memoizes cell *inputs*, not results, so
        # "always re-simulate" semantics are preserved either way.
        explicit_dir = os.environ.get(STORE_DIR_ENV)
        cache_dir = os.environ.get("REPRO_CACHE_DIR") or default_cache_dir
        if explicit_dir:
            store = PrecomputeStore(explicit_dir)
        elif cache_dir is not None:
            store = PrecomputeStore(Path(cache_dir) / "store")
        else:
            store = PrecomputeStore()  # shared-memory backend
    return ExecutionEngine(
        jobs=jobs,
        cache=cache,
        timeout=timeout,
        retries=retries,
        journal=journal,
        resume=_truthy_env("REPRO_RESUME"),
        faults=faults_from_env(),
        progress=progress,
        store=store,
    )
