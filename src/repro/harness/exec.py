"""Parallel experiment execution engine with on-disk result caching.

Every figure and table of the paper is a grid of independent
``(mix, scheme, profile)`` — or, for Figure 11, ``(benchmark, size,
profile)`` — simulation cells. This module fans those cells out over a
process pool and memoizes their results in a content-addressed on-disk
cache, so that

* a grid of ``M`` mixes × ``S`` schemes runs on ``min(jobs, M*S)``
  cores instead of one, and
* re-running a benchmark driver after an unrelated edit performs zero
  simulations: each cell's cache key is a deterministic hash of the mix
  pairs, the scheme name, and the **full** :class:`RunProfile`, so a
  result is reused if and only if the inputs that determine it are
  unchanged.

Because each cell builds its own seeded :class:`MultiDomainSystem` from
scratch, parallel execution is *bit-identical* to serial execution (and
to a cache hit: the JSON round-trip used by the cache is exact for
Python floats). ``tests/harness/test_exec.py`` pins both guarantees.

Robustness: each cell gets a configurable timeout and one retry; a cell
that still fails is recorded as a failed :class:`CellOutcome` and the
rest of the grid keeps going — one diverging simulation no longer
aborts a whole figure.

Telemetry: the engine counts cache hits/misses, simulations, retries and
failures, and accumulates per-cell wall-clock and simulated cycles;
:func:`repro.harness.report.render_telemetry` renders the summary and
the optional ``progress`` callback receives one structured line per
completed cell.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError
from repro.harness.runconfig import RunProfile

#: Bump when the cached payload layout or the simulator's semantics
#: change incompatibly; old entries are then ignored, not misread.
CACHE_FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Cells: one independent unit of simulation work
# ----------------------------------------------------------------------
def _profile_token(profile: RunProfile) -> dict[str, Any]:
    """The full profile as a canonical, JSON-able dict (cache identity)."""
    return dataclasses.asdict(profile)


@dataclass(frozen=True)
class MixSchemeCell:
    """One mix simulated under one scheme — a Figure 10/12-17 cell."""

    pairs: tuple[tuple[str, str], ...]
    scheme: str
    profile: RunProfile

    @property
    def label(self) -> str:
        return f"mix[{'|'.join(s + '+' + c for s, c in self.pairs)}]/{self.scheme}"

    def cache_token(self) -> dict[str, Any]:
        return {
            "kind": "mix-scheme",
            "pairs": [list(pair) for pair in self.pairs],
            "scheme": self.scheme,
            "profile": _profile_token(self.profile),
        }

    def execute(self) -> Any:
        from repro.harness.experiment import run_mix_scheme

        return run_mix_scheme(list(self.pairs), self.scheme, self.profile)

    @staticmethod
    def cycles_of(value: Any) -> int:
        return int(value.total_cycles)

    @staticmethod
    def encode(value: Any) -> dict[str, Any]:
        return {
            "scheme": value.scheme,
            "total_cycles": value.total_cycles,
            "workloads": [
                {
                    "label": w.label,
                    "ipc": w.ipc,
                    "assessments": w.assessments,
                    "visible_actions": w.visible_actions,
                    "leakage_bits": w.leakage_bits,
                    "partition_quartiles": list(w.partition_quartiles),
                }
                for w in value.workloads
            ],
        }

    @staticmethod
    def decode(payload: dict[str, Any]) -> Any:
        from repro.harness.experiment import SchemeRunResult, WorkloadResult

        return SchemeRunResult(
            scheme=payload["scheme"],
            total_cycles=payload["total_cycles"],
            workloads=[
                WorkloadResult(
                    label=w["label"],
                    ipc=w["ipc"],
                    assessments=w["assessments"],
                    visible_actions=w["visible_actions"],
                    leakage_bits=w["leakage_bits"],
                    partition_quartiles=tuple(w["partition_quartiles"]),
                )
                for w in payload["workloads"]
            ],
        )


@dataclass(frozen=True)
class SensitivityCell:
    """One benchmark alone at one partition size — a Figure 11 cell."""

    benchmark: str
    partition_lines: int
    profile: RunProfile

    @property
    def label(self) -> str:
        return f"sensitivity[{self.benchmark}]/{self.partition_lines}"

    def cache_token(self) -> dict[str, Any]:
        return {
            "kind": "sensitivity",
            "benchmark": self.benchmark,
            "partition_lines": self.partition_lines,
            "profile": _profile_token(self.profile),
        }

    def execute(self) -> Any:
        from repro.harness.sensitivity import run_benchmark_at_size
        from repro.workloads.spec import SPEC_BENCHMARKS

        return run_benchmark_at_size(
            SPEC_BENCHMARKS[self.benchmark], self.partition_lines, self.profile
        )

    @staticmethod
    def cycles_of(value: Any) -> int | None:
        return None

    @staticmethod
    def encode(value: Any) -> dict[str, Any]:
        return {"ipc": value}

    @staticmethod
    def decode(payload: dict[str, Any]) -> Any:
        return payload["ipc"]


def cell_key(cell: Any) -> str:
    """Deterministic content hash identifying one cell's result."""
    token = {"format": CACHE_FORMAT_VERSION, **cell.cache_token()}
    canonical = json.dumps(token, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------
class ResultCache:
    """Content-addressed JSON store of cell results.

    Entries live at ``<directory>/<key[:2]>/<key>.json`` and are written
    atomically (temp file + rename), so concurrent workers and concurrent
    benchmark sessions can share one cache directory safely.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict[str, Any] | None:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("format") != CACHE_FORMAT_VERSION:
            return None
        return payload

    def put(self, key: str, payload: dict[str, Any]) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"format": CACHE_FORMAT_VERSION, **payload}, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Telemetry
# ----------------------------------------------------------------------
@dataclass
class CellRecord:
    """Per-cell telemetry line."""

    label: str
    status: str  # "hit" | "computed" | "failed"
    wall_seconds: float
    attempts: int
    cycles: int | None = None
    error: str | None = None


@dataclass
class EngineTelemetry:
    """Counters accumulated across one engine's lifetime."""

    cells: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulations: int = 0
    retries: int = 0
    failures: int = 0
    wall_seconds: float = 0.0
    cell_seconds: float = 0.0
    cycles_simulated: int = 0
    records: list[CellRecord] = field(default_factory=list)

    def note(self, record: CellRecord) -> None:
        self.records.append(record)
        self.cells += 1
        self.cell_seconds += record.wall_seconds
        if record.status == "hit":
            self.cache_hits += 1
            return
        self.cache_misses += 1
        if record.status == "computed":
            self.simulations += 1
            if record.cycles is not None:
                self.cycles_simulated += record.cycles
        else:
            self.failures += 1
        self.retries += max(0, record.attempts - 1)


@dataclass
class CellOutcome:
    """Result of running one cell through the engine."""

    cell: Any
    key: str
    value: Any | None
    status: str  # "hit" | "computed" | "failed"
    wall_seconds: float
    attempts: int
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status != "failed"


# ----------------------------------------------------------------------
# Worker entry point (must be importable for multiprocessing)
# ----------------------------------------------------------------------
def _execute_cell(cell: Any) -> tuple[Any, float]:
    """Run one cell in a worker; returns (value, wall_seconds)."""
    start = time.perf_counter()
    value = cell.execute()
    return value, time.perf_counter() - start


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class ExecutionEngine:
    """Fan simulation cells out over a process pool, with caching.

    Parameters
    ----------
    jobs:
        Worker processes. ``1`` (the default) executes serially in the
        calling process — the debugging fallback — but still consults
        the cache. Results are bit-identical either way.
    cache:
        Optional :class:`ResultCache`; ``None`` disables caching.
    timeout:
        Per-cell timeout in seconds (parallel mode only: a serial run
        cannot preempt the simulation it is executing). ``None`` waits
        forever.
    retries:
        How many times a failed or timed-out cell is re-attempted
        (default one retry).
    progress:
        Optional callback receiving one structured line per finished
        cell, e.g. ``print`` or a logger method.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: ResultCache | None = None,
        *,
        timeout: float | None = None,
        retries: int = 1,
        progress: Callable[[str], None] | None = None,
    ):
        if jobs < 1:
            raise ConfigurationError("jobs must be >= 1")
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError("timeout must be positive")
        self.jobs = jobs
        self.cache = cache
        self.timeout = timeout
        self.retries = retries
        self.progress = progress
        self.telemetry = EngineTelemetry()

    # ------------------------------------------------------------------
    def _emit(self, outcome: CellOutcome, done: int, total: int) -> None:
        if self.progress is None:
            return
        cycles = outcome.cell.cycles_of(outcome.value) if outcome.ok else None
        parts = [
            f"[exec {done}/{total}]",
            outcome.cell.label,
            f"status={outcome.status}",
            f"wall={outcome.wall_seconds:.2f}s",
        ]
        if cycles is not None:
            parts.append(f"cycles={cycles}")
        if outcome.attempts > 1:
            parts.append(f"attempts={outcome.attempts}")
        if outcome.error:
            parts.append(f"error={outcome.error}")
        self.progress(" ".join(parts))

    def _finish(
        self, outcome: CellOutcome, done: int, total: int
    ) -> CellOutcome:
        cycles = (
            outcome.cell.cycles_of(outcome.value)
            if outcome.status == "computed"
            else None
        )
        self.telemetry.note(
            CellRecord(
                label=outcome.cell.label,
                status=outcome.status,
                wall_seconds=outcome.wall_seconds,
                attempts=outcome.attempts,
                cycles=cycles,
                error=outcome.error,
            )
        )
        if outcome.status == "computed" and self.cache is not None:
            self.cache.put(
                outcome.key,
                {
                    "cell": outcome.cell.cache_token(),
                    "value": outcome.cell.encode(outcome.value),
                    "wall_seconds": outcome.wall_seconds,
                },
            )
        self._emit(outcome, done, total)
        return outcome

    # ------------------------------------------------------------------
    def run(self, cells: Sequence[Any]) -> list[CellOutcome]:
        """Execute every cell; outcomes come back in input order."""
        start = time.perf_counter()
        total = len(cells)
        outcomes: list[CellOutcome | None] = [None] * total
        done = 0

        pending: list[tuple[int, Any, str]] = []
        for index, cell in enumerate(cells):
            key = cell_key(cell)
            payload = self.cache.get(key) if self.cache is not None else None
            if payload is not None:
                done += 1
                outcomes[index] = self._finish(
                    CellOutcome(
                        cell=cell,
                        key=key,
                        value=cell.decode(payload["value"]),
                        status="hit",
                        wall_seconds=0.0,
                        attempts=0,
                    ),
                    done,
                    total,
                )
            else:
                pending.append((index, cell, key))

        if pending:
            if self.jobs == 1:
                runner = self._run_serial
            else:
                runner = self._run_parallel
            for index, outcome in runner(pending):
                done += 1
                outcomes[index] = self._finish(outcome, done, total)

        self.telemetry.wall_seconds += time.perf_counter() - start
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_serial(self, pending):
        for index, cell, key in pending:
            attempts = 0
            error: str | None = None
            start = time.perf_counter()
            value = None
            status = "failed"
            while attempts <= self.retries:
                attempts += 1
                try:
                    value, _ = _execute_cell(cell)
                    status = "computed"
                    error = None
                    break
                except Exception as exc:  # graceful degradation
                    error = f"{type(exc).__name__}: {exc}"
            yield index, CellOutcome(
                cell=cell,
                key=key,
                value=value,
                status=status,
                wall_seconds=time.perf_counter() - start,
                attempts=attempts,
                error=error,
            )

    def _run_parallel(self, pending):
        context = multiprocessing.get_context()
        processes = min(self.jobs, len(pending))
        with context.Pool(processes=processes) as pool:
            attempts = {index: 0 for index, _, _ in pending}
            round_cells = list(pending)
            failed: dict[int, tuple[Any, str, str]] = {}
            while round_cells:
                handles = [
                    (index, cell, key, pool.apply_async(_execute_cell, (cell,)))
                    for index, cell, key in round_cells
                ]
                retry: list[tuple[int, Any, str]] = []
                for index, cell, key, handle in handles:
                    attempts[index] += 1
                    try:
                        value, wall = handle.get(self.timeout)
                    except multiprocessing.TimeoutError:
                        error = f"timeout after {self.timeout:.1f}s"
                    except Exception as exc:
                        error = f"{type(exc).__name__}: {exc}"
                    else:
                        yield index, CellOutcome(
                            cell=cell,
                            key=key,
                            value=value,
                            status="computed",
                            wall_seconds=wall,
                            attempts=attempts[index],
                            error=None,
                        )
                        continue
                    if attempts[index] <= self.retries:
                        retry.append((index, cell, key))
                    else:
                        failed[index] = (cell, key, error)
                round_cells = retry
            for index, (cell, key, error) in failed.items():
                yield index, CellOutcome(
                    cell=cell,
                    key=key,
                    value=None,
                    status="failed",
                    wall_seconds=0.0,
                    attempts=attempts[index],
                    error=error,
                )


# ----------------------------------------------------------------------
# Environment wiring (shared by the CLI and the benchmark harness)
# ----------------------------------------------------------------------
def engine_from_env(
    default_cache_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> ExecutionEngine:
    """Build an engine from ``REPRO_JOBS`` / ``REPRO_CACHE`` env vars.

    * ``REPRO_JOBS``: worker count (default 1 — the serial fallback);
      ``0`` means one worker per CPU.
    * ``REPRO_CACHE``: set to ``0`` to disable the on-disk cache.
    * ``REPRO_CACHE_DIR``: cache directory (falls back to
      ``default_cache_dir``; if both are unset, caching is off).
    """
    jobs = int(os.environ.get("REPRO_JOBS", "1"))
    if jobs == 0:
        jobs = os.cpu_count() or 1
    cache: ResultCache | None = None
    if os.environ.get("REPRO_CACHE", "1") != "0":
        directory = os.environ.get("REPRO_CACHE_DIR") or default_cache_dir
        if directory is not None:
            cache = ResultCache(directory)
    return ExecutionEngine(jobs=jobs, cache=cache, progress=progress)
