"""Streaming statistics for campaign-scale aggregation (O(1) memory).

A 100k-cell campaign cannot afford to hold every per-cell result in
memory just to print a distribution at the end. This module provides
the constant-memory accumulators the reporting layer aggregates with:

* :class:`P2Quantile` — the P² (Jain & Chlamtac 1985) single-quantile
  estimator: five markers, no samples retained. Exact below five
  observations, a piecewise-parabolic interpolation above.
* :class:`Reservoir` — Vitter's algorithm R with a *deterministic* RNG
  seed, so two runs over the same cell stream keep the same sample and
  reports stay reproducible.
* :class:`Welford` — numerically stable running mean/variance/min/max.
* :class:`StreamingSummary` — the bundle the engine and the tables
  layer actually use: Welford + a set of P² quantiles + an optional
  reservoir, exposed as one ``summary()`` dict.

These sketches apply only *across* cells. Per-cell statistics (e.g.
``partition_size_quartiles``) remain exact and bit-identical — a sketch
never substitutes for a value that feeds the paper's tables.
"""

from __future__ import annotations

import math
import random
from typing import Any, Iterable

__all__ = ["P2Quantile", "Reservoir", "Welford", "StreamingSummary"]


class P2Quantile:
    """P² estimator of one quantile without storing observations.

    Maintains five markers whose heights converge on the
    ``(q*n)``-th order statistic; below five observations the estimate
    is the exact order statistic of what was seen.
    """

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q!r}")
        self.q = q
        self._n = 0
        self._heights: list[float] = []
        # Marker positions (1-based) and their desired positions.
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._incr = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        return self._n

    def add(self, x: float) -> None:
        self._n += 1
        if len(self._heights) < 5:
            self._heights.append(float(x))
            self._heights.sort()
            return
        h = self._heights
        if x < h[0]:
            h[0] = float(x)
            cell = 0
        elif x >= h[4]:
            h[4] = float(x)
            cell = 3
        else:
            cell = 0
            while x >= h[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            self._pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._incr[i]
        for i in (1, 2, 3):
            d = self._desired[i] - self._pos[i]
            if (d >= 1.0 and self._pos[i + 1] - self._pos[i] > 1.0) or (
                d <= -1.0 and self._pos[i - 1] - self._pos[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                self._pos[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, p = self._heights, self._pos
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step)
            * (h[i + 1] - h[i])
            / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step)
            * (h[i] - h[i - 1])
            / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        h, p = self._heights, self._pos
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (p[j] - p[i])

    def value(self) -> float | None:
        """Current estimate (exact for fewer than five observations)."""
        if self._n == 0:
            return None
        if self._n <= len(self._heights):
            # Exact small-sample order statistic (nearest-rank on what
            # was seen; the heights are sorted by construction).
            rank = max(0, min(self._n - 1, math.ceil(self.q * self._n) - 1))
            return self._heights[rank]
        return self._heights[2]


class Reservoir:
    """Fixed-size uniform sample of a stream (algorithm R).

    The RNG is seeded deterministically so the retained sample — and
    any report rendered from it — is identical across re-runs of the
    same cell stream.
    """

    def __init__(self, size: int, *, seed: int = 0):
        if size < 1:
            raise ValueError(f"reservoir size must be >= 1, got {size!r}")
        self.size = size
        self._rng = random.Random(seed)
        self._n = 0
        self._items: list[Any] = []

    @property
    def count(self) -> int:
        return self._n

    @property
    def items(self) -> list[Any]:
        return list(self._items)

    def add(self, item: Any) -> None:
        self._n += 1
        if len(self._items) < self.size:
            self._items.append(item)
            return
        slot = self._rng.randrange(self._n)
        if slot < self.size:
            self._items[slot] = item


class Welford:
    """Running mean/variance/min/max (Welford's online algorithm)."""

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        self.count += 1
        delta = x - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (x - self.mean)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    @property
    def variance(self) -> float:
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)


class StreamingSummary:
    """Welford + P² quantiles + optional reservoir, as one accumulator.

    ``summary()`` renders the canonical dict the reporting layer
    serializes: count/mean/std/min/max plus one ``p<NN>`` key per
    tracked quantile and (when a reservoir is attached) a ``sample``
    list. Total state is O(quantiles + reservoir size) regardless of
    how many observations stream through.
    """

    def __init__(
        self,
        quantiles: Iterable[float] = (0.1, 0.5, 0.9),
        *,
        reservoir: int = 0,
        seed: int = 0,
    ):
        self.welford = Welford()
        self.quantiles = {q: P2Quantile(q) for q in quantiles}
        self.reservoir = Reservoir(reservoir, seed=seed) if reservoir else None

    @property
    def count(self) -> int:
        return self.welford.count

    def add(self, x: float) -> None:
        self.welford.add(x)
        for sketch in self.quantiles.values():
            sketch.add(x)
        if self.reservoir is not None:
            self.reservoir.add(x)

    def quantile(self, q: float) -> float | None:
        sketch = self.quantiles.get(q)
        return sketch.value() if sketch is not None else None

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "count": self.welford.count,
            "mean": self.welford.mean if self.welford.count else None,
            "std": self.welford.std if self.welford.count else None,
            "min": self.welford.minimum if self.welford.count else None,
            "max": self.welford.maximum if self.welford.count else None,
        }
        for q in sorted(self.quantiles):
            out[f"p{round(q * 100):02d}"] = self.quantiles[q].value()
        if self.reservoir is not None:
            out["sample"] = self.reservoir.items
        return out
