"""LLC sensitivity study (Figure 11 and Appendix B of the paper).

Each SPEC benchmark runs alone on a one-core machine at every supported
partition size; its IPC is normalized to the largest (8 MB-equivalent)
partition. The benchmark's *adequate LLC size* is the smallest size
reaching normalized IPC >= 0.9; sizes above 2 MB-equivalent classify the
benchmark as LLC-sensitive (Section 8). The paper finds 8 sensitive
benchmarks out of 36 — the reproduction must recover the same set.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import ArchConfig
from repro.core.annotations import AnnotationVector
from repro.harness.exec import ExecutionEngine, SensitivityCell
from repro.harness.runconfig import RunProfile, SCALED
from repro.harness.store import cached_spec_stream
from repro.obs import metrics as obs_metrics
from repro.schemes.static import StaticScheme
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads.patterns import place_memory_instructions
from repro.workloads.spec import SPEC_BENCHMARKS, SpecBenchmark

#: Same series the mix-workload composer books: a sensitivity stream is
#: one (SPEC-only) trace composition.
_M_BUILDS = obs_metrics.get_registry().counter(
    "repro_workload_builds_total",
    "Full workload-trace compositions performed in this process",
)

#: Normalized-IPC threshold defining the adequate LLC size (Section 8).
ADEQUATE_IPC_THRESHOLD = 0.9


@dataclass(frozen=True)
class SensitivityCurve:
    """One benchmark's IPC across the supported partition sizes."""

    name: str
    sizes_lines: tuple[int, ...]
    ipc: tuple[float, ...]

    @property
    def normalized_ipc(self) -> tuple[float, ...]:
        """IPC normalized to the largest partition (Figure 11's y-axis)."""
        reference = self.ipc[-1]
        if reference <= 0:
            return tuple(0.0 for _ in self.ipc)
        return tuple(v / reference for v in self.ipc)

    def adequate_size_lines(self) -> int:
        """Smallest size with normalized IPC >= 0.9."""
        for size, value in zip(self.sizes_lines, self.normalized_ipc):
            if value >= ADEQUATE_IPC_THRESHOLD:
                return size
        return self.sizes_lines[-1]

    def llc_sensitive(self, static_partition_lines: int) -> bool:
        """Adequate size above the Static partition -> sensitive."""
        return self.adequate_size_lines() > static_partition_lines


def compose_spec_stream_arrays(
    benchmark: SpecBenchmark,
    instructions: int,
    lines_per_mb: int,
    seed: int,
) -> dict[str, np.ndarray]:
    """The expensive half of :func:`build_spec_only_stream`: raw arrays.

    This is the composition the precompute store persists; a sensitivity
    study runs the same benchmark at 9 partition sizes, and every size
    shares this one trace.
    """
    _M_BUILDS.inc()
    rng = np.random.default_rng(seed)
    period = max(1, round(1.0 / benchmark.mem_fraction))
    mem_count = max(1, instructions // period)
    accesses = benchmark.generate_accesses(mem_count, rng, lines_per_mb)
    addresses = place_memory_instructions(accesses, benchmark.mem_fraction)
    return {"addresses": addresses}


def build_spec_only_stream_direct(
    benchmark: SpecBenchmark,
    instructions: int,
    lines_per_mb: int,
    seed: int,
) -> InstructionStream:
    """The store-less build path (composition + assembly in one call)."""
    arrays = compose_spec_stream_arrays(
        benchmark, instructions, lines_per_mb, seed
    )
    addresses = arrays["addresses"]
    return InstructionStream(addresses, AnnotationVector.public(len(addresses)))


def build_spec_only_stream(
    benchmark: SpecBenchmark,
    instructions: int,
    lines_per_mb: int,
    seed: int,
) -> InstructionStream:
    """A standalone (no crypto) stream for one SPEC benchmark.

    Served from the precompute store when one is active (bit-identical,
    shared across all partition sizes and worker processes); otherwise
    built directly.
    """
    return cached_spec_stream(benchmark, instructions, lines_per_mb, seed)


def run_benchmark_at_size(
    benchmark: SpecBenchmark,
    partition_lines: int,
    profile: RunProfile = SCALED,
) -> float:
    """IPC of one benchmark alone at one fixed partition size."""
    arch = ArchConfig.scaled(num_cores=1)
    scale = profile.workload_scale
    stream = build_spec_only_stream(
        benchmark, scale.spec_instructions, scale.lines_per_mb, profile.seed
    )
    core_config = CoreConfig(
        mlp=benchmark.mlp,
        slice_instructions=stream.length,
        warmup_instructions=int(scale.warmup_fraction * stream.length),
    )
    scheme = StaticScheme(arch, partition_lines=partition_lines)
    system = MultiDomainSystem(
        arch,
        [DomainSpec(benchmark.name, stream, core_config)],
        scheme,
        quantum=profile.quantum,
        sample_interval=profile.sample_interval,
    )
    outcome = system.run(max_cycles=profile.max_cycles)
    return outcome.stats[0].ipc


def run_sensitivity_curve(
    benchmark: SpecBenchmark, profile: RunProfile = SCALED
) -> SensitivityCurve:
    """IPC across all supported sizes for one benchmark (one Fig. 11 bar group)."""
    arch = ArchConfig.scaled(num_cores=1)
    sizes = arch.supported_partition_lines
    ipcs = tuple(
        run_benchmark_at_size(benchmark, size, profile) for size in sizes
    )
    return SensitivityCurve(name=benchmark.name, sizes_lines=sizes, ipc=ipcs)


def run_sensitivity_study(
    names: list[str] | None = None,
    profile: RunProfile = SCALED,
    *,
    engine: ExecutionEngine | None = None,
) -> dict[str, SensitivityCurve]:
    """The full Figure 11 study (all 36 benchmarks by default).

    Every ``(benchmark, size)`` point is one independent engine cell —
    36 benchmarks x 9 sizes fan out over the engine's worker pool and
    result cache. A benchmark whose cells failed (after retries) is left
    out of the returned dict rather than aborting the study.
    """
    if names is None:
        names = sorted(SPEC_BENCHMARKS)
    engine = engine if engine is not None else ExecutionEngine()
    sizes = ArchConfig.scaled(num_cores=1).supported_partition_lines
    cells = [
        SensitivityCell(benchmark=name, partition_lines=size, profile=profile)
        for name in names
        for size in sizes
    ]
    outcomes = engine.run(cells, campaign="sensitivity")
    curves: dict[str, SensitivityCurve] = {}
    for index, name in enumerate(names):
        per_size = outcomes[index * len(sizes) : (index + 1) * len(sizes)]
        if all(outcome.ok for outcome in per_size):
            curves[name] = SensitivityCurve(
                name=name,
                sizes_lines=sizes,
                ipc=tuple(outcome.value for outcome in per_size),
            )
    return curves


def classify_benchmarks(
    curves: dict[str, SensitivityCurve],
    static_partition_lines: int = 256,
) -> tuple[list[str], list[str]]:
    """(sensitive, insensitive) names from measured curves."""
    sensitive = sorted(
        name for name, c in curves.items() if c.llc_sensitive(static_partition_lines)
    )
    insensitive = sorted(set(curves) - set(sensitive))
    return sensitive, insensitive
