"""Mix experiments: run one workload mix under the Table 4 schemes.

This is the engine behind Figures 10 and 12-17 and Table 6. A mix of
eight ``SPEC + crypto`` workloads is simulated under Static, Time,
Untangle, and Shared; per-workload IPC (normalized to Static), leakage
per assessment, total leakage, and partition-size distributions are
extracted, matching the panels of each figure group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.harness.exec import ExecutionEngine, MixSchemeCell
from repro.harness.runconfig import RunProfile, SCALED
from repro.harness.store import cached_build_workload
from repro.registry import (
    SchemeSelection,
    canonical_params,
    create_scheme,
    default_campaign_schemes,
    scheme_names,
    scheme_registration,
    scheme_store_needs,
)
from repro.schemes.untangle import get_rate_table, get_worst_case_rate_table
from repro.sim.batch import StackedLanes
from repro.sim.hierarchy import L1ServiceTrace
from repro.sim.system import DomainSpec, MultiDomainSystem, SystemResult
from repro.workloads.mixes import get_mix


def __getattr__(name: str):
    # SCHEME_NAMES stays importable for compatibility but is re-derived
    # from the registry on every access, so registering a scheme — in
    # tree or from a plugin — immediately widens every consumer
    # (CLI choices, differential tests, docs) without a second list to
    # keep in sync.
    if name == "SCHEME_NAMES":
        return scheme_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass
class WorkloadResult:
    """Per-workload outcome under one scheme."""

    label: str
    ipc: float
    assessments: int
    visible_actions: int
    leakage_bits: float
    partition_quartiles: tuple[float, float, float, float, float]

    @property
    def bits_per_assessment(self) -> float:
        return self.leakage_bits / self.assessments if self.assessments else 0.0

    @property
    def maintain_fraction(self) -> float:
        if not self.assessments:
            return 0.0
        return (self.assessments - self.visible_actions) / self.assessments


@dataclass
class SchemeRunResult:
    """Outcome of one mix under one scheme."""

    scheme: str
    workloads: list[WorkloadResult]
    total_cycles: int

    def workload(self, label: str) -> WorkloadResult:
        for result in self.workloads:
            if result.label == label:
                return result
        raise ConfigurationError(f"no workload {label!r} in this run")

    @property
    def mean_bits_per_assessment(self) -> float:
        values = [w.bits_per_assessment for w in self.workloads if w.assessments]
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_total_leakage(self) -> float:
        values = [w.leakage_bits for w in self.workloads]
        return sum(values) / len(values) if values else 0.0

    @property
    def maintain_fraction(self) -> float:
        assessments = sum(w.assessments for w in self.workloads)
        visible = sum(w.visible_actions for w in self.workloads)
        if not assessments:
            return 0.0
        return (assessments - visible) / assessments


@dataclass
class MixResult:
    """Outcome of one mix under all requested schemes."""

    mix_id: int | None
    labels: list[str]
    runs: dict[str, SchemeRunResult] = field(default_factory=dict)

    def normalized_ipc(self, scheme: str) -> dict[str, float]:
        """Per-workload IPC normalized to Static (a figure's bottom row).

        A Static baseline that retired zero instructions for some
        workload makes normalization undefined for the whole mix; this
        raises (naming the stalled workloads) instead of emitting a
        ``0.0`` placeholder, which downstream geomeans used to silently
        drop — *inflating* the reported speedup of every other workload.
        """
        if "static" not in self.runs:
            raise ConfigurationError("normalization requires a static run")
        baseline = {w.label: w.ipc for w in self.runs["static"].workloads}
        stalled = sorted(
            label for label, ipc in baseline.items() if ipc <= 0
        )
        if stalled:
            raise ConfigurationError(
                "static baseline retired zero instructions for "
                f"{', '.join(stalled)} (mix {self.mix_id!r}); normalized "
                "IPC is undefined for this mix — shorten the slice or "
                "inspect the workload instead of trusting a placeholder"
            )
        return {
            w.label: w.ipc / baseline[w.label]
            for w in self.runs[scheme].workloads
        }

    def geomean_speedup(self, scheme: str) -> float:
        """System-wide speedup over Static (geometric mean of IPC ratios).

        Every workload participates: a scheme that stalls one workload
        to zero IPC yields a geomean of exactly ``0.0`` (the
        mathematical value), where filtering non-positive ratios used to
        report the geomean of the *surviving* workloads — overstating a
        scheme precisely when it starves someone.
        """
        ratios = list(self.normalized_ipc(scheme).values())
        if not ratios:
            return 0.0
        if any(r <= 0 for r in ratios):
            return 0.0
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def mix_labels(pairs: list[tuple[str, str]] | tuple[tuple[str, str], ...]) -> list[str]:
    """Per-workload labels for a mix, disambiguating repeated pairs.

    A mix may legitimately run the same ``(spec, crypto)`` pair on two
    cores; labels must still be unique or :meth:`MixResult.normalized_ipc`
    collapses them in the baseline dict and
    :meth:`SchemeRunResult.workload` silently returns the first match.
    Repeats get a ``#2``, ``#3``, ... suffix in mix order.
    """
    counts: dict[str, int] = {}
    labels = []
    for spec, crypto in pairs:
        base = f"{spec}+{crypto}"
        counts[base] = counts.get(base, 0) + 1
        labels.append(base if counts[base] == 1 else f"{base}#{counts[base]}")
    return labels


def make_scheme(
    name: str,
    profile: RunProfile,
    num_domains: int,
    params: dict | None = None,
):
    """Instantiate a registered scheme by name for the given profile.

    The factory lives in the registry (``repro.registry.builtin`` for
    the built-ins; third parties register their own), so any registered
    scheme — not a hard-wired list — is a campaign citizen. ``params``
    are validated against the registration's declared parameter schema.
    """
    return create_scheme(name, profile, num_domains, params)


@dataclass
class PreparedMixScheme:
    """One (mix, scheme) cell built and ready to run.

    :func:`prepare_mix_scheme` / :func:`finalize_mix_scheme` split
    :func:`run_mix_scheme` around the simulation itself, so the
    stacked-lanes executor can build K compatible cells up front (with
    shared workload objects) and drive their systems jointly.
    """

    scheme_name: str
    labels: list[str]
    system: MultiDomainSystem
    profile: RunProfile


def prepare_mix_scheme(
    pairs: list[tuple[str, str]],
    scheme_name: str,
    profile: RunProfile = SCALED,
    *,
    scheme_params: dict | None = None,
    workload_cache: dict | None = None,
    l1_trace_cache: dict | None = None,
) -> PreparedMixScheme:
    """Build the system for one (mix, scheme) cell without running it.

    ``workload_cache`` (keyed by the full workload identity:
    spec, crypto, scale, seed) lets batch-compatible cells share
    composed workload objects. Cells of one stacked group differ only
    in their mix pairs, so many identities repeat across lanes; sharing
    skips redundant composition work and reuses each stream's
    hashed-address cache. Streams are read-only during simulation, so
    sharing cannot couple lanes.

    ``l1_trace_cache`` additionally installs a shared
    :class:`~repro.sim.hierarchy.L1ServiceTrace` per distinct stream:
    the private L1's hit/miss pattern is a pure function of the stream,
    so lanes sharing a workload also share one L1 walk, and every lane
    skips L1 journaling and rollback replays entirely. Results are
    bit-identical with or without the traces.
    """
    workload_keys = []
    workloads = []
    for index, (spec, crypto) in enumerate(pairs):
        key = (spec, crypto, profile.workload_scale, profile.seed + index)
        workload_keys.append(key)
        if workload_cache is not None and key in workload_cache:
            workloads.append(workload_cache[key])
            continue
        built = cached_build_workload(
            spec, crypto, profile.workload_scale, seed=profile.seed + index
        )
        if workload_cache is not None:
            workload_cache[key] = built
        workloads.append(built)
    labels = mix_labels(pairs)
    domains = [
        DomainSpec(label, w.stream, w.core_config)
        for label, w in zip(labels, workloads)
    ]
    scheme = make_scheme(scheme_name, profile, len(domains), scheme_params)
    arch = profile.arch(len(domains))
    system = MultiDomainSystem(
        arch,
        domains,
        scheme,
        quantum=profile.quantum,
        sample_interval=profile.sample_interval,
    )
    if l1_trace_cache is not None:
        for key, core in zip(workload_keys, system.cores):
            # The L1 geometry rides the key so one cache dict can serve
            # mixed-profile call sites without ever cross-installing.
            trace_key = (key, arch.l1_lines, arch.l1_associativity)
            trace = l1_trace_cache.get(trace_key)
            if trace is None:
                trace = L1ServiceTrace.for_stream(core.stream, arch)
                l1_trace_cache[trace_key] = trace
            core.memory.install_l1_trace(trace)
    return PreparedMixScheme(scheme_name, labels, system, profile)


def finalize_mix_scheme(
    prepared: PreparedMixScheme, outcome: SystemResult
) -> SchemeRunResult:
    """Extract the :class:`SchemeRunResult` from a finished system run."""
    results = [
        WorkloadResult(
            label=prepared.labels[i],
            ipc=stats.ipc,
            assessments=stats.assessments,
            visible_actions=stats.visible_actions,
            leakage_bits=stats.leakage_bits,
            partition_quartiles=stats.partition_size_quartiles(),
        )
        for i, stats in enumerate(outcome.stats)
    ]
    return SchemeRunResult(
        scheme=prepared.scheme_name,
        workloads=results,
        total_cycles=outcome.total_cycles,
    )


def run_mix_scheme(
    pairs: list[tuple[str, str]],
    scheme_name: str,
    profile: RunProfile = SCALED,
    *,
    scheme_params: dict | None = None,
) -> SchemeRunResult:
    """Simulate one mix under one scheme."""
    prepared = prepare_mix_scheme(
        pairs, scheme_name, profile, scheme_params=scheme_params
    )
    outcome = prepared.system.run(max_cycles=profile.max_cycles)
    return finalize_mix_scheme(prepared, outcome)


#: Process-level L1 service-trace memo: traces are pure functions of
#: (stream identity, L1 geometry), so successive stacked groups in one
#: worker — e.g. several batch chunks of a campaign — reuse each other's
#: walks the same way ``cached_build_workload`` reuses compositions.
#: Cleared wholesale past the cap to bound memory on huge campaigns.
_L1_TRACE_MEMO: dict = {}
_L1_TRACE_MEMO_CAP = 128


def warm_l1_traces(entries: list[tuple[list[tuple[str, str]], RunProfile]]) -> int:
    """Pre-walk the L1 service trace of every distinct workload stream.

    ``entries`` holds ``(pairs, profile)`` per upcoming cell. The
    parallel engine calls this in the *parent* process right before
    forking its workers when lane stacking is enabled: traces (and the
    workload builds they require) are pure functions of the cell
    inputs, so one walk here is inherited copy-on-write by every forked
    worker, instead of each worker repeating it — on a campaign whose
    chunks reuse streams across workers, that turns W duplicate walks
    into one. Returns the number of traces walked.
    """
    if len(_L1_TRACE_MEMO) > _L1_TRACE_MEMO_CAP:
        _L1_TRACE_MEMO.clear()
    warmed = 0
    for pairs, profile in entries:
        arch = profile.arch(len(pairs))
        for index, (spec, crypto) in enumerate(pairs):
            key = (spec, crypto, profile.workload_scale, profile.seed + index)
            trace_key = (key, arch.l1_lines, arch.l1_associativity)
            if trace_key in _L1_TRACE_MEMO:
                continue
            built = cached_build_workload(
                spec, crypto, profile.workload_scale, seed=profile.seed + index
            )
            trace = L1ServiceTrace.for_stream(built.stream, arch)
            trace.warm()
            _L1_TRACE_MEMO[trace_key] = trace
            warmed += 1
    return warmed


def warm_rate_tables(entries: list[tuple]) -> int:
    """Pre-solve the Rmax rate table for every distinct scheme config.

    ``entries`` holds ``(scheme_name, profile)`` — optionally
    ``(scheme_name, profile, scheme_params)`` — per upcoming cell. Like
    :func:`warm_l1_traces`, this runs in the parent right before workers
    fork: the table is a pure function of the channel model, and the
    module-level memo in :mod:`repro.schemes.untangle` is inherited
    copy-on-write, so the Dinkelbach solve happens once per campaign
    instead of once per worker that draws an untangle chunk. Which
    tables a scheme needs comes from its registration's ``store_needs``
    hook, so registered third-party schemes warm automatically. Returns
    the number of tables solved.
    """
    warmed = 0
    seen: set[tuple] = set()
    for entry in entries:
        scheme_name, profile = entry[0], entry[1]
        params = dict(entry[2]) if len(entry) > 2 and entry[2] else None
        try:
            needs = scheme_store_needs(scheme_name, profile, params)
        except ConfigurationError:
            continue
        for need in needs:
            if need[0] not in ("rmax", "rmax-worst") or need in seen:
                continue
            seen.add(need)
            if need[0] == "rmax":
                get_rate_table(need[1], capacity=need[2])
            else:
                get_worst_case_rate_table(need[1])
            warmed += 1
    return warmed


def run_mix_schemes_stacked(
    cells: list[tuple],
    max_lanes: int | None = None,
) -> list:
    """Execute batch-compatible (mix, scheme) cells as stacked lanes.

    Every entry is a ``(pairs, scheme_name, profile)`` tuple —
    optionally ``(pairs, scheme_name, profile, scheme_params)``; entries
    must share scheme and profile (the engine's batch-group contract —
    same quantum schedule and array shapes). Lanes run through one
    :class:`~repro.sim.batch.StackedLanes` driver, sharing workload
    objects and the vectorized per-round cumsum; results are
    bit-identical to calling :func:`run_mix_scheme` on each entry
    sequentially. The returned list holds one
    :class:`SchemeRunResult` per entry, in order — or, for a lane that
    raised, its exception instance (peers are unaffected).

    ``max_lanes`` caps the lanes stacked at once; remaining cells form
    further groups (workload sharing still spans the whole call).
    """
    if max_lanes is not None and max_lanes < 1:
        raise ConfigurationError("max_lanes must be >= 1")
    shared: dict = {}
    if len(_L1_TRACE_MEMO) > _L1_TRACE_MEMO_CAP:
        _L1_TRACE_MEMO.clear()
    prepared = [
        prepare_mix_scheme(
            cell[0],
            cell[1],
            cell[2],
            scheme_params=(
                dict(cell[3]) if len(cell) > 3 and cell[3] else None
            ),
            workload_cache=shared,
            l1_trace_cache=_L1_TRACE_MEMO,
        )
        for cell in cells
    ]
    results: list = []
    step = max_lanes or len(prepared)
    for start in range(0, len(prepared), step):
        group = prepared[start : start + step]
        stack = StackedLanes(
            [p.system.run_gen(max_cycles=p.profile.max_cycles) for p in group]
        ).run()
        for prep, outcome in zip(group, stack.results):
            if isinstance(outcome, BaseException):
                results.append(outcome)
            else:
                results.append(
                    finalize_mix_scheme(prep, prep.system.finish(*outcome))
                )
    return results


def _assemble_mix_results(
    grid: list[tuple[int | None, list[tuple[str, str]]]],
    schemes: tuple,
    profile: RunProfile,
    engine: ExecutionEngine,
    campaign: str | None = None,
) -> list[MixResult]:
    """Fan every (mix, scheme) cell of a grid through one engine run.

    ``schemes`` entries are registry names or
    :class:`~repro.registry.SchemeSelection` objects (name + parameter
    overrides + result alias) — scenario compilation reuses this exact
    function, so a declarative spec produces the same cells, in the
    same order, with the same cache keys as a hand-wired call.

    A failed cell (after the engine's retries) leaves its scheme out of
    that mix's ``runs`` dict instead of aborting the grid; the failure
    stays visible in ``engine.telemetry``. The ``campaign`` tag labels
    this grid's entries in the engine's crash-recovery journal.
    """
    selections = [SchemeSelection.of(scheme) for scheme in schemes]
    # Fail fast on unknown names / bad overrides — before any cell is
    # submitted. Otherwise a typo'd scheme just becomes a failed cell
    # and silently drops its column from every mix's ``runs``.
    for selection in selections:
        scheme_registration(selection.name).validated_params(
            dict(selection.params)
        )
    cells = [
        MixSchemeCell(
            pairs=tuple(pairs),
            scheme=selection.name,
            profile=profile,
            scheme_params=canonical_params(selection.params),
        )
        for _, pairs in grid
        for selection in selections
    ]
    outcomes = engine.run(cells, campaign=campaign)
    results = []
    cursor = 0
    for mix_id, pairs in grid:
        result = MixResult(mix_id=mix_id, labels=mix_labels(pairs))
        for selection in selections:
            outcome = outcomes[cursor]
            cursor += 1
            if outcome.ok:
                result.runs[selection.run_key] = outcome.value
        results.append(result)
    return results


def run_mix(
    mix_id: int,
    profile: RunProfile = SCALED,
    schemes: tuple | None = None,
    *,
    engine: ExecutionEngine | None = None,
) -> MixResult:
    """Simulate one paper mix under the requested schemes.

    ``schemes`` defaults to the registry's campaign set (the paper's
    Static/Time/Untangle/Shared columns); entries may be registry names
    or :class:`~repro.registry.SchemeSelection` overrides.

    Without an ``engine`` the schemes run serially in-process, uncached —
    the historical behavior. With one, scheme cells fan out over the
    engine's worker pool and hit its result cache; results are
    bit-identical either way.
    """
    engine = engine if engine is not None else ExecutionEngine()
    schemes = schemes if schemes is not None else default_campaign_schemes()
    pairs = get_mix(mix_id)
    return _assemble_mix_results(
        [(mix_id, pairs)], schemes, profile, engine, campaign=f"mix{mix_id}"
    )[0]


def run_custom_mix(
    pairs: list[tuple[str, str]],
    profile: RunProfile = SCALED,
    schemes: tuple | None = None,
    *,
    engine: ExecutionEngine | None = None,
) -> MixResult:
    """Simulate an arbitrary mix of (spec, crypto) pairs."""
    engine = engine if engine is not None else ExecutionEngine()
    schemes = schemes if schemes is not None else default_campaign_schemes()
    return _assemble_mix_results(
        [(None, list(pairs))], schemes, profile, engine, campaign="custom-mix"
    )[0]


def run_mix_grid(
    mix_ids: tuple[int, ...] | list[int],
    profile: RunProfile = SCALED,
    schemes: tuple | None = None,
    *,
    engine: ExecutionEngine | None = None,
    campaign: str | None = None,
) -> dict[int, MixResult]:
    """Simulate several paper mixes at once.

    All ``len(mix_ids) * len(schemes)`` cells are submitted in a single
    engine pass, so a parallel engine can overlap cells *across* mixes —
    the whole-figure fan-out behind Figures 10/12-17 and Table 6.
    """
    engine = engine if engine is not None else ExecutionEngine()
    schemes = schemes if schemes is not None else default_campaign_schemes()
    grid = [(mix_id, get_mix(mix_id)) for mix_id in mix_ids]
    if campaign is None:
        campaign = f"mix-grid[{','.join(str(m) for m in mix_ids)}]"
    results = _assemble_mix_results(grid, schemes, profile, engine, campaign)
    return {mix_id: result for (mix_id, _), result in zip(grid, results)}
