"""Mix experiments: run one workload mix under the Table 4 schemes.

This is the engine behind Figures 10 and 12-17 and Table 6. A mix of
eight ``SPEC + crypto`` workloads is simulated under Static, Time,
Untangle, and Shared; per-workload IPC (normalized to Static), leakage
per assessment, total leakage, and partition-size distributions are
extracted, matching the panels of each figure group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.harness.runconfig import RunProfile, SCALED
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.shared import SharedScheme
from repro.schemes.static import StaticScheme
from repro.schemes.timebased import TimeScheme
from repro.schemes.untangle import UntangleScheme, default_channel_model
from repro.core.rates import worst_case_table
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads.mixes import get_mix
from repro.workloads.workload import build_workload

#: Scheme names accepted by :func:`run_mix_scheme`.
SCHEME_NAMES = ("static", "time", "untangle", "untangle-unopt", "shared")


@dataclass
class WorkloadResult:
    """Per-workload outcome under one scheme."""

    label: str
    ipc: float
    assessments: int
    visible_actions: int
    leakage_bits: float
    partition_quartiles: tuple[int, int, int, int, int]

    @property
    def bits_per_assessment(self) -> float:
        return self.leakage_bits / self.assessments if self.assessments else 0.0

    @property
    def maintain_fraction(self) -> float:
        if not self.assessments:
            return 0.0
        return (self.assessments - self.visible_actions) / self.assessments


@dataclass
class SchemeRunResult:
    """Outcome of one mix under one scheme."""

    scheme: str
    workloads: list[WorkloadResult]
    total_cycles: int

    def workload(self, label: str) -> WorkloadResult:
        for result in self.workloads:
            if result.label == label:
                return result
        raise ConfigurationError(f"no workload {label!r} in this run")

    @property
    def mean_bits_per_assessment(self) -> float:
        values = [w.bits_per_assessment for w in self.workloads if w.assessments]
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_total_leakage(self) -> float:
        values = [w.leakage_bits for w in self.workloads]
        return sum(values) / len(values) if values else 0.0

    @property
    def maintain_fraction(self) -> float:
        assessments = sum(w.assessments for w in self.workloads)
        visible = sum(w.visible_actions for w in self.workloads)
        if not assessments:
            return 0.0
        return (assessments - visible) / assessments


@dataclass
class MixResult:
    """Outcome of one mix under all requested schemes."""

    mix_id: int | None
    labels: list[str]
    runs: dict[str, SchemeRunResult] = field(default_factory=dict)

    def normalized_ipc(self, scheme: str) -> dict[str, float]:
        """Per-workload IPC normalized to Static (a figure's bottom row)."""
        if "static" not in self.runs:
            raise ConfigurationError("normalization requires a static run")
        baseline = {w.label: w.ipc for w in self.runs["static"].workloads}
        return {
            w.label: (w.ipc / baseline[w.label] if baseline[w.label] > 0 else 0.0)
            for w in self.runs[scheme].workloads
        }

    def geomean_speedup(self, scheme: str) -> float:
        """System-wide speedup over Static (geometric mean of IPC ratios)."""
        ratios = [r for r in self.normalized_ipc(scheme).values() if r > 0]
        if not ratios:
            return 0.0
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def make_scheme(name: str, profile: RunProfile, num_domains: int):
    """Instantiate a scheme by name for the given profile."""
    arch = profile.arch(num_domains)
    if name == "static":
        return StaticScheme(arch)
    if name == "shared":
        return SharedScheme(arch)
    if name == "time":
        return TimeScheme(
            arch,
            interval=profile.time_interval,
            monitor_window=profile.monitor_window,
            monitor_sampling_shift=profile.monitor_sampling_shift,
            hysteresis=profile.hysteresis,
        )
    if name in ("untangle", "untangle-unopt"):
        model = default_channel_model(profile.cooldown)
        schedule = ProgressSchedule(
            instructions_per_assessment=profile.untangle_instructions,
            cooldown=model.cooldown,
            delay=model.delay,
            seed=profile.seed + 17,
        )
        table = None
        if name == "untangle-unopt":
            # Active-attacker accounting (Section 9): every assessment
            # charged at the single-cooldown rate — no Maintain credit.
            table = worst_case_table(model)
        return UntangleScheme(
            arch,
            schedule,
            rmax_table=table,
            monitor_window=profile.monitor_window,
            monitor_sampling_shift=profile.monitor_sampling_shift,
            hysteresis=profile.hysteresis,
        )
    raise ConfigurationError(f"unknown scheme {name!r}; known: {SCHEME_NAMES}")


def run_mix_scheme(
    pairs: list[tuple[str, str]],
    scheme_name: str,
    profile: RunProfile = SCALED,
) -> SchemeRunResult:
    """Simulate one mix under one scheme."""
    workloads = [
        build_workload(
            spec, crypto, profile.workload_scale, seed=profile.seed + index
        )
        for index, (spec, crypto) in enumerate(pairs)
    ]
    domains = [
        DomainSpec(w.label, w.stream, w.core_config) for w in workloads
    ]
    scheme = make_scheme(scheme_name, profile, len(domains))
    system = MultiDomainSystem(
        profile.arch(len(domains)),
        domains,
        scheme,
        quantum=profile.quantum,
        sample_interval=profile.sample_interval,
    )
    outcome = system.run(max_cycles=profile.max_cycles)
    results = [
        WorkloadResult(
            label=workloads[i].label,
            ipc=stats.ipc,
            assessments=stats.assessments,
            visible_actions=stats.visible_actions,
            leakage_bits=stats.leakage_bits,
            partition_quartiles=stats.partition_size_quartiles(),
        )
        for i, stats in enumerate(outcome.stats)
    ]
    return SchemeRunResult(
        scheme=scheme_name,
        workloads=results,
        total_cycles=outcome.total_cycles,
    )


def run_mix(
    mix_id: int,
    profile: RunProfile = SCALED,
    schemes: tuple[str, ...] = ("static", "time", "untangle", "shared"),
) -> MixResult:
    """Simulate one paper mix under the requested schemes."""
    pairs = get_mix(mix_id)
    result = MixResult(
        mix_id=mix_id, labels=[f"{s}+{c}" for s, c in pairs]
    )
    for scheme_name in schemes:
        result.runs[scheme_name] = run_mix_scheme(pairs, scheme_name, profile)
    return result


def run_custom_mix(
    pairs: list[tuple[str, str]],
    profile: RunProfile = SCALED,
    schemes: tuple[str, ...] = ("static", "time", "untangle", "shared"),
) -> MixResult:
    """Simulate an arbitrary mix of (spec, crypto) pairs."""
    result = MixResult(mix_id=None, labels=[f"{s}+{c}" for s, c in pairs])
    for scheme_name in schemes:
        result.runs[scheme_name] = run_mix_scheme(pairs, scheme_name, profile)
    return result
