"""Mix experiments: run one workload mix under the Table 4 schemes.

This is the engine behind Figures 10 and 12-17 and Table 6. A mix of
eight ``SPEC + crypto`` workloads is simulated under Static, Time,
Untangle, and Shared; per-workload IPC (normalized to Static), leakage
per assessment, total leakage, and partition-size distributions are
extracted, matching the panels of each figure group.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.harness.exec import ExecutionEngine, MixSchemeCell
from repro.harness.runconfig import RunProfile, SCALED
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.shared import SharedScheme
from repro.schemes.static import StaticScheme
from repro.schemes.timebased import TimeScheme
from repro.harness.store import cached_build_workload
from repro.schemes.untangle import (
    UntangleScheme,
    default_channel_model,
    get_worst_case_rate_table,
)
from repro.sim.system import DomainSpec, MultiDomainSystem
from repro.workloads.mixes import get_mix

#: Scheme names accepted by :func:`run_mix_scheme`.
SCHEME_NAMES = ("static", "time", "untangle", "untangle-unopt", "shared")


@dataclass
class WorkloadResult:
    """Per-workload outcome under one scheme."""

    label: str
    ipc: float
    assessments: int
    visible_actions: int
    leakage_bits: float
    partition_quartiles: tuple[float, float, float, float, float]

    @property
    def bits_per_assessment(self) -> float:
        return self.leakage_bits / self.assessments if self.assessments else 0.0

    @property
    def maintain_fraction(self) -> float:
        if not self.assessments:
            return 0.0
        return (self.assessments - self.visible_actions) / self.assessments


@dataclass
class SchemeRunResult:
    """Outcome of one mix under one scheme."""

    scheme: str
    workloads: list[WorkloadResult]
    total_cycles: int

    def workload(self, label: str) -> WorkloadResult:
        for result in self.workloads:
            if result.label == label:
                return result
        raise ConfigurationError(f"no workload {label!r} in this run")

    @property
    def mean_bits_per_assessment(self) -> float:
        values = [w.bits_per_assessment for w in self.workloads if w.assessments]
        return sum(values) / len(values) if values else 0.0

    @property
    def mean_total_leakage(self) -> float:
        values = [w.leakage_bits for w in self.workloads]
        return sum(values) / len(values) if values else 0.0

    @property
    def maintain_fraction(self) -> float:
        assessments = sum(w.assessments for w in self.workloads)
        visible = sum(w.visible_actions for w in self.workloads)
        if not assessments:
            return 0.0
        return (assessments - visible) / assessments


@dataclass
class MixResult:
    """Outcome of one mix under all requested schemes."""

    mix_id: int | None
    labels: list[str]
    runs: dict[str, SchemeRunResult] = field(default_factory=dict)

    def normalized_ipc(self, scheme: str) -> dict[str, float]:
        """Per-workload IPC normalized to Static (a figure's bottom row)."""
        if "static" not in self.runs:
            raise ConfigurationError("normalization requires a static run")
        baseline = {w.label: w.ipc for w in self.runs["static"].workloads}
        return {
            w.label: (w.ipc / baseline[w.label] if baseline[w.label] > 0 else 0.0)
            for w in self.runs[scheme].workloads
        }

    def geomean_speedup(self, scheme: str) -> float:
        """System-wide speedup over Static (geometric mean of IPC ratios)."""
        ratios = [r for r in self.normalized_ipc(scheme).values() if r > 0]
        if not ratios:
            return 0.0
        return math.exp(sum(math.log(r) for r in ratios) / len(ratios))


def mix_labels(pairs: list[tuple[str, str]] | tuple[tuple[str, str], ...]) -> list[str]:
    """Per-workload labels for a mix, disambiguating repeated pairs.

    A mix may legitimately run the same ``(spec, crypto)`` pair on two
    cores; labels must still be unique or :meth:`MixResult.normalized_ipc`
    collapses them in the baseline dict and
    :meth:`SchemeRunResult.workload` silently returns the first match.
    Repeats get a ``#2``, ``#3``, ... suffix in mix order.
    """
    counts: dict[str, int] = {}
    labels = []
    for spec, crypto in pairs:
        base = f"{spec}+{crypto}"
        counts[base] = counts.get(base, 0) + 1
        labels.append(base if counts[base] == 1 else f"{base}#{counts[base]}")
    return labels


def make_scheme(name: str, profile: RunProfile, num_domains: int):
    """Instantiate a scheme by name for the given profile."""
    arch = profile.arch(num_domains)
    if name == "static":
        return StaticScheme(arch)
    if name == "shared":
        return SharedScheme(arch)
    if name == "time":
        return TimeScheme(
            arch,
            interval=profile.time_interval,
            monitor_window=profile.monitor_window,
            monitor_sampling_shift=profile.monitor_sampling_shift,
            hysteresis=profile.hysteresis,
        )
    if name in ("untangle", "untangle-unopt"):
        model = default_channel_model(profile.cooldown)
        schedule = ProgressSchedule(
            instructions_per_assessment=profile.untangle_instructions,
            cooldown=model.cooldown,
            delay=model.delay,
            seed=profile.seed + 17,
        )
        table = None
        if name == "untangle-unopt":
            # Active-attacker accounting (Section 9): every assessment
            # charged at the single-cooldown rate — no Maintain credit.
            # Memoized under its own worst-case key, never shared with
            # the optimized table.
            table = get_worst_case_rate_table(profile.cooldown)
        return UntangleScheme(
            arch,
            schedule,
            rmax_table=table,
            monitor_window=profile.monitor_window,
            monitor_sampling_shift=profile.monitor_sampling_shift,
            hysteresis=profile.hysteresis,
        )
    raise ConfigurationError(f"unknown scheme {name!r}; known: {SCHEME_NAMES}")


def run_mix_scheme(
    pairs: list[tuple[str, str]],
    scheme_name: str,
    profile: RunProfile = SCALED,
) -> SchemeRunResult:
    """Simulate one mix under one scheme."""
    workloads = [
        cached_build_workload(
            spec, crypto, profile.workload_scale, seed=profile.seed + index
        )
        for index, (spec, crypto) in enumerate(pairs)
    ]
    labels = mix_labels(pairs)
    domains = [
        DomainSpec(label, w.stream, w.core_config)
        for label, w in zip(labels, workloads)
    ]
    scheme = make_scheme(scheme_name, profile, len(domains))
    system = MultiDomainSystem(
        profile.arch(len(domains)),
        domains,
        scheme,
        quantum=profile.quantum,
        sample_interval=profile.sample_interval,
    )
    outcome = system.run(max_cycles=profile.max_cycles)
    results = [
        WorkloadResult(
            label=labels[i],
            ipc=stats.ipc,
            assessments=stats.assessments,
            visible_actions=stats.visible_actions,
            leakage_bits=stats.leakage_bits,
            partition_quartiles=stats.partition_size_quartiles(),
        )
        for i, stats in enumerate(outcome.stats)
    ]
    return SchemeRunResult(
        scheme=scheme_name,
        workloads=results,
        total_cycles=outcome.total_cycles,
    )


def _assemble_mix_results(
    grid: list[tuple[int | None, list[tuple[str, str]]]],
    schemes: tuple[str, ...],
    profile: RunProfile,
    engine: ExecutionEngine,
    campaign: str | None = None,
) -> list[MixResult]:
    """Fan every (mix, scheme) cell of a grid through one engine run.

    A failed cell (after the engine's retries) leaves its scheme out of
    that mix's ``runs`` dict instead of aborting the grid; the failure
    stays visible in ``engine.telemetry``. The ``campaign`` tag labels
    this grid's entries in the engine's crash-recovery journal.
    """
    cells = [
        MixSchemeCell(pairs=tuple(pairs), scheme=scheme, profile=profile)
        for _, pairs in grid
        for scheme in schemes
    ]
    outcomes = engine.run(cells, campaign=campaign)
    results = []
    cursor = 0
    for mix_id, pairs in grid:
        result = MixResult(mix_id=mix_id, labels=mix_labels(pairs))
        for scheme in schemes:
            outcome = outcomes[cursor]
            cursor += 1
            if outcome.ok:
                result.runs[scheme] = outcome.value
        results.append(result)
    return results


def run_mix(
    mix_id: int,
    profile: RunProfile = SCALED,
    schemes: tuple[str, ...] = ("static", "time", "untangle", "shared"),
    *,
    engine: ExecutionEngine | None = None,
) -> MixResult:
    """Simulate one paper mix under the requested schemes.

    Without an ``engine`` the schemes run serially in-process, uncached —
    the historical behavior. With one, scheme cells fan out over the
    engine's worker pool and hit its result cache; results are
    bit-identical either way.
    """
    engine = engine if engine is not None else ExecutionEngine()
    pairs = get_mix(mix_id)
    return _assemble_mix_results(
        [(mix_id, pairs)], schemes, profile, engine, campaign=f"mix{mix_id}"
    )[0]


def run_custom_mix(
    pairs: list[tuple[str, str]],
    profile: RunProfile = SCALED,
    schemes: tuple[str, ...] = ("static", "time", "untangle", "shared"),
    *,
    engine: ExecutionEngine | None = None,
) -> MixResult:
    """Simulate an arbitrary mix of (spec, crypto) pairs."""
    engine = engine if engine is not None else ExecutionEngine()
    return _assemble_mix_results(
        [(None, list(pairs))], schemes, profile, engine, campaign="custom-mix"
    )[0]


def run_mix_grid(
    mix_ids: tuple[int, ...] | list[int],
    profile: RunProfile = SCALED,
    schemes: tuple[str, ...] = ("static", "time", "untangle", "shared"),
    *,
    engine: ExecutionEngine | None = None,
    campaign: str | None = None,
) -> dict[int, MixResult]:
    """Simulate several paper mixes at once.

    All ``len(mix_ids) * len(schemes)`` cells are submitted in a single
    engine pass, so a parallel engine can overlap cells *across* mixes —
    the whole-figure fan-out behind Figures 10/12-17 and Table 6.
    """
    engine = engine if engine is not None else ExecutionEngine()
    grid = [(mix_id, get_mix(mix_id)) for mix_id in mix_ids]
    if campaign is None:
        campaign = f"mix-grid[{','.join(str(m) for m in mix_ids)}]"
    results = _assemble_mix_results(grid, schemes, profile, engine, campaign)
    return {mix_id: result for (mix_id, _), result in zip(grid, results)}
