"""One-cell cProfile capture for simulation campaigns.

Simulation cells run deep inside the execution engine — possibly on a
worker process — so ``python -m cProfile`` on the CLI entry point either
profiles only the supervisor or drowns the signal in pool machinery.
This module instead profiles *one matching cell* where it executes:

* ``REPRO_PROFILE=1`` (or ``all``) profiles the first cell that runs;
* ``REPRO_PROFILE=<substring>`` profiles the first cell whose label
  contains the substring (labels look like ``mix[...]/untangle``);
* ``python -m repro --cprofile [SUBSTRING] ...`` sets the same up from
  the command line.

The capture fires **once per campaign** even with parallel workers: the
first matching executor atomically claims a per-campaign sentinel file
(the supervisor's PID scopes it, which every forked/spawned worker
shares via ``os.getppid()``), so exactly one ``.pstats`` file appears
no matter how many workers race.

The stats land in ``profile-<cell>.pstats`` next to the result cache
directory (the cache dir's parent — typically the working directory),
or under ``REPRO_PROFILE_DIR`` when set. Read them with::

    python -m pstats profile-<cell>.pstats
    % sort cumtime
    % stats 20

(``sort tottime`` shows self-time — where the simulator actually burns
cycles; ``callers <func>`` walks up the call graph.)
"""

from __future__ import annotations

import cProfile
import os
import re
import sys
import tempfile
from pathlib import Path
from typing import Any, Callable

#: Which cell to profile: unset/empty = none, ``1``/``all`` = first cell,
#: anything else = first cell whose label contains the value.
PROFILE_ENV = "REPRO_PROFILE"

#: Where the ``.pstats`` file is written (optional override).
PROFILE_DIR_ENV = "REPRO_PROFILE_DIR"

_MATCH_ALL = ("1", "true", "yes", "on", "all")


def profile_request() -> str | None:
    """The active ``REPRO_PROFILE`` request, or ``None``."""
    raw = os.environ.get(PROFILE_ENV, "").strip()
    return raw or None


def _matches(request: str, label: str) -> bool:
    return request.lower() in _MATCH_ALL or request in label


def _slug(label: str) -> str:
    return re.sub(r"[^A-Za-z0-9._+-]+", "-", label).strip("-") or "cell"


def output_dir() -> Path:
    """Directory the ``.pstats`` file is written to.

    ``REPRO_PROFILE_DIR`` wins; otherwise the parent of the result cache
    directory (``REPRO_CACHE_DIR``), i.e. *beside* the cache, so the
    profile is not swept away with a cache wipe; otherwise the working
    directory.
    """
    explicit = os.environ.get(PROFILE_DIR_ENV, "").strip()
    if explicit:
        return Path(explicit)
    cache_dir = os.environ.get("REPRO_CACHE_DIR", "").strip()
    if cache_dir:
        return Path(cache_dir).parent
    return Path.cwd()


def _sentinel_path(root_pid: int) -> Path:
    return Path(tempfile.gettempdir()) / f".repro-profile-claim-{root_pid}"


def reset_claim() -> None:
    """Forget the calling campaign root's one-capture claim.

    The execution engine calls this at the start of every campaign so
    each ``run()`` (not each process lifetime) gets one capture.
    """
    try:
        _sentinel_path(os.getpid()).unlink()
    except OSError:
        pass


def _claim(worker_id: int | None) -> bool:
    """Atomically claim the one-capture-per-campaign sentinel.

    The sentinel is keyed by the campaign's root PID — ``os.getppid()``
    on a pool worker, ``os.getpid()`` in serial mode — so concurrent
    workers of one campaign race for a single O_EXCL creation, while a
    later campaign (different root PID) gets a fresh sentinel.
    """
    root_pid = os.getppid() if worker_id is not None else os.getpid()
    sentinel = _sentinel_path(root_pid)
    try:
        os.close(os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY))
    except FileExistsError:
        return False
    except OSError:
        return True  # tmpdir trouble: profile anyway rather than silently not
    return True


def maybe_profile(
    label: str, thunk: Callable[[], Any], worker_id: int | None = None
) -> Any:
    """Run ``thunk``, under cProfile if it is this campaign's chosen cell.

    Returns ``thunk()``'s value either way; on capture, dumps
    ``profile-<label>.pstats`` into :func:`output_dir` and prints the
    path (with a reading hint) to stderr. The stats are dumped even if
    the cell raises, so a hung-then-interrupted cell still yields its
    profile.
    """
    request = profile_request()
    if request is None or not _matches(request, label) or not _claim(worker_id):
        return thunk()
    directory = output_dir()
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"profile-{_slug(label)}.pstats"
    profiler = cProfile.Profile()
    try:
        return profiler.runcall(thunk)
    finally:
        profiler.dump_stats(path)
        from repro.obs import trace as obs_trace

        obs_trace.event("profile.capture", label=label, path=str(path))
        print(
            f"[profile] {label} -> {path}\n"
            f"[profile] read it with: python -m pstats {path} "
            "(then 'sort cumtime' + 'stats 20')",
            file=sys.stderr,
        )
