"""Cross-cell precompute store: shared workload traces + Rmax artifacts.

Campaign wall-time after the batched kernel (PR 3) is dominated by
*redundant cross-cell work*: ``run_mix_scheme`` regenerates the identical
``(spec, crypto, scale, seed)`` workload trace for every scheme the mix
is simulated under, and every worker process re-runs the Dinkelbach
solver behind Untangle's rate table — work the paper explicitly models
as *precomputed* artifacts consumed at runtime (Section 5.3.4).

This module is the content-addressed store for those artifacts:

* **Workload traces** — the numpy arrays behind one
  :class:`~repro.workloads.workload.BuiltWorkload` (addresses,
  annotation masks, stall cycles), keyed by the full composition inputs.
  Two backends:

  - a **file backend** (``<store-dir>/traces/``): arrays are ``.npy``
    files attached with ``np.load(mmap_mode="r")`` — every process
    mapping the same file shares one copy in the page cache, so
    :class:`~repro.harness.exec.ExecutionEngine` workers attach
    **zero-copy** whether they were forked or spawned;
  - a **shared-memory backend** (``multiprocessing.shared_memory``)
    for configurations with no usable directory: one segment per trace,
    deterministically named from a session token exported through the
    environment (``REPRO_STORE_SHM``) so forked workers inherit the
    mapping and spawned workers re-attach by name.

* **Rmax tables** — a checksummed JSON artifact per channel-model key
  (``<store-dir>/rmax/``), consumed by the keyed memoizer in
  :mod:`repro.schemes.untangle` so a warm campaign performs zero
  ``solve_rmax`` calls. (The process-level memoizer itself lives with
  the scheme; this module only persists/loads the solved entries.)

Both stores are **bit-identical** to the regenerate path: arrays are
stored raw (dtype + bytes, checksummed) and the Rmax entries round-trip
through JSON, which is exact for Python floats. Corrupt artifacts are
quarantined with the result cache's ``*.corrupt`` convention and
recomputed.

The *active* store is process-global (:func:`get_active_store`): the
execution engine activates its store for the duration of a run and
exports ``REPRO_STORE_DIR`` / ``REPRO_STORE_SHM`` so worker processes —
fork or spawn — resolve the same store from the environment.
``REPRO_PRECOMPUTE=off`` (or ``--no-precompute-store``) disables the
whole layer and forces the legacy in-process build path.
"""

from __future__ import annotations

import atexit
import dataclasses
import hashlib
import json
import os
import shutil
import struct
import tempfile
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: ``on`` (default) enables the precompute store; ``off`` forces the
#: legacy build-everything-in-process path.
PRECOMPUTE_ENV = "REPRO_PRECOMPUTE"
#: Directory of the file-backed store (exported to workers).
STORE_DIR_ENV = "REPRO_STORE_DIR"
#: Session token of the shared-memory-backed store (exported to workers).
STORE_SHM_ENV = "REPRO_STORE_SHM"

#: Bump when the trace layout changes incompatibly; old entries are then
#: quarantined instead of misread.
STORE_FORMAT_VERSION = 1

_TRUTHY = ("1", "true", "yes", "on")
_FALSY = ("0", "false", "no", "off")

_REG = obs_metrics.get_registry()
_M_STORE = {
    (kind, outcome): _REG.counter(
        "repro_store_requests_total",
        "Precompute-store lookups by artifact kind and outcome",
        kind=kind,
        outcome=outcome,
    )
    for kind in ("trace", "rmax")
    for outcome in ("hit", "miss", "quarantined")
}
_M_BYTES = _REG.counter(
    "repro_store_bytes_total",
    "Bytes served zero-copy from the trace store",
    kind="trace",
)


def _canonical(token: dict[str, Any]) -> str:
    return json.dumps(token, sort_keys=True, separators=(",", ":"))


def store_digest(token: dict[str, Any]) -> str:
    """Deterministic content hash identifying one precomputed artifact."""
    return hashlib.sha256(_canonical(token).encode("utf-8")).hexdigest()


def _array_checksum(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).data).hexdigest()


# ----------------------------------------------------------------------
# Tokens (the key schema; see docs/performance.md)
# ----------------------------------------------------------------------
def workload_token(
    spec: str, crypto: str, scale, seed: int, secret: int
) -> dict[str, Any]:
    """Identity of one composed workload trace.

    ``timing_jitter`` is deliberately absent: jitter perturbs the *core
    timing model* at assembly, never the composed arrays.
    """
    return {
        "kind": "workload-trace",
        "format": STORE_FORMAT_VERSION,
        "spec": spec,
        "crypto": crypto,
        "scale": dataclasses.asdict(scale),
        "seed": seed,
        "secret": secret,
    }


def spec_stream_token(
    benchmark: str, instructions: int, lines_per_mb: int, seed: int
) -> dict[str, Any]:
    """Identity of one standalone SPEC stream (sensitivity study)."""
    return {
        "kind": "spec-stream",
        "format": STORE_FORMAT_VERSION,
        "benchmark": benchmark,
        "instructions": instructions,
        "lines_per_mb": lines_per_mb,
        "seed": seed,
    }


def rmax_token(
    model, capacity: int, solver_iterations: int, solver_seed: int
) -> dict[str, Any]:
    """Identity of one solved Rmax table (full channel-model parameters)."""
    return {
        "kind": "rmax-table",
        "format": STORE_FORMAT_VERSION,
        "model": {
            "cooldown": model.cooldown,
            "resolution": model.resolution,
            "max_duration": model.max_duration,
            # Lists, not tuples: the token must compare equal to its own
            # JSON round-trip (the on-disk artifact stores it verbatim).
            "delay": [
                [int(v), p] for v, p in sorted(model.delay.items())
            ],
        },
        "capacity": capacity,
        "solver_iterations": solver_iterations,
        "solver_seed": solver_seed,
    }


# ----------------------------------------------------------------------
# File backend: memory-mapped .npy files under the store directory
# ----------------------------------------------------------------------
class _FileBackend:
    """Traces as directories of ``.npy`` files, attached via ``mmap``.

    One entry is ``traces/<digest[:2]>/<digest>/`` holding ``meta.json``
    (array names, dtypes, shapes, checksums, and the full key token for
    on-disk debuggability) plus one ``<name>.npy`` per array. Entries
    are written atomically (temp directory + ``os.replace``) so
    concurrent campaigns can share one store directory safely.
    """

    persistent = True

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    def _entry(self, digest: str) -> Path:
        return self.directory / "traces" / digest[:2] / digest

    def describe(self) -> str:
        return f"file:{self.directory}"

    def _quarantine(self, entry: Path) -> None:
        _M_STORE[("trace", "quarantined")].inc()
        obs_trace.event("store.quarantine", kind="trace", path=str(entry))
        target = entry.with_name(entry.name + ".corrupt")
        try:
            if target.exists():
                shutil.rmtree(target, ignore_errors=True)
            os.replace(entry, target)
        except OSError:
            shutil.rmtree(entry, ignore_errors=True)

    def load(self, digest: str) -> dict[str, np.ndarray] | None:
        entry = self._entry(digest)
        try:
            meta = json.loads((entry / "meta.json").read_text())
        except OSError:
            return None  # genuinely absent — a plain miss
        except ValueError:
            self._quarantine(entry)
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("format") != STORE_FORMAT_VERSION
            or not isinstance(meta.get("arrays"), dict)
        ):
            self._quarantine(entry)
            return None
        arrays: dict[str, np.ndarray] = {}
        for name, spec in meta["arrays"].items():
            try:
                array = np.load(entry / f"{name}.npy", mmap_mode="r")
            except (OSError, ValueError):
                self._quarantine(entry)
                return None
            if (
                str(array.dtype) != spec.get("dtype")
                or list(array.shape) != spec.get("shape")
                or _array_checksum(array) != spec.get("sha256")
            ):
                self._quarantine(entry)
                return None
            arrays[name] = array
        return arrays

    def store(
        self, digest: str, token: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        entry = self._entry(digest)
        entry.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(
            tempfile.mkdtemp(dir=entry.parent, prefix=f".{digest[:8]}-")
        )
        try:
            meta = {"format": STORE_FORMAT_VERSION, "token": token, "arrays": {}}
            for name, array in arrays.items():
                array = np.ascontiguousarray(array)
                np.save(tmp / f"{name}.npy", array)
                meta["arrays"][name] = {
                    "dtype": str(array.dtype),
                    "shape": list(array.shape),
                    "sha256": _array_checksum(array),
                }
            (tmp / "meta.json").write_text(json.dumps(meta, sort_keys=True))
            try:
                os.replace(tmp, entry)
            except OSError:
                # Lost a benign race: another process stored this entry
                # first. Use theirs.
                shutil.rmtree(tmp, ignore_errors=True)
        except OSError:
            shutil.rmtree(tmp, ignore_errors=True)
            return arrays  # store failed; serve the in-memory build
        loaded = self.load(digest)
        return loaded if loaded is not None else arrays

    def release(self) -> None:  # files persist; nothing to unlink
        pass


# ----------------------------------------------------------------------
# Shared-memory backend: one named segment per trace
# ----------------------------------------------------------------------
#: Segment layout: 8-byte little-endian header length, JSON header
#: (array names -> dtype/shape/offset/nbytes), then the raw array bytes
#: at 64-byte-aligned offsets.
_SHM_ALIGN = 64


def _shm_module():
    from multiprocessing import shared_memory

    return shared_memory


def _defuse_shm(shm) -> None:
    """Close a segment handle whose buffer may still be exported.

    Zero-copy views served from the segment can outlive the store;
    ``SharedMemory.close`` then raises ``BufferError`` (and its
    ``__del__`` would print it as an ignored exception). Dropping the
    handle's own references instead lets the numpy views keep the
    mapping alive exactly as long as they need it — the fd is closed
    and the name is already unlinked, so nothing leaks.
    """
    try:
        shm.close()
        return
    except BufferError:
        pass
    try:
        if shm._fd >= 0:
            os.close(shm._fd)
            shm._fd = -1
    except (OSError, AttributeError):
        pass
    try:
        shm._buf = None
        shm._mmap = None
    except AttributeError:
        pass


def _untrack_shm(shm) -> None:
    """Detach a segment from the resource tracker.

    An attaching (non-owning) process must not let Python's resource
    tracker unlink a segment it does not own at interpreter exit — on
    3.11 every ``SharedMemory(name)`` registers itself. Ownership and
    unlinking are managed explicitly by the creating process.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _ShmBackend:
    """Traces in named POSIX shared-memory segments.

    Used when no store directory is available (e.g. fully cache-less
    runs). The engine process *owns* the segments: it creates them
    during populate and unlinks them on teardown — including the SIGINT
    path, plus an ``atexit`` net. Worker processes attach by
    deterministic name (``repro-<token>-<digest16>``) derived from the
    session token in ``REPRO_STORE_SHM``; a worker that cannot attach
    falls back to building in-process rather than creating segments the
    owner would never clean up.
    """

    persistent = False

    def __init__(self, token: str, owner: bool):
        self.token = token
        self.owner = owner
        self._segments: dict[str, Any] = {}  # digest -> SharedMemory
        if owner:
            atexit.register(self.release)

    def describe(self) -> str:
        return f"shm:{self.token}"

    def _name(self, digest: str) -> str:
        return f"repro-{self.token}-{digest[:16]}"

    def _views(self, shm) -> dict[str, np.ndarray] | None:
        buf = shm.buf
        try:
            (header_len,) = struct.unpack_from("<Q", buf, 0)
            header = json.loads(bytes(buf[8 : 8 + header_len]).decode("utf-8"))
            arrays: dict[str, np.ndarray] = {}
            for name, spec in header["arrays"].items():
                array = np.frombuffer(
                    buf,
                    dtype=np.dtype(spec["dtype"]),
                    count=int(np.prod(spec["shape"], dtype=np.int64)),
                    offset=spec["offset"],
                ).reshape(spec["shape"])
                array.flags.writeable = False
                arrays[name] = array
            return arrays
        except (ValueError, KeyError, struct.error):
            return None

    def load(self, digest: str) -> dict[str, np.ndarray] | None:
        shm_mod = _shm_module()
        try:
            shm = shm_mod.SharedMemory(name=self._name(digest), create=False)
        except (FileNotFoundError, OSError):
            return None
        if not self.owner:
            _untrack_shm(shm)
        views = self._views(shm)
        if views is None:
            shm.close()
            _M_STORE[("trace", "quarantined")].inc()
            obs_trace.event(
                "store.quarantine", kind="trace", path=self._name(digest)
            )
            return None
        # Keep the segment referenced for as long as the views live.
        self._segments[digest] = shm
        return views

    def store(
        self, digest: str, token: dict[str, Any], arrays: dict[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        if not self.owner:
            return arrays  # workers never create segments (see class doc)
        # owner_pid lets repro.harness.reaper tell a segment whose owner
        # was SIGKILL'd (stale, reap) from one backing a live campaign.
        header: dict[str, Any] = {
            "format": STORE_FORMAT_VERSION,
            "owner_pid": os.getpid(),
            "arrays": {},
        }
        payload = {
            name: np.ascontiguousarray(array) for name, array in arrays.items()
        }
        # Reserve a generous header: offsets are only known once the
        # header length is fixed, so size it from a draft with offsets.
        draft = {
            name: {
                "dtype": str(array.dtype),
                "shape": list(array.shape),
                "offset": 0,
                "nbytes": array.nbytes,
            }
            for name, array in payload.items()
        }
        header["arrays"] = draft
        header_len = len(json.dumps(header).encode("utf-8")) + 16 * len(draft)
        offset = 8 + header_len
        for name, array in payload.items():
            offset = (offset + _SHM_ALIGN - 1) // _SHM_ALIGN * _SHM_ALIGN
            draft[name]["offset"] = offset
            offset += array.nbytes
        blob = json.dumps(header).encode("utf-8")
        if len(blob) > header_len:  # pragma: no cover - 16B/array is ample
            header_len = len(blob)
        shm_mod = _shm_module()
        try:
            shm = shm_mod.SharedMemory(
                name=self._name(digest), create=True, size=max(offset, 1)
            )
        except FileExistsError:
            existing = self.load(digest)
            return existing if existing is not None else arrays
        except OSError:
            return arrays
        struct.pack_into("<Q", shm.buf, 0, len(blob))
        shm.buf[8 : 8 + len(blob)] = blob
        for name, array in payload.items():
            start = draft[name]["offset"]
            shm.buf[start : start + array.nbytes] = array.tobytes()
        self._segments[digest] = shm
        views = self._views(shm)
        return views if views is not None else arrays

    def release(self) -> None:
        for shm in self._segments.values():
            if self.owner:
                try:
                    shm.unlink()
                except (FileNotFoundError, OSError):
                    pass
            _defuse_shm(shm)
        self._segments.clear()


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
class PrecomputeStore:
    """Content-addressed store of precomputed campaign artifacts.

    Parameters
    ----------
    directory:
        Root of the file-backed store (trace arrays under ``traces/``,
        Rmax JSON artifacts under ``rmax/``). ``None`` selects the
        shared-memory backend (traces only — Rmax artifacts need a
        directory; without one the process-level memoizer plus fork
        inheritance still dedupes solves within a campaign).
    shm_token:
        Attach to an existing shared-memory store by session token
        (worker side). Ignored when ``directory`` is given.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        shm_token: str | None = None,
    ):
        self._attached: dict[str, dict[str, np.ndarray]] = {}
        self._rmax_cache: dict[str, list[dict[str, Any]]] = {}
        if directory is not None:
            self.directory: Path | None = Path(directory)
            self._backend: Any = _FileBackend(self.directory)
        else:
            self.directory = None
            token = shm_token or os.urandom(4).hex()
            self._backend = _ShmBackend(token, owner=shm_token is None)

    # ------------------------------------------------------------------
    def describe(self) -> str:
        return self._backend.describe()

    def export_env(self) -> None:
        """Publish this store's identity for (fork or spawn) workers."""
        if self.directory is not None:
            os.environ[STORE_DIR_ENV] = str(self.directory.resolve())
            os.environ.pop(STORE_SHM_ENV, None)
        else:
            os.environ[STORE_SHM_ENV] = self._backend.token
            os.environ.pop(STORE_DIR_ENV, None)

    # ------------------------------------------------------------------
    # Trace arrays
    # ------------------------------------------------------------------
    def trace_arrays(
        self,
        token: dict[str, Any],
        builder: Callable[[], dict[str, np.ndarray]],
    ) -> dict[str, np.ndarray]:
        """The named arrays for ``token``, building at most once per store.

        A hit attaches zero-copy (mmap view or shared-memory view); a
        miss runs ``builder`` and persists its arrays for every other
        process of the campaign. Served arrays are read-only; the
        round-trip is byte-exact (checksummed on first attach).
        """
        digest = store_digest(token)
        cached = self._attached.get(digest)
        if cached is not None:
            _M_STORE[("trace", "hit")].inc()
            return cached
        loaded = self._backend.load(digest)
        if loaded is not None:
            _M_STORE[("trace", "hit")].inc()
            _M_BYTES.inc(sum(a.nbytes for a in loaded.values()))
            self._attached[digest] = loaded
            return loaded
        _M_STORE[("trace", "miss")].inc()
        arrays = builder()
        stored = self._backend.store(digest, token, arrays)
        self._attached[digest] = stored
        return stored

    def has_trace(self, token: dict[str, Any]) -> bool:
        digest = store_digest(token)
        return digest in self._attached or self._backend.load(digest) is not None

    # ------------------------------------------------------------------
    # Rmax artifacts (file-backed only)
    # ------------------------------------------------------------------
    def _rmax_path(self, digest: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / "rmax" / f"{digest}.json"

    @staticmethod
    def _entries_checksum(entries: list[dict[str, Any]]) -> str:
        return hashlib.sha256(_canonical({"entries": entries}).encode()).hexdigest()

    def _quarantine_rmax(self, path: Path) -> None:
        _M_STORE[("rmax", "quarantined")].inc()
        obs_trace.event("store.quarantine", kind="rmax", path=str(path))
        try:
            os.replace(path, path.with_name(path.name + ".corrupt"))
        except OSError:
            pass

    def rmax_entries(self, token: dict[str, Any]) -> list[dict[str, Any]] | None:
        """Solved entries for ``token``, or ``None`` if not stored.

        Counts a hit only on success; the *miss* is counted by the
        caller once it decides to solve (so a memoizer hit upstream
        never double-books).
        """
        digest = store_digest(token)
        cached = self._rmax_cache.get(digest)
        if cached is not None:
            _M_STORE[("rmax", "hit")].inc()
            return cached
        path = self._rmax_path(digest)
        if path is None:
            return None
        try:
            payload = json.loads(path.read_text())
        except OSError:
            return None
        except ValueError:
            self._quarantine_rmax(path)
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STORE_FORMAT_VERSION
            or payload.get("token") != token
            or not isinstance(payload.get("entries"), list)
            or payload.get("sha256") != self._entries_checksum(payload["entries"])
        ):
            self._quarantine_rmax(path)
            return None
        _M_STORE[("rmax", "hit")].inc()
        self._rmax_cache[digest] = payload["entries"]
        return payload["entries"]

    def put_rmax_entries(
        self, token: dict[str, Any], entries: list[dict[str, Any]]
    ) -> None:
        digest = store_digest(token)
        self._rmax_cache[digest] = entries
        path = self._rmax_path(digest)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": STORE_FORMAT_VERSION,
            "sha256": self._entries_checksum(entries),
            "token": token,
            "entries": entries,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=f".{digest[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def count_rmax_miss(self) -> None:
        """Book one Rmax store miss (called by the solving memoizer)."""
        _M_STORE[("rmax", "miss")].inc()

    # ------------------------------------------------------------------
    # Populate / teardown (engine lifecycle)
    # ------------------------------------------------------------------
    def populate(self, needs: Iterable[tuple], jobs: int = 1) -> int:
        """Precompute every distinct need before cells fan out.

        ``needs`` are the tuples produced by the cells' ``store_needs``
        hooks — see :meth:`repro.harness.exec.MixSchemeCell.store_needs`.
        Unknown kinds are ignored (forward compatibility). Returns the
        number of distinct needs ensured.
        """
        distinct = list(dict.fromkeys(tuple(need) for need in needs))
        for need in distinct:
            kind = need[0]
            if kind == "trace":
                _, spec, crypto, scale, seed = need
                ensure_workload_trace(self, spec, crypto, scale, seed)
            elif kind == "spec-stream":
                _, benchmark, instructions, lines_per_mb, seed = need
                ensure_spec_stream_trace(
                    self, benchmark, instructions, lines_per_mb, seed
                )
            elif kind == "rmax":
                from repro.schemes.untangle import populate_rate_table

                _, cooldown, capacity = need
                populate_rate_table(cooldown, capacity=capacity, jobs=jobs)
            elif kind == "rmax-worst":
                from repro.schemes.untangle import populate_rate_table

                (_, cooldown) = need
                populate_rate_table(
                    cooldown, capacity=1, worst_case=True, jobs=jobs
                )
        return len(distinct)

    def release(self) -> None:
        """Drop attachments; unlink shared-memory segments (owner only).

        Called by the engine on run exit — including the SIGINT path —
        and again from ``atexit`` as a net. Idempotent; a file-backed
        store keeps its on-disk entries (that persistence *is* the warm
        path).
        """
        self._attached.clear()
        self._rmax_cache.clear()
        self._backend.release()


# ----------------------------------------------------------------------
# Active-store resolution (process-global; environment-driven in workers)
# ----------------------------------------------------------------------
_ACTIVE: PrecomputeStore | None = None
_ACTIVE_SET = False
_ENV_STORE: tuple[tuple[str | None, ...], PrecomputeStore | None] | None = None


def set_active_store(store: PrecomputeStore | None) -> None:
    """Explicitly activate (or deactivate) a store for this process.

    An explicit activation overrides environment resolution;
    ``clear_active_store`` reverts to the environment.
    """
    global _ACTIVE, _ACTIVE_SET
    _ACTIVE = store
    _ACTIVE_SET = True


def clear_active_store() -> None:
    global _ACTIVE, _ACTIVE_SET
    _ACTIVE = None
    _ACTIVE_SET = False


def precompute_from_env() -> bool:
    """Whether the precompute store is enabled (``REPRO_PRECOMPUTE``).

    Defaults to on. Malformed values raise
    :class:`~repro.errors.ConfigurationError` naming the offending
    value and the accepted forms, matching ``engine_from_env``.
    """
    raw = os.environ.get(PRECOMPUTE_ENV, "").strip().lower()
    if not raw or raw in _TRUTHY:
        return True
    if raw in _FALSY:
        return False
    raise ConfigurationError(
        f"{PRECOMPUTE_ENV}={os.environ.get(PRECOMPUTE_ENV)!r} is not a "
        f"recognized switch; accepted: {'/'.join(_TRUTHY)} to enable, "
        f"{'/'.join(_FALSY)} to disable"
    )


def get_active_store() -> PrecomputeStore | None:
    """The store in effect for this process, or ``None``.

    Resolution order: an explicit :func:`set_active_store` wins;
    otherwise the environment (``REPRO_PRECOMPUTE`` gate, then
    ``REPRO_STORE_DIR`` or ``REPRO_STORE_SHM``) — which is how engine
    workers, forked *or* spawned, find the campaign's store.
    """
    if _ACTIVE_SET:
        return _ACTIVE
    global _ENV_STORE
    key = (
        os.environ.get(PRECOMPUTE_ENV),
        os.environ.get(STORE_DIR_ENV),
        os.environ.get(STORE_SHM_ENV),
    )
    if _ENV_STORE is not None and _ENV_STORE[0] == key:
        return _ENV_STORE[1]
    store: PrecomputeStore | None = None
    if precompute_from_env():
        if key[1]:
            store = PrecomputeStore(key[1])
        elif key[2]:
            store = PrecomputeStore(shm_token=key[2])
    _ENV_STORE = (key, store)
    return store


# ----------------------------------------------------------------------
# Store-aware builders (the seams the harness calls)
# ----------------------------------------------------------------------
def ensure_workload_trace(
    store: PrecomputeStore, spec: str, crypto: str, scale, seed: int,
    secret: int = 0,
) -> dict[str, np.ndarray]:
    from repro.workloads.workload import compose_workload_arrays

    return store.trace_arrays(
        workload_token(spec, crypto, scale, seed, secret),
        lambda: compose_workload_arrays(
            spec, crypto, scale, seed=seed, secret=secret
        ),
    )


def ensure_spec_stream_trace(
    store: PrecomputeStore,
    benchmark: str,
    instructions: int,
    lines_per_mb: int,
    seed: int,
) -> dict[str, np.ndarray]:
    def build() -> dict[str, np.ndarray]:
        from repro.harness.sensitivity import compose_spec_stream_arrays
        from repro.workloads.spec import SPEC_BENCHMARKS

        return compose_spec_stream_arrays(
            SPEC_BENCHMARKS[benchmark], instructions, lines_per_mb, seed
        )

    return store.trace_arrays(
        spec_stream_token(benchmark, instructions, lines_per_mb, seed), build
    )


def cached_build_workload(
    spec_name: str,
    crypto_name: str,
    scale=None,
    *,
    seed: int = 0,
    secret: int = 0,
    timing_jitter: int = 0,
):
    """:func:`~repro.workloads.workload.build_workload` through the store.

    With no active store this *is* the legacy build path; with one, the
    composed arrays come from the store (bit-identical, zero-copy on a
    hit) and only the cheap assembly runs per call.
    """
    from repro.workloads.workload import (
        WorkloadScale,
        assemble_workload,
        build_workload,
    )

    store = get_active_store()
    if store is None:
        return build_workload(
            spec_name,
            crypto_name,
            scale,
            seed=seed,
            secret=secret,
            timing_jitter=timing_jitter,
        )
    if scale is None:
        scale = WorkloadScale()
    arrays = ensure_workload_trace(
        store, spec_name, crypto_name, scale, seed, secret
    )
    return assemble_workload(
        spec_name,
        crypto_name,
        scale,
        arrays,
        seed=seed,
        timing_jitter=timing_jitter,
    )


def cached_spec_stream(
    benchmark, instructions: int, lines_per_mb: int, seed: int
):
    """Sensitivity-study stream through the store (or legacy build)."""
    from repro.core.annotations import AnnotationVector
    from repro.harness.sensitivity import build_spec_only_stream_direct
    from repro.sim.cpu import InstructionStream

    store = get_active_store()
    if store is None:
        return build_spec_only_stream_direct(
            benchmark, instructions, lines_per_mb, seed
        )
    arrays = ensure_spec_stream_trace(
        store, benchmark.name, instructions, lines_per_mb, seed
    )
    addresses = arrays["addresses"]
    return InstructionStream(
        addresses, AnnotationVector.public(len(addresses))
    )


# ----------------------------------------------------------------------
# Telemetry plumbing (shared with the execution engine)
# ----------------------------------------------------------------------
#: Snapshot keys -> (metric name, labels) read back from the registry.
_STAT_SERIES: dict[str, tuple[str, dict[str, str]]] = {
    "store_trace_hits": (
        "repro_store_requests_total", {"kind": "trace", "outcome": "hit"}
    ),
    "store_trace_misses": (
        "repro_store_requests_total", {"kind": "trace", "outcome": "miss"}
    ),
    "store_rmax_hits": (
        "repro_store_requests_total", {"kind": "rmax", "outcome": "hit"}
    ),
    "store_rmax_misses": (
        "repro_store_requests_total", {"kind": "rmax", "outcome": "miss"}
    ),
    "store_quarantined_trace": (
        "repro_store_requests_total",
        {"kind": "trace", "outcome": "quarantined"},
    ),
    "store_quarantined_rmax": (
        "repro_store_requests_total",
        {"kind": "rmax", "outcome": "quarantined"},
    ),
    "store_trace_bytes": ("repro_store_bytes_total", {"kind": "trace"}),
    "workload_builds": ("repro_workload_builds_total", {}),
    "rmax_solves": ("repro_rmax_solves_total", {}),
    # Not store counters, but they ride the same worker→parent delta
    # channel: stacked-lanes execution happens wherever the chunk ran,
    # and the parent's telemetry/exporters must see it either way.
    "stacked_cells": ("repro_stacked_cells_total", {}),
    "lane_divergences": ("repro_stack_divergences_total", {}),
}


def store_stats_snapshot() -> dict[str, float]:
    """Current process-local values of every store-related counter."""
    registry = obs_metrics.get_registry()
    return {
        key: registry.counter(name, **labels).value
        for key, (name, labels) in _STAT_SERIES.items()
    }


def store_stats_delta(
    before: dict[str, float], after: dict[str, float]
) -> dict[str, float]:
    """Per-key increase between two snapshots (only non-zero keys)."""
    return {
        key: after[key] - before[key]
        for key in _STAT_SERIES
        if after.get(key, 0.0) != before.get(key, 0.0)
    }


def apply_store_stats_delta(delta: dict[str, float]) -> None:
    """Re-apply a worker's counter delta to this process's registry.

    Worker processes accumulate store/build/solve counters in their own
    registries; the engine ships the per-cell delta back with each
    result and replays it here so the parent registry — the one the
    exporters read — accounts for work wherever it ran.
    """
    registry = obs_metrics.get_registry()
    for key, amount in delta.items():
        series = _STAT_SERIES.get(key)
        if series is not None and amount > 0:
            registry.counter(series[0], **series[1]).inc(amount)
