"""Table generators (Table 6 and the Section 9 active-attacker study)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.exec import ExecutionEngine
from repro.harness.experiment import MixResult, run_mix_grid
from repro.harness.runconfig import RunProfile, SCALED
from repro.harness.streamstats import StreamingSummary


@dataclass(frozen=True)
class Table6Row:
    """One mix's leakage summary (Table 6 of the paper)."""

    mix_id: int
    time_bits_per_assessment: float
    time_total_bits: float
    untangle_bits_per_assessment: float
    untangle_total_bits: float

    @property
    def per_assessment_reduction(self) -> float:
        """Fractional reduction of leakage per assessment vs Time."""
        if self.time_bits_per_assessment <= 0:
            return 0.0
        return 1.0 - self.untangle_bits_per_assessment / self.time_bits_per_assessment


@dataclass(frozen=True)
class Table6:
    """The full Table 6 plus the paper's headline average."""

    rows: list[Table6Row]

    @property
    def average_reduction(self) -> float:
        """Mean per-assessment leakage reduction across mixes.

        The paper reports 78% across its mixes ("workloads leak 78% less
        under Untangle than under Time").
        """
        if not self.rows:
            return 0.0
        return sum(r.per_assessment_reduction for r in self.rows) / len(self.rows)


def table6_row(mix_id: int, result: MixResult) -> Table6Row:
    """Extract one Table 6 row from a finished mix result."""
    time_run = result.runs["time"]
    untangle_run = result.runs["untangle"]
    return Table6Row(
        mix_id=mix_id,
        time_bits_per_assessment=time_run.mean_bits_per_assessment,
        time_total_bits=time_run.mean_total_leakage,
        untangle_bits_per_assessment=untangle_run.mean_bits_per_assessment,
        untangle_total_bits=untangle_run.mean_total_leakage,
    )


def table6(
    profile: RunProfile = SCALED,
    mix_ids: tuple[int, ...] = (1, 2, 3, 4),
    results: dict[int, MixResult] | None = None,
    *,
    engine: ExecutionEngine | None = None,
) -> Table6:
    """Compute Table 6 (runs the mixes unless given results).

    Mixes not supplied via ``results`` are simulated in one engine pass
    so their (mix, scheme) cells can run in parallel and hit the cache.
    """
    missing = tuple(
        mix_id
        for mix_id in mix_ids
        if results is None or mix_id not in results
    )
    computed = (
        run_mix_grid(
            missing,
            profile,
            schemes=("static", "time", "untangle"),
            engine=engine,
            campaign="table6",
        )
        if missing
        else {}
    )
    rows = []
    for mix_id in mix_ids:
        result = (
            results[mix_id]
            if results is not None and mix_id in results
            else computed[mix_id]
        )
        rows.append(table6_row(mix_id, result))
    return Table6(rows=rows)


class CampaignDistributions:
    """Campaign-level leakage and IPC distributions, per scheme.

    Accumulates every workload of every mix into streaming sketches
    (:class:`~repro.harness.streamstats.StreamingSummary`), so rendering
    the cross-campaign distribution of ``bits_per_assessment`` and IPC
    costs O(schemes) memory however many cells the campaign ran — a
    100k-cell sweep aggregates in the same footprint as a 4-mix one.

    Per-cell statistics are untouched: the sketches only summarize
    *across* cells, never replace the exact per-cell values that feed
    the paper's tables.
    """

    def __init__(self, *, quantiles: tuple[float, ...] = (0.1, 0.5, 0.9)):
        self._quantiles = quantiles
        self._leakage: dict[str, StreamingSummary] = {}
        self._ipc: dict[str, StreamingSummary] = {}

    def _sketches(self, scheme: str) -> tuple[StreamingSummary, StreamingSummary]:
        if scheme not in self._leakage:
            self._leakage[scheme] = StreamingSummary(self._quantiles)
            self._ipc[scheme] = StreamingSummary(self._quantiles)
        return self._leakage[scheme], self._ipc[scheme]

    @property
    def schemes(self) -> list[str]:
        return sorted(self._leakage)

    @property
    def count(self) -> int:
        return sum(s.count for s in self._ipc.values())

    def add(self, scheme: str, *, leakage_bits: float, ipc: float) -> None:
        leakage, ipc_sketch = self._sketches(scheme)
        leakage.add(leakage_bits)
        ipc_sketch.add(ipc)

    def add_mix_result(self, result: MixResult) -> None:
        """Fold every workload of every scheme run into the sketches."""
        for scheme, run in result.runs.items():
            for workload in run.workloads:
                self.add(
                    scheme,
                    leakage_bits=workload.bits_per_assessment,
                    ipc=workload.ipc,
                )

    def summary(self) -> dict[str, dict[str, dict]]:
        """``{scheme: {"leakage_bits": {...}, "ipc": {...}}}``."""
        return {
            scheme: {
                "leakage_bits": self._leakage[scheme].summary(),
                "ipc": self._ipc[scheme].summary(),
            }
            for scheme in self.schemes
        }


@dataclass(frozen=True)
class ActiveAttackerSummary:
    """Section 9's unoptimized-vs-optimized leakage comparison."""

    optimized_bits_per_assessment: float
    unoptimized_bits_per_assessment: float

    @property
    def amplification(self) -> float:
        if self.optimized_bits_per_assessment <= 0:
            return 0.0
        return (
            self.unoptimized_bits_per_assessment
            / self.optimized_bits_per_assessment
        )


def active_attacker_summary(
    profile: RunProfile = SCALED,
    mix_ids: tuple[int, ...] = (1, 4),
    *,
    engine: ExecutionEngine | None = None,
) -> ActiveAttackerSummary:
    """Average leakage with and without the Maintain optimization.

    Runs each mix twice under Untangle — once with the optimized rate
    table and once with the worst-case (capacity-1) table that models an
    attacker forcing a visible action at every assessment — and averages
    bits per assessment across all workloads (Section 9: 3.8 bits vs
    0.7 bits in the paper).
    """
    grid = run_mix_grid(
        mix_ids,
        profile,
        schemes=("untangle", "untangle-unopt"),
        engine=engine,
        campaign="active-attacker",
    )
    optimized = []
    unoptimized = []
    for mix_id in mix_ids:
        result = grid[mix_id]
        optimized.extend(
            w.bits_per_assessment
            for w in result.runs["untangle"].workloads
            if w.assessments
        )
        unoptimized.extend(
            w.bits_per_assessment
            for w in result.runs["untangle-unopt"].workloads
            if w.assessments
        )
    return ActiveAttackerSummary(
        optimized_bits_per_assessment=sum(optimized) / max(len(optimized), 1),
        unoptimized_bits_per_assessment=sum(unoptimized) / max(len(unoptimized), 1),
    )
