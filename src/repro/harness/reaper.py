"""Startup reaping of resources orphaned by killed campaign runs.

The engine tears its shared state down on every *survivable* exit path
— normal completion, failure, SIGINT/SIGTERM, ``atexit`` — but nothing
survives SIGKILL or a machine reset, which leak:

* **Shared-memory store segments** (``/dev/shm/repro-<token>-<digest>``,
  see :class:`repro.harness.store._ShmBackend`): each holds a workload
  trace, so a few killed campaigns can pin hundreds of megabytes of
  ``tmpfs`` until reboot.
* **Fault-injection state directories**
  (``$TMPDIR/repro-faults-*``, see
  :func:`repro.harness.faults.faults_from_env`): tiny, but they
  accumulate one per killed chaos run.

:func:`reap_orphans` runs at the start of every engine run and sweeps
both, using the *owner PID* each resource records at creation time
(``owner_pid`` in the segment header, ``owner.pid`` in the state dir):
a resource whose owner is dead is provably orphaned and safe to remove;
one whose owner is alive belongs to a concurrent campaign and is left
alone. Resources with no readable owner stamp (foreign layouts, torn
writes) are only reaped past a conservative age threshold, so the sweep
can never race a segment that another process is mid-creating.

Segment headers are read via the ``/dev/shm`` filesystem directly (not
``multiprocessing.shared_memory.SharedMemory``) so probing never
registers with the resource tracker; on platforms without ``/dev/shm``
(macOS) the shm sweep is skipped — those platforms also reclaim POSIX
shm on reboot, and the file-backed store is unaffected everywhere.
"""

from __future__ import annotations

import errno
import json
import os
import struct
import tempfile
import time
from pathlib import Path

from repro.harness.faults import STATE_DIR_PREFIX, STATE_PID_FILE
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Where Linux exposes POSIX shared memory as plain files.
SHM_ROOT = Path("/dev/shm")

#: Prefix of store segments (see ``_ShmBackend._name``).
SHM_PREFIX = "repro-"

#: A segment with an unreadable header (no owner evidence) is reaped
#: only once it is at least this old — far beyond any populate race.
SHM_UNKNOWN_OWNER_AGE = 3600.0

#: Same idea for fault-state dirs missing their ``owner.pid`` stamp.
FAULT_STATE_UNKNOWN_OWNER_AGE = 600.0

#: Read at most this much of a segment when probing for its header.
_HEADER_PROBE_BYTES = 1 << 20

_REG = obs_metrics.get_registry()
_M_REAPED = {
    kind: _REG.counter(
        "repro_reaped_total",
        "Orphaned resources reclaimed at startup",
        kind=kind,
    )
    for kind in ("shm", "fault-state")
}


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (EPERM counts as alive)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError as exc:  # pragma: no cover - exotic kernels
        return exc.errno != errno.ESRCH
    return True


def _segment_owner(path: Path) -> int | None:
    """The ``owner_pid`` recorded in a store segment's header, if readable."""
    try:
        with open(path, "rb") as handle:
            blob = handle.read(_HEADER_PROBE_BYTES)
        (header_len,) = struct.unpack_from("<Q", blob, 0)
        if header_len <= 0 or header_len > len(blob) - 8:
            return None
        header = json.loads(blob[8 : 8 + header_len].decode("utf-8"))
        pid = header.get("owner_pid")
        return int(pid) if pid is not None else None
    except (OSError, ValueError, KeyError, struct.error):
        return None


def _age_seconds(path: Path) -> float:
    try:
        return max(0.0, time.time() - path.stat().st_mtime)
    except OSError:
        return 0.0


def reap_orphan_shm(root: Path = SHM_ROOT) -> list[str]:
    """Unlink ``repro-*`` shm segments whose owning process is dead.

    Returns the reaped segment names. Segments with a live owner (a
    concurrent campaign) are kept; segments with no readable owner
    stamp are kept until :data:`SHM_UNKNOWN_OWNER_AGE` old.
    """
    if not root.is_dir():
        return []
    reaped: list[str] = []
    try:
        candidates = sorted(root.glob(f"{SHM_PREFIX}*"))
    except OSError:
        return []
    for path in candidates:
        if not path.is_file():
            continue
        owner = _segment_owner(path)
        if owner is not None:
            if _pid_alive(owner):
                continue
        elif _age_seconds(path) < SHM_UNKNOWN_OWNER_AGE:
            continue
        try:
            path.unlink()
        except OSError:
            continue
        reaped.append(path.name)
        _M_REAPED["shm"].inc()
        obs_trace.event(
            "reap.shm", segment=path.name, owner=owner
        )
    return reaped


def reap_orphan_fault_state(root: str | Path | None = None) -> list[str]:
    """Remove ``repro-faults-*`` state dirs whose owning process is dead.

    Returns the reaped directory paths. Directories missing their
    ``owner.pid`` stamp are kept until
    :data:`FAULT_STATE_UNKNOWN_OWNER_AGE` old.
    """
    base = Path(root) if root is not None else Path(tempfile.gettempdir())
    if not base.is_dir():
        return []
    reaped: list[str] = []
    try:
        candidates = sorted(base.glob(f"{STATE_DIR_PREFIX}*"))
    except OSError:
        return []
    for path in candidates:
        if not path.is_dir():
            continue
        try:
            owner = int((path / STATE_PID_FILE).read_text().strip())
        except (OSError, ValueError):
            owner = None
        if owner is not None:
            if _pid_alive(owner):
                continue
        elif _age_seconds(path) < FAULT_STATE_UNKNOWN_OWNER_AGE:
            continue
        try:
            for child in sorted(path.iterdir()):
                try:
                    child.unlink()
                except OSError:
                    pass
            path.rmdir()
        except OSError:
            continue
        reaped.append(str(path))
        _M_REAPED["fault-state"].inc()
        obs_trace.event("reap.fault-state", path=str(path), owner=owner)
    return reaped


def reap_orphans() -> dict[str, list[str]]:
    """Sweep every orphan class; called once per engine run.

    Cheap when there is nothing to do (two directory scans), and every
    failure mode is contained: an unreadable entry is skipped, never
    raised — startup hygiene must not be able to break a campaign.
    """
    return {
        "shm": reap_orphan_shm(),
        "fault_state": reap_orphan_fault_state(),
    }
