"""Crash-safe campaign journal: append-only JSONL of cell outcomes.

A long campaign (a figure's mix grid, the Figure 11 sensitivity sweep,
Table 6) is dozens of multi-second simulation cells. If the process
dies mid-run — machine crash, OOM kill, Ctrl-C — the journal is what
survives: every *finished* cell was appended as one self-contained JSON
line (fsync'd before the engine reports the cell done), so a restart
with ``--resume`` / ``REPRO_RESUME=1`` replays journaled results and
re-runs only the cells that never completed or failed.

Design points that make the journal trustworthy after a hard kill:

* **Append-only, one line per outcome.** A crash can only ever damage
  the final line (a partial append); :meth:`RunJournal.load` skips any
  line that does not parse and counts it in ``corrupt_lines`` instead
  of aborting.
* **Per-line checksum.** Each record carries a SHA-256 digest of its
  own fields, so a torn or bit-flipped line is detected even when it
  happens to remain valid JSON.
* **Self-contained values.** Computed results are stored in encoded
  (JSON) form in the line itself, so resume works even with the result
  cache disabled or lost.
* **Last entry wins.** Re-running a campaign appends; on load, the
  newest record for a cell key shadows older ones, so a cell that
  failed yesterday and succeeded today resumes as succeeded.

Group commit: on grids of trivial cells the per-entry fsync *is* the
campaign — one disk flush per cell. With ``batch_entries > 1`` the
journal buffers serialized lines in user space and commits them with a
single ``write`` + ``fsync`` per batch, bounded by the entry count and
a linger deadline (a daemon flusher thread commits a partial batch at
most ``linger_seconds`` after its first entry; shutdown and degraded
teardown flush whatever remains). The durability contract is kept by
*deferring the ack*, not weakening it: :meth:`record` returns a
sequence number, :attr:`durable_seq` advances only after the batch's
fsync, and the engine reports a cell done (making it resume-skippable)
only once its sequence number is durable. The default is
``batch_entries=1`` — fully synchronous, exactly the old behavior.

The journal lives next to the result cache by default
(``<cache-dir>/journal.jsonl``); the engine writes one record per
computed / cache-hit / failed cell and never rewrites existing lines.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, TextIO

from repro.errors import ConfigurationError, JournalError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults ↔ journal)
    from repro.harness.faults import FaultPlan

#: Bump when the journal line layout changes incompatibly; old journals
#: are then ignored on resume instead of being misread.
JOURNAL_FORMAT_VERSION = 1

#: Group-commit defaults used when batching is enabled from the
#: environment (``REPRO_JOURNAL_BATCH`` / ``REPRO_JOURNAL_LINGER``).
DEFAULT_BATCH_ENTRIES = 64
DEFAULT_LINGER_SECONDS = 0.05

JOURNAL_BATCH_ENV = "REPRO_JOURNAL_BATCH"
JOURNAL_LINGER_ENV = "REPRO_JOURNAL_LINGER"

_REG = obs_metrics.get_registry()
_M_APPENDS = _REG.counter(
    "repro_journal_appends_total", "Cell outcomes durably journaled"
)
_M_CORRUPT = _REG.counter(
    "repro_journal_corrupt_lines_total", "Damaged journal lines skipped on load"
)
_M_BATCH = _REG.histogram(
    "repro_journal_batch_entries",
    "Entries committed per journal fsync batch",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0),
)


def _checksum(fields: dict[str, Any]) -> str:
    """Digest of one record's canonical JSON (order-independent)."""
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def batching_from_env() -> tuple[int, float]:
    """Group-commit settings from ``REPRO_JOURNAL_BATCH``/``_LINGER``.

    Returns ``(batch_entries, linger_seconds)``. Defaults to
    ``(DEFAULT_BATCH_ENTRIES, DEFAULT_LINGER_SECONDS)`` — group commit
    on — since the ack-after-fsync protocol keeps the crash-safety
    contract regardless of batch size. ``REPRO_JOURNAL_BATCH=1``
    restores per-entry fsync. Malformed values raise
    :class:`~repro.errors.ConfigurationError`.
    """
    batch = DEFAULT_BATCH_ENTRIES
    raw = os.environ.get(JOURNAL_BATCH_ENV, "").strip()
    if raw:
        try:
            batch = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{JOURNAL_BATCH_ENV}={raw!r} is not an integer; accepted: "
                "a positive entry count (1 = fsync per entry)"
            )
        if batch < 1:
            raise ConfigurationError(
                f"{JOURNAL_BATCH_ENV}={raw!r} is out of range; accepted: "
                "a positive entry count (1 = fsync per entry)"
            )
    linger = DEFAULT_LINGER_SECONDS
    raw = os.environ.get(JOURNAL_LINGER_ENV, "").strip()
    if raw:
        try:
            linger = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"{JOURNAL_LINGER_ENV}={raw!r} is not a number; accepted: "
                "a non-negative number of seconds"
            )
        if linger < 0:
            raise ConfigurationError(
                f"{JOURNAL_LINGER_ENV}={raw!r} is out of range; accepted: "
                "a non-negative number of seconds"
            )
    return batch, linger


@dataclass(frozen=True)
class JournalEntry:
    """One journaled cell outcome."""

    key: str
    label: str
    status: str  # "computed" | "hit" | "failed" | "poisoned"
    wall_seconds: float
    attempts: int
    campaign: str | None = None
    #: Encoded (JSON-able) result payload for successful cells.
    value: Any | None = None
    error: str | None = None
    #: Run-profile name of the cell, when it carries one. Runtime hints
    #: are keyed by (scheme family, profile) so campaigns under one
    #: profile never inherit another profile's wall-time means. Optional
    #: and absent from old journals — no format bump needed: the
    #: checksum covers whatever fields a line actually has.
    profile: str | None = None

    @property
    def ok(self) -> bool:
        # Poisoned cells (retry budget exhausted by worker deaths) are
        # journaled so a --resume campaign knows to re-attempt exactly
        # them — an ok entry would be replayed and never retried.
        return self.status not in ("failed", "poisoned")


class RunJournal:
    """Append-only JSONL journal of campaign cell outcomes.

    By default records are flushed and fsync'd as they are written:
    once the engine has reported a cell finished, that outcome survives
    SIGKILL. With ``batch_entries > 1`` the same guarantee is kept via
    group commit — see the module docstring.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync: bool = True,
        batch_entries: int = 1,
        linger_seconds: float = 0.0,
        faults: "FaultPlan | None" = None,
    ):
        if batch_entries < 1:
            raise ConfigurationError("batch_entries must be >= 1")
        if linger_seconds < 0:
            raise ConfigurationError("linger_seconds must be >= 0")
        self.path = Path(path)
        self.fsync = fsync
        self.batch_entries = batch_entries
        self.linger_seconds = linger_seconds
        #: Fault plan consulted at each flush (``journal-batch-crash``);
        #: the engine attaches its own plan here when none was given.
        self.faults = faults
        self._handle: TextIO | None = None
        #: Lines skipped by the last :meth:`load` (torn writes, bit rot).
        self.corrupt_lines = 0
        # Group-commit state, guarded by _lock (the flusher thread and
        # the recording thread both touch the buffer).
        self._lock = threading.Lock()
        self._buffer: list[str] = []
        self._buffered_at: float | None = None
        self._seq = 0
        #: Highest sequence number whose record has been fsync'd. A
        #: cell is safe to ack once its :meth:`record` sequence number
        #: is ``<= durable_seq``.
        self.durable_seq = 0
        #: Fsync batches committed over this instance's life.
        self.flushes = 0
        self._flusher: threading.Thread | None = None
        self._closed = threading.Event()

    # ------------------------------------------------------------------
    def _open(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists() or self.path.stat().st_size == 0
                self._handle = open(self.path, "a", encoding="utf-8")
            except OSError as exc:
                raise JournalError(f"cannot open journal {self.path}: {exc}")
            if fresh:
                # The header is written synchronously even under group
                # commit: it carries no cell outcome, and a journal file
                # should identify its format from byte one.
                self._write_lines(
                    [
                        json.dumps(
                            {"kind": "header", "format": JOURNAL_FORMAT_VERSION},
                            separators=(",", ":"),
                        )
                        + "\n"
                    ]
                )
        return self._handle

    def _write_lines(self, lines: list[str]) -> None:
        handle = self._handle
        assert handle is not None
        try:
            handle.write("".join(lines))
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise JournalError(f"cannot append to journal {self.path}: {exc}")

    def _flush_locked(self) -> None:
        if not self._buffer:
            return
        self.flushes += 1
        if self.faults is not None:
            # The injected crash window: entries are serialized but
            # still in the user-space buffer — nothing has reached the
            # kernel, so an os._exit here genuinely loses them, exactly
            # like a crash between a cell finishing and its group
            # commit. Acks for these entries were never emitted.
            self.faults.on_journal_flush(self.flushes)
        lines = self._buffer
        entries = len(lines)
        self._buffer = []
        self._buffered_at = None
        with obs_trace.span(
            "journal.flush", path=str(self.path), entries=entries
        ):
            try:
                self._write_lines(lines)
            except JournalError:
                # The batch is lost either way (degraded journal);
                # dropping it keeps a retried flush from re-appending
                # half-written lines. durable_seq stays put, so none of
                # these cells is ever acked as durable.
                raise
            self.durable_seq = self._seq
        _M_APPENDS.inc(entries)
        _M_BATCH.observe(entries)

    def _linger_flusher(self) -> None:
        # Commits a partial batch at most linger_seconds after its first
        # entry, so slow cells are not held hostage by a big batch size.
        while not self._closed.wait(self.linger_seconds / 2 or 0.01):
            with self._lock:
                if self._handle is None or self._handle.closed:
                    continue
                if (
                    self._buffered_at is not None
                    and time.monotonic() - self._buffered_at
                    >= self.linger_seconds
                ):
                    try:
                        self._flush_locked()
                    except JournalError:
                        # The recording thread surfaces the failure on
                        # its next record/flush; the engine degrades.
                        pass

    def _ensure_flusher(self) -> None:
        if (
            self.linger_seconds > 0
            and self.batch_entries > 1
            and (self._flusher is None or not self._flusher.is_alive())
            and not self._closed.is_set()
        ):
            self._flusher = threading.Thread(
                target=self._linger_flusher,
                name="journal-linger-flush",
                daemon=True,
            )
            self._flusher.start()

    # ------------------------------------------------------------------
    def record(self, entry: JournalEntry) -> int:
        """Append one cell outcome; returns its sequence number.

        With the default ``batch_entries=1`` the record is durable
        (written, flushed, fsync'd) when this returns. Under group
        commit it may still be buffered: the caller must hold its ack
        until the returned sequence number is ``<= durable_seq``
        (advanced by the batch's fsync, forced by :meth:`flush`).
        """
        # Built by hand rather than dataclasses.asdict(): asdict deep-
        # copies the embedded value payload, which on trivial-cell grids
        # costs more than the serialization itself. json.dumps never
        # mutates, so sharing the reference is safe.
        fields = {
            "kind": "cell",
            "format": JOURNAL_FORMAT_VERSION,
            "key": entry.key,
            "label": entry.label,
            "status": entry.status,
            "wall_seconds": entry.wall_seconds,
            "attempts": entry.attempts,
            "campaign": entry.campaign,
            "value": entry.value,
            "error": entry.error,
            "profile": entry.profile,
        }
        # Serialize once: the checksum is over the canonical (sorted)
        # JSON of the fields, and the digest is spliced into that same
        # string to form the line. load() is key-order independent — it
        # pops sha256 and re-canonicalizes — so sorted lines verify
        # exactly like the old insertion-ordered ones.
        canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        line = canonical[:-1] + ',"sha256":"' + digest + '"}\n'
        with self._lock:
            self._open()
            self._seq += 1
            seq = self._seq
            self._buffer.append(line)
            if self._buffered_at is None:
                self._buffered_at = time.monotonic()
            if len(self._buffer) >= self.batch_entries:
                self._flush_locked()
            else:
                self._ensure_flusher()
        obs_trace.event(
            "journal.append", label=entry.label, status=entry.status
        )
        return seq

    def flush(self) -> None:
        """Force-commit any buffered entries (shutdown/degrade path)."""
        with self._lock:
            if self._handle is None or self._handle.closed:
                return
            self._flush_locked()

    def load(self) -> dict[str, JournalEntry]:
        """Read the journal back: newest valid entry per cell key.

        Tolerates a missing file (empty campaign), a torn final line
        (crash mid-append), and checksum mismatches; damaged lines are
        counted in :attr:`corrupt_lines`, never raised.
        """
        self.corrupt_lines = 0
        entries: dict[str, JournalEntry] = {}
        try:
            handle = open(self.path, "r", encoding="utf-8")
        except OSError:
            return {}
        with handle:
            for line in handle:
                if not line.strip():
                    continue
                try:
                    fields = json.loads(line)
                except ValueError:
                    self.corrupt_lines += 1
                    continue
                if not isinstance(fields, dict):
                    self.corrupt_lines += 1
                    continue
                if fields.get("kind") == "header":
                    continue
                if (
                    fields.get("kind") != "cell"
                    or fields.get("format") != JOURNAL_FORMAT_VERSION
                ):
                    self.corrupt_lines += 1
                    continue
                claimed = fields.pop("sha256", None)
                if claimed != _checksum(fields):
                    self.corrupt_lines += 1
                    continue
                try:
                    entry = JournalEntry(
                        key=fields["key"],
                        label=fields["label"],
                        status=fields["status"],
                        wall_seconds=fields["wall_seconds"],
                        attempts=fields["attempts"],
                        campaign=fields.get("campaign"),
                        value=fields.get("value"),
                        error=fields.get("error"),
                        profile=fields.get("profile"),
                    )
                except KeyError:
                    self.corrupt_lines += 1
                    continue
                entries[entry.key] = entry
        if self.corrupt_lines:
            _M_CORRUPT.inc(self.corrupt_lines)
        obs_trace.event(
            "journal.load",
            path=str(self.path),
            entries=len(entries),
            corrupt_lines=self.corrupt_lines,
        )
        return entries

    # ------------------------------------------------------------------
    def close(self) -> None:
        self._closed.set()
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                try:
                    self._flush_locked()
                finally:
                    self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
