"""Crash-safe campaign journal: append-only JSONL of cell outcomes.

A long campaign (a figure's mix grid, the Figure 11 sensitivity sweep,
Table 6) is dozens of multi-second simulation cells. If the process
dies mid-run — machine crash, OOM kill, Ctrl-C — the journal is what
survives: every *finished* cell was appended as one self-contained JSON
line (fsync'd before the engine reports the cell done), so a restart
with ``--resume`` / ``REPRO_RESUME=1`` replays journaled results and
re-runs only the cells that never completed or failed.

Design points that make the journal trustworthy after a hard kill:

* **Append-only, one line per outcome.** A crash can only ever damage
  the final line (a partial append); :meth:`RunJournal.load` skips any
  line that does not parse and counts it in ``corrupt_lines`` instead
  of aborting.
* **Per-line checksum.** Each record carries a SHA-256 digest of its
  own fields, so a torn or bit-flipped line is detected even when it
  happens to remain valid JSON.
* **Self-contained values.** Computed results are stored in encoded
  (JSON) form in the line itself, so resume works even with the result
  cache disabled or lost.
* **Last entry wins.** Re-running a campaign appends; on load, the
  newest record for a cell key shadows older ones, so a cell that
  failed yesterday and succeeded today resumes as succeeded.

The journal lives next to the result cache by default
(``<cache-dir>/journal.jsonl``); the engine writes one record per
computed / cache-hit / failed cell and never rewrites existing lines.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any, TextIO

from repro.errors import JournalError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Bump when the journal line layout changes incompatibly; old journals
#: are then ignored on resume instead of being misread.
JOURNAL_FORMAT_VERSION = 1

_REG = obs_metrics.get_registry()
_M_APPENDS = _REG.counter(
    "repro_journal_appends_total", "Cell outcomes durably journaled"
)
_M_CORRUPT = _REG.counter(
    "repro_journal_corrupt_lines_total", "Damaged journal lines skipped on load"
)


def _checksum(fields: dict[str, Any]) -> str:
    """Digest of one record's canonical JSON (order-independent)."""
    canonical = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class JournalEntry:
    """One journaled cell outcome."""

    key: str
    label: str
    status: str  # "computed" | "hit" | "failed" | "poisoned"
    wall_seconds: float
    attempts: int
    campaign: str | None = None
    #: Encoded (JSON-able) result payload for successful cells.
    value: Any | None = None
    error: str | None = None
    #: Run-profile name of the cell, when it carries one. Runtime hints
    #: are keyed by (scheme family, profile) so campaigns under one
    #: profile never inherit another profile's wall-time means. Optional
    #: and absent from old journals — no format bump needed: the
    #: checksum covers whatever fields a line actually has.
    profile: str | None = None

    @property
    def ok(self) -> bool:
        # Poisoned cells (retry budget exhausted by worker deaths) are
        # journaled so a --resume campaign knows to re-attempt exactly
        # them — an ok entry would be replayed and never retried.
        return self.status not in ("failed", "poisoned")


class RunJournal:
    """Append-only JSONL journal of campaign cell outcomes.

    Records are flushed and fsync'd as they are written: once the
    engine has reported a cell finished, that outcome survives SIGKILL.
    """

    def __init__(self, path: str | Path, *, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._handle: TextIO | None = None
        #: Lines skipped by the last :meth:`load` (torn writes, bit rot).
        self.corrupt_lines = 0

    # ------------------------------------------------------------------
    def _open(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                fresh = not self.path.exists() or self.path.stat().st_size == 0
                self._handle = open(self.path, "a", encoding="utf-8")
            except OSError as exc:
                raise JournalError(f"cannot open journal {self.path}: {exc}")
            if fresh:
                self._append({"kind": "header", "format": JOURNAL_FORMAT_VERSION})
        return self._handle

    def _append(self, fields: dict[str, Any]) -> None:
        handle = self._handle
        assert handle is not None
        try:
            handle.write(json.dumps(fields, separators=(",", ":")) + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        except OSError as exc:
            raise JournalError(f"cannot append to journal {self.path}: {exc}")

    # ------------------------------------------------------------------
    def record(self, entry: JournalEntry) -> None:
        """Durably append one cell outcome."""
        self._open()
        fields = {"kind": "cell", "format": JOURNAL_FORMAT_VERSION}
        fields.update(asdict(entry))
        fields["sha256"] = _checksum(fields)
        self._append(fields)
        _M_APPENDS.inc()
        obs_trace.event(
            "journal.append", label=entry.label, status=entry.status
        )

    def load(self) -> dict[str, JournalEntry]:
        """Read the journal back: newest valid entry per cell key.

        Tolerates a missing file (empty campaign), a torn final line
        (crash mid-append), and checksum mismatches; damaged lines are
        counted in :attr:`corrupt_lines`, never raised.
        """
        self.corrupt_lines = 0
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        entries: dict[str, JournalEntry] = {}
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                fields = json.loads(line)
            except ValueError:
                self.corrupt_lines += 1
                continue
            if not isinstance(fields, dict):
                self.corrupt_lines += 1
                continue
            if fields.get("kind") == "header":
                continue
            if (
                fields.get("kind") != "cell"
                or fields.get("format") != JOURNAL_FORMAT_VERSION
            ):
                self.corrupt_lines += 1
                continue
            claimed = fields.pop("sha256", None)
            if claimed != _checksum(fields):
                self.corrupt_lines += 1
                continue
            try:
                entry = JournalEntry(
                    key=fields["key"],
                    label=fields["label"],
                    status=fields["status"],
                    wall_seconds=fields["wall_seconds"],
                    attempts=fields["attempts"],
                    campaign=fields.get("campaign"),
                    value=fields.get("value"),
                    error=fields.get("error"),
                    profile=fields.get("profile"),
                )
            except KeyError:
                self.corrupt_lines += 1
                continue
            entries[entry.key] = entry
        if self.corrupt_lines:
            _M_CORRUPT.inc(self.corrupt_lines)
        obs_trace.event(
            "journal.load",
            path=str(self.path),
            entries=len(entries),
            corrupt_lines=self.corrupt_lines,
        )
        return entries

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._handle is not None and not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
