"""JSON export of experiment results.

Downstream users (plotting scripts, regression dashboards) need the raw
numbers behind the text renderings. These functions flatten the harness
result objects into JSON-serializable dictionaries with explicit units.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.config import ArchConfig
from repro.harness.experiment import MixResult, SchemeRunResult
from repro.harness.sensitivity import SensitivityCurve
from repro.harness.tables import Table6

_ARCH = ArchConfig.scaled()


def scheme_run_to_dict(run: SchemeRunResult) -> dict[str, Any]:
    """One scheme's mix run as plain data."""
    return {
        "scheme": run.scheme,
        "total_cycles": run.total_cycles,
        "mean_bits_per_assessment": run.mean_bits_per_assessment,
        "mean_total_leakage_bits": run.mean_total_leakage,
        "maintain_fraction": run.maintain_fraction,
        "workloads": [
            {
                "label": w.label,
                "ipc": w.ipc,
                "assessments": w.assessments,
                "visible_actions": w.visible_actions,
                "leakage_bits": w.leakage_bits,
                "bits_per_assessment": w.bits_per_assessment,
                "partition_quartiles_lines": list(w.partition_quartiles),
                "partition_quartiles_paper_mb": [
                    _ARCH.lines_to_paper_mb(q) for q in w.partition_quartiles
                ],
            }
            for w in run.workloads
        ],
    }


def mix_result_to_dict(result: MixResult) -> dict[str, Any]:
    """A full mix result (all schemes) as plain data."""
    payload: dict[str, Any] = {
        "mix_id": result.mix_id,
        "labels": list(result.labels),
        "runs": {
            name: scheme_run_to_dict(run) for name, run in result.runs.items()
        },
    }
    if "static" in result.runs:
        payload["normalized_ipc"] = {
            scheme: result.normalized_ipc(scheme)
            for scheme in result.runs
            if scheme != "static"
        }
        payload["geomean_speedups"] = {
            scheme: result.geomean_speedup(scheme)
            for scheme in result.runs
            if scheme != "static"
        }
    return payload


def sensitivity_to_dict(
    curves: dict[str, SensitivityCurve]
) -> dict[str, Any]:
    """The Figure 11 study as plain data."""
    return {
        name: {
            "sizes_lines": list(curve.sizes_lines),
            "sizes_paper_mb": [
                _ARCH.lines_to_paper_mb(s) for s in curve.sizes_lines
            ],
            "ipc": list(curve.ipc),
            "normalized_ipc": list(curve.normalized_ipc),
            "adequate_size_lines": curve.adequate_size_lines(),
            "llc_sensitive": curve.llc_sensitive(
                _ARCH.default_partition_lines
            ),
        }
        for name, curve in curves.items()
    }


def table6_to_dict(table: Table6) -> dict[str, Any]:
    """Table 6 as plain data."""
    return {
        "rows": [
            {
                "mix_id": row.mix_id,
                "time_bits_per_assessment": row.time_bits_per_assessment,
                "time_total_bits": row.time_total_bits,
                "untangle_bits_per_assessment": row.untangle_bits_per_assessment,
                "untangle_total_bits": row.untangle_total_bits,
                "per_assessment_reduction": row.per_assessment_reduction,
            }
            for row in table.rows
        ],
        "average_reduction": table.average_reduction,
    }


def write_json(payload: dict[str, Any], path: str | Path) -> Path:
    """Write a payload to disk as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
