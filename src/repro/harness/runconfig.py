"""Run profiles: scaled-down counterparts of the paper's parameters.

The paper's machine runs 500M-instruction slices on a 16 MB LLC with
assessments every 1 ms (Time) or every 8M retired instructions with a
1 ms cooldown (Untangle). Pure-Python simulation requires scaling; a
:class:`RunProfile` groups the scaled parameters and documents the unit
mapping:

* capacity: 128 paper-bytes per simulated byte (LLC 16 MB -> 2048 lines);
* time: one scaled "millisecond" is :attr:`RunProfile.cycles_per_ms`
  cycles (1000 by default), so the Time interval, the Untangle cooldown,
  and the random-delay width are all one scaled ms, like the paper;
* instructions: the Untangle assessment stride ``N`` is chosen, like the
  paper's 8M, so that retiring ``N`` instructions takes roughly one
  scaled ms at typical IPC — keeping Time and Untangle assessment
  frequencies comparable (Section 8).

All ratios that shape the figures (partition sizes : LLC : working sets;
assessment interval : slice length) are preserved.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import ArchConfig
from repro.errors import ConfigurationError
from repro.workloads.workload import WorkloadScale


@dataclass(frozen=True)
class RunProfile:
    """One self-consistent set of scaled experiment parameters."""

    name: str
    workload_scale: WorkloadScale
    #: Cycles per scaled millisecond (the paper's 1 ms = 2M cycles).
    cycles_per_ms: int = 4_000
    #: Time scheme: assessment interval in cycles ("every 1 ms").
    time_interval: int = 4_000
    #: Untangle: retired public instructions per assessment (the 8M analog).
    untangle_instructions: int = 4_000
    #: Untangle: cooldown T_c in cycles ("1 ms").
    cooldown: int = 4_000
    #: UMON monitor window M_w, in monitored accesses (the 1M analog).
    monitor_window: int = 4_000
    #: Monitor set-sampling shift (1 -> monitor half the lines).
    monitor_sampling_shift: int = 0
    #: Allocator hysteresis (hits/line); damps noise-induced resizes.
    hysteresis: float = 0.02
    #: System interleaving quantum, cycles.
    quantum: int = 250
    #: Partition-size sampling period, cycles (the paper's 100 us).
    sample_interval: int = 100
    #: Hard cycle cap per run.
    max_cycles: int = 20_000_000
    #: Base seed for workload generation and scheme randomness.
    seed: int = 2023

    def __post_init__(self) -> None:
        if min(
            self.cycles_per_ms,
            self.time_interval,
            self.untangle_instructions,
            self.cooldown,
            self.quantum,
            self.sample_interval,
        ) < 1:
            raise ConfigurationError("profile parameters must be positive")

    def arch(self, num_cores: int = 8) -> ArchConfig:
        """The machine for this profile."""
        return ArchConfig.scaled(num_cores=num_cores)

    def with_seed(self, seed: int) -> "RunProfile":
        return replace(self, seed=seed)


#: Default evaluation profile (used by the benchmark harness).
SCALED = RunProfile(name="scaled", workload_scale=WorkloadScale())

#: Smaller/faster profile for integration tests.
TEST = RunProfile(
    name="test",
    workload_scale=WorkloadScale.test(),
    time_interval=500,
    untangle_instructions=600,
    cooldown=500,
    monitor_window=2_000,
    quantum=125,
    sample_interval=250,
    max_cycles=5_000_000,
)

#: Profile for the kernel microbenchmarks (``benchmarks/bench_kernel.py``).
#: SCALED workloads with two knobs moved toward the paper's regime, where
#: batching legitimately amortizes: a longer interleaving quantum (real
#: quanta span millions of cycles; the tiny test quantum exists only to
#: exercise interleavings densely) and a sampled UMON (Section 7's
#: monitor samples sets rather than observing every access).
BENCH = RunProfile(
    name="bench",
    workload_scale=WorkloadScale(),
    quantum=4_000,
    monitor_sampling_shift=3,
)

#: Heavier profile for closer-to-paper statistics (slower).
LARGE = RunProfile(
    name="large",
    workload_scale=WorkloadScale(
        spec_instructions=150_000,
        crypto_instructions=15_000,
        spec_chunk=10_000,
        crypto_chunk=1_000,
    ),
    untangle_instructions=4_000,
    monitor_window=8_000,
)

PROFILES: dict[str, RunProfile] = {p.name: p for p in (SCALED, TEST, BENCH, LARGE)}
