"""Figure data generators (Figures 10 and 12-17 of the paper).

Each paper figure group shows, for one mix: the distribution of
partition sizes (top), the leakage per assessment of Time and Untangle
(middle), and per-workload IPC normalized to Static (bottom).
:func:`figure_group` computes all three panels for one mix;
:func:`figure11_data` is the sensitivity study of Figure 11.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.harness.experiment import MixResult, run_mix
from repro.harness.runconfig import RunProfile, SCALED
from repro.harness.sensitivity import SensitivityCurve, run_sensitivity_study
from repro.workloads.mixes import mix_demand_mb, mix_sensitive_count
from repro.workloads.spec import SPEC_BENCHMARKS


@dataclass(frozen=True)
class WorkloadRow:
    """One workload's column across a figure group's three panels."""

    label: str
    llc_sensitive: bool
    normalized_ipc: dict[str, float]
    time_bits_per_assessment: float
    untangle_bits_per_assessment: float
    time_partition_quartiles: tuple[float, float, float, float, float]
    untangle_partition_quartiles: tuple[float, float, float, float, float]


@dataclass(frozen=True)
class FigureGroup:
    """All panels of one figure group (one mix)."""

    mix_id: int
    sensitive_count: int
    total_demand_mb: float
    rows: list[WorkloadRow]
    geomean_speedups: dict[str, float]
    maintain_fraction_untangle: float

    @property
    def title(self) -> str:
        return (
            f"Mix {self.mix_id}: {self.sensitive_count} LLC-sensitive benchmarks; "
            f"Total LLC size: 16MB; Total LLC demand: {self.total_demand_mb:.1f}MB"
        )


def figure_group(
    mix_id: int,
    profile: RunProfile = SCALED,
    mix_result: MixResult | None = None,
) -> FigureGroup:
    """Compute one figure group (runs the mix unless given a result)."""
    result = mix_result if mix_result is not None else run_mix(mix_id, profile)
    time_run = result.runs["time"]
    untangle_run = result.runs["untangle"]
    schemes = [name for name in result.runs if name != "static"]
    normalized = {scheme: result.normalized_ipc(scheme) for scheme in schemes}

    rows = []
    for label in result.labels:
        spec_name = label.split("+")[0]
        rows.append(
            WorkloadRow(
                label=label,
                llc_sensitive=SPEC_BENCHMARKS[spec_name].llc_sensitive,
                normalized_ipc={
                    scheme: normalized[scheme][label] for scheme in schemes
                },
                time_bits_per_assessment=time_run.workload(label).bits_per_assessment,
                untangle_bits_per_assessment=untangle_run.workload(
                    label
                ).bits_per_assessment,
                time_partition_quartiles=time_run.workload(label).partition_quartiles,
                untangle_partition_quartiles=untangle_run.workload(
                    label
                ).partition_quartiles,
            )
        )
    return FigureGroup(
        mix_id=mix_id,
        sensitive_count=mix_sensitive_count(mix_id),
        total_demand_mb=mix_demand_mb(mix_id),
        rows=rows,
        geomean_speedups={
            scheme: result.geomean_speedup(scheme) for scheme in schemes
        },
        maintain_fraction_untangle=untangle_run.maintain_fraction,
    )


def figure11_data(
    profile: RunProfile = SCALED, names: list[str] | None = None
) -> dict[str, SensitivityCurve]:
    """The Figure 11 LLC sensitivity study (all 36 benchmarks)."""
    return run_sensitivity_study(names, profile)
