"""Fault injection for the execution engine (chaos testing).

The recovery paths of the campaign runner — worker crash, worker hang,
corrupt cache entry, interrupted campaign — are only trustworthy if
they are *exercised*. A :class:`FaultPlan` injects those failures on
demand:

* ``crash=<substr>`` — a worker (or the serial runner's process) whose
  cell label contains ``substr`` hard-exits (``os._exit``), simulating
  a segfault or OOM kill mid-cell.
* ``hang=<substr>`` — the matching cell sleeps past any reasonable
  deadline, simulating a stuck simulation; the supervisor must kill
  and respawn the worker.
* ``corrupt=<substr>`` — the engine garbles the cache entry it just
  wrote for the matching cell, simulating torn writes/bit rot; the next
  read must quarantine it instead of trusting it.
* ``kill-worker=<n>`` — worker ``n`` dies the first time it receives a
  task, simulating an infant-mortality worker.

Each fault fires at most once when a ``state`` directory is set: the
first process to fire it atomically creates a marker file there, so a
retried attempt (possibly in a *different*, respawned worker process)
succeeds and the test can assert full recovery. Without a state
directory a fault fires every time it matches — useful for asserting
that the retry budget is eventually exhausted.

``REPRO_FAULTS`` exposes the same plans to manual chaos runs, e.g.::

    REPRO_FAULTS="crash=untangle" REPRO_JOBS=4 python -m repro \
        --profile test --telemetry mix 1

(:func:`faults_from_env` creates a fresh one-shot state directory per
run unless the spec pins one with ``state=<dir>``.)
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

#: Exit codes used by injected hard-exits (recognizable in supervisor logs).
CRASH_EXIT_CODE = 13
KILL_WORKER_EXIT_CODE = 17

_SPEC_HELP = (
    "accepted clauses (separated by ';'): crash=<label-substr>, "
    "hang=<label-substr>, corrupt=<label-substr>, kill-worker=<int>, "
    "hang-seconds=<float>, state=<dir>"
)


@dataclass(frozen=True)
class FaultPlan:
    """An injectable failure policy, shared with worker processes."""

    crash_cells: tuple[str, ...] = ()
    hang_cells: tuple[str, ...] = ()
    corrupt_cells: tuple[str, ...] = ()
    kill_workers: tuple[int, ...] = ()
    #: How long an injected hang sleeps (must exceed the engine timeout).
    hang_seconds: float = 3600.0
    #: Marker directory making each fault fire exactly once across all
    #: processes; ``None`` means faults fire on every match.
    state_dir: str | None = None

    # ------------------------------------------------------------------
    def _fire_once(self, fault_id: str) -> bool:
        """True if this call wins the right to fire ``fault_id``.

        With a state directory, atomically claims a marker file so the
        fault fires exactly once across the whole process tree; without
        one, always fires.
        """
        if self.state_dir is None:
            return True
        digest = hashlib.sha256(fault_id.encode("utf-8")).hexdigest()[:16]
        marker = Path(self.state_dir) / f"fired-{digest}"
        try:
            fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        except OSError:
            return True
        os.close(fd)
        return True

    @staticmethod
    def _matches(label: str, patterns: tuple[str, ...]) -> str | None:
        for pattern in patterns:
            if pattern in label:
                return pattern
        return None

    # ------------------------------------------------------------------
    # Hooks called from inside the executing process (worker or serial).
    def on_cell_start(self, label: str, worker_id: int | None = None) -> None:
        """Apply crash/hang/kill-worker faults before a cell executes."""
        if worker_id is not None and worker_id in self.kill_workers:
            if self._fire_once(f"kill-worker:{worker_id}"):
                os._exit(KILL_WORKER_EXIT_CODE)
        pattern = self._matches(label, self.crash_cells)
        if pattern is not None and self._fire_once(f"crash:{pattern}"):
            os._exit(CRASH_EXIT_CODE)
        pattern = self._matches(label, self.hang_cells)
        if pattern is not None and self._fire_once(f"hang:{pattern}"):
            time.sleep(self.hang_seconds)

    # ------------------------------------------------------------------
    # Hooks called from the supervising (main) process.
    def should_corrupt(self, label: str) -> bool:
        pattern = self._matches(label, self.corrupt_cells)
        return pattern is not None and self._fire_once(f"corrupt:{pattern}")

    @staticmethod
    def corrupt_file(path: str | Path) -> None:
        """Garble a file the way a torn write would: truncate mid-payload."""
        path = Path(path)
        try:
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        except OSError:
            pass


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    crash: list[str] = []
    hang: list[str] = []
    corrupt: list[str] = []
    kill: list[int] = []
    hang_seconds = 3600.0
    state_dir: str | None = None
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        key, sep, value = clause.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ConfigurationError(
                f"malformed fault clause {clause!r}; {_SPEC_HELP}"
            )
        if key == "crash":
            crash.append(value)
        elif key == "hang":
            hang.append(value)
        elif key == "corrupt":
            corrupt.append(value)
        elif key == "kill-worker":
            try:
                kill.append(int(value))
            except ValueError:
                raise ConfigurationError(
                    f"kill-worker needs an integer worker id, got {value!r}; "
                    f"{_SPEC_HELP}"
                )
        elif key == "hang-seconds":
            try:
                hang_seconds = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"hang-seconds needs a number, got {value!r}; {_SPEC_HELP}"
                )
        elif key == "state":
            state_dir = value
        else:
            raise ConfigurationError(
                f"unknown fault kind {key!r}; {_SPEC_HELP}"
            )
    return FaultPlan(
        crash_cells=tuple(crash),
        hang_cells=tuple(hang),
        corrupt_cells=tuple(corrupt),
        kill_workers=tuple(kill),
        hang_seconds=hang_seconds,
        state_dir=state_dir,
    )


def faults_from_env() -> FaultPlan | None:
    """The ``REPRO_FAULTS`` plan, if any, with a one-shot state dir.

    A state directory is created automatically (unless the spec pins
    one) so each fault in a manual chaos run fires once and the run can
    then *recover* — the scenario worth rehearsing.
    """
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    plan = parse_fault_spec(spec)
    if plan.state_dir is None:
        plan = FaultPlan(
            crash_cells=plan.crash_cells,
            hang_cells=plan.hang_cells,
            corrupt_cells=plan.corrupt_cells,
            kill_workers=plan.kill_workers,
            hang_seconds=plan.hang_seconds,
            state_dir=tempfile.mkdtemp(prefix="repro-faults-"),
        )
    return plan
