"""Fault injection for the execution engine (chaos testing).

The recovery paths of the campaign runner — worker crash, worker hang,
corrupt cache entry, interrupted campaign, full disk, stalled progress —
are only trustworthy if they are *exercised*. A :class:`FaultPlan`
injects those failures on demand:

* ``crash=<substr>`` — a worker (or the serial runner's process) whose
  cell label contains ``substr`` hard-exits (``os._exit``), simulating
  a segfault or OOM kill mid-cell.
* ``poison=<substr>`` — like ``crash`` but *deterministic*: the matching
  cell crashes its worker on **every** attempt (the one-shot state dir
  is ignored), simulating a poison cell that can never complete. The
  supervisor must exhaust the retry budget, quarantine the cell as
  ``poisoned``, and let the rest of the campaign finish.
* ``hang=<substr>`` — the matching cell sleeps past any reasonable
  deadline, simulating a stuck simulation; the supervisor must kill
  and respawn the worker.
* ``heartbeat-stall=<substr>`` — the matching cell stalls for
  ``stall-seconds`` (default 30) *without advancing the progress
  counter*, while the worker's heartbeat thread keeps beating: the
  process looks alive, the cell is not. Exercises the supervisor's
  ``worker.unresponsive`` detection and early stall kill.
* ``slow=<substr>`` — the matching cell takes ``slow-seconds`` (default
  2) longer, sleeping in small increments that *do* advance the
  progress counter: slow but alive. The supervisor must not kill it,
  however tight its deadline, because heartbeats prove progress.
* ``corrupt=<substr>`` — the engine garbles the cache entry it just
  wrote for the matching cell, simulating torn writes/bit rot; the next
  read must quarantine it instead of trusting it.
* ``kill-worker=<n>`` — worker ``n`` dies the first time it receives a
  task, simulating an infant-mortality worker.
* ``io-error=<subsystem>`` — the named I/O subsystem (``journal``,
  ``cache``, or ``store``) raises ``EIO`` on its next write, simulating
  a failing disk; the engine must *degrade* that subsystem (journal →
  no-resume warning, cache/store → compute-only) instead of aborting
  the campaign.
* ``enospc=<subsystem>`` — same seams, but ``ENOSPC`` (disk full).
* ``journal-batch-crash=<n>`` — the supervising process hard-exits at
  the start of journal group-commit flush number ``n`` (1-based),
  *before* the batch's buffered entries reach the kernel: the
  crash window between a batch's buffered write and its fsync/ack.
  Cells in that batch were finished but never acked; ``--resume`` must
  re-attempt exactly them, bit-identically.

Each fault fires at most once when a ``state`` directory is set (except
``poison``, which always fires by design): the first process to fire it
atomically creates a marker file there, so a retried attempt (possibly
in a *different*, respawned worker process) succeeds and the test can
assert full recovery. Without a state directory a fault fires every
time it matches — useful for asserting that the retry budget is
eventually exhausted.

``REPRO_FAULTS`` exposes the same plans to manual chaos runs, e.g.::

    REPRO_FAULTS="crash=untangle" REPRO_JOBS=4 python -m repro \
        --profile test --telemetry mix 1

(:func:`faults_from_env` creates a fresh one-shot state directory per
run unless the spec pins one with ``state=<dir>``. Auto-created state
directories are stamped with the owner's PID, removed on engine
teardown via :func:`release_fault_state` — with an ``atexit`` net — and
swept by :mod:`repro.harness.reaper` if the owning process was killed
before it could clean up.)
"""

from __future__ import annotations

import atexit
import errno
import hashlib
import os
import shutil
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError
from repro.obs.liveness import progress_beat

#: Exit codes used by injected hard-exits (recognizable in supervisor logs).
CRASH_EXIT_CODE = 13
KILL_WORKER_EXIT_CODE = 17

#: I/O seams that accept injected ``io-error``/``enospc`` faults.
IO_SUBSYSTEMS = ("journal", "cache", "store")

#: Name of the owner-PID stamp inside an auto-created state directory
#: (read by :mod:`repro.harness.reaper` to detect orphans).
STATE_PID_FILE = "owner.pid"

#: Prefix of auto-created one-shot state directories in the system
#: temp directory.
STATE_DIR_PREFIX = "repro-faults-"

_SPEC_HELP = (
    "accepted clauses (separated by ';'): crash=<label-substr>, "
    "poison=<label-substr>, hang=<label-substr>, "
    "heartbeat-stall=<label-substr>, slow=<label-substr>, "
    "corrupt=<label-substr>, kill-worker=<int>, "
    "io-error=<journal|cache|store>, enospc=<journal|cache|store>, "
    "journal-batch-crash=<int>, "
    "hang-seconds=<float>, stall-seconds=<float>, slow-seconds=<float>, "
    "state=<dir>"
)


@dataclass(frozen=True)
class FaultPlan:
    """An injectable failure policy, shared with worker processes."""

    crash_cells: tuple[str, ...] = ()
    #: Cells that crash their worker on *every* attempt (never one-shot).
    poison_cells: tuple[str, ...] = ()
    hang_cells: tuple[str, ...] = ()
    #: Cells that stall without progress while heartbeats keep flowing.
    stall_cells: tuple[str, ...] = ()
    #: Cells that run slow but keep advancing the progress counter.
    slow_cells: tuple[str, ...] = ()
    corrupt_cells: tuple[str, ...] = ()
    kill_workers: tuple[int, ...] = ()
    #: Subsystems whose next write raises ``EIO`` (``io-error=...``).
    io_error_subsystems: tuple[str, ...] = ()
    #: Subsystems whose next write raises ``ENOSPC`` (``enospc=...``).
    enospc_subsystems: tuple[str, ...] = ()
    #: Hard-exit the supervising process at the start of journal flush
    #: number N (1-based) — the group-commit crash window. 0 = off.
    journal_batch_crash: int = 0
    #: How long an injected hang sleeps (must exceed the engine timeout).
    hang_seconds: float = 3600.0
    #: How long a ``heartbeat-stall`` freezes progress before resuming.
    stall_seconds: float = 30.0
    #: Extra runtime of a ``slow`` cell (progress beats throughout).
    slow_seconds: float = 2.0
    #: Marker directory making each fault fire exactly once across all
    #: processes; ``None`` means faults fire on every match.
    state_dir: str | None = None

    # ------------------------------------------------------------------
    def _fire_once(self, fault_id: str) -> bool:
        """True if this call wins the right to fire ``fault_id``.

        With a state directory, atomically claims a marker file so the
        fault fires exactly once across the whole process tree; without
        one, always fires. A state directory that was cleaned up (engine
        teardown of a previous run) is recreated, so each run re-arms
        the one-shot faults — matching the fresh-directory-per-run
        semantics of :func:`faults_from_env`.
        """
        if self.state_dir is None:
            return True
        digest = hashlib.sha256(fault_id.encode("utf-8")).hexdigest()[:16]
        marker = Path(self.state_dir) / f"fired-{digest}"
        for _ in range(2):
            try:
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                return False
            except FileNotFoundError:
                try:
                    os.makedirs(self.state_dir, exist_ok=True)
                except OSError:
                    return True
                continue
            except OSError:
                return True
            os.close(fd)
            return True
        return True

    @staticmethod
    def _matches(label: str, patterns: tuple[str, ...]) -> str | None:
        for pattern in patterns:
            if pattern in label:
                return pattern
        return None

    # ------------------------------------------------------------------
    # Hooks called from inside the executing process (worker or serial).
    def on_cell_start(self, label: str, worker_id: int | None = None) -> None:
        """Apply execution faults before a cell executes."""
        if worker_id is not None and worker_id in self.kill_workers:
            if self._fire_once(f"kill-worker:{worker_id}"):
                os._exit(KILL_WORKER_EXIT_CODE)
        if self._matches(label, self.poison_cells) is not None:
            # Deterministic by design: a poison cell crashes every
            # attempt, so the circuit breaker (not the retry budget's
            # luck) has to end it.
            os._exit(CRASH_EXIT_CODE)
        pattern = self._matches(label, self.crash_cells)
        if pattern is not None and self._fire_once(f"crash:{pattern}"):
            os._exit(CRASH_EXIT_CODE)
        pattern = self._matches(label, self.hang_cells)
        if pattern is not None and self._fire_once(f"hang:{pattern}"):
            time.sleep(self.hang_seconds)
        pattern = self._matches(label, self.stall_cells)
        if pattern is not None and self._fire_once(f"heartbeat-stall:{pattern}"):
            # No progress beats: the heartbeat thread keeps reporting a
            # frozen counter, which is exactly what the supervisor's
            # unresponsive detection must catch.
            time.sleep(self.stall_seconds)
        pattern = self._matches(label, self.slow_cells)
        if pattern is not None and self._fire_once(f"slow:{pattern}"):
            deadline = time.monotonic() + self.slow_seconds
            while time.monotonic() < deadline:
                time.sleep(0.05)
                progress_beat()

    # ------------------------------------------------------------------
    # Hooks called from the supervising (main) process.
    def should_corrupt(self, label: str) -> bool:
        pattern = self._matches(label, self.corrupt_cells)
        return pattern is not None and self._fire_once(f"corrupt:{pattern}")

    def check_io(self, subsystem: str) -> None:
        """Raise the injected I/O error for ``subsystem``, if armed.

        Called by the engine immediately before a real write on the
        journal / result-cache / precompute-store seam. Raises plain
        ``OSError`` with ``EIO`` or ``ENOSPC`` — indistinguishable from
        the genuine failure — so the degraded-mode handling under test
        is the same code path production errors take.
        """
        if subsystem in self.io_error_subsystems and self._fire_once(
            f"io-error:{subsystem}"
        ):
            raise OSError(
                errno.EIO, os.strerror(errno.EIO), f"<injected:{subsystem}>"
            )
        if subsystem in self.enospc_subsystems and self._fire_once(
            f"enospc:{subsystem}"
        ):
            raise OSError(
                errno.ENOSPC,
                os.strerror(errno.ENOSPC),
                f"<injected:{subsystem}>",
            )

    def on_journal_flush(self, flush_number: int) -> None:
        """Crash the process at the start of the armed flush, if any.

        Called by :class:`~repro.harness.journal.RunJournal` at the top
        of each group-commit flush, while the batch's entries are still
        in the user-space buffer — ``os._exit`` here loses exactly the
        unacked batch, which is what the resume contract must absorb.
        """
        if (
            self.journal_batch_crash
            and flush_number >= self.journal_batch_crash
            and self._fire_once("journal-batch-crash")
        ):
            os._exit(CRASH_EXIT_CODE)

    @staticmethod
    def corrupt_file(path: str | Path) -> None:
        """Garble a file the way a torn write would: truncate mid-payload."""
        path = Path(path)
        try:
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        except OSError:
            pass


def _subsystem(value: str, kind: str) -> str:
    if value not in IO_SUBSYSTEMS:
        raise ConfigurationError(
            f"{kind} needs one of {'/'.join(IO_SUBSYSTEMS)}, got {value!r}; "
            f"{_SPEC_HELP}"
        )
    return value


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``REPRO_FAULTS`` spec string into a :class:`FaultPlan`."""
    crash: list[str] = []
    poison: list[str] = []
    hang: list[str] = []
    stall: list[str] = []
    slow: list[str] = []
    corrupt: list[str] = []
    kill: list[int] = []
    io_error: list[str] = []
    enospc: list[str] = []
    journal_batch_crash = 0
    hang_seconds = 3600.0
    stall_seconds = 30.0
    slow_seconds = 2.0
    state_dir: str | None = None
    for clause in spec.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        key, sep, value = clause.partition("=")
        key, value = key.strip(), value.strip()
        if not sep or not value:
            raise ConfigurationError(
                f"malformed fault clause {clause!r}; {_SPEC_HELP}"
            )
        if key == "crash":
            crash.append(value)
        elif key == "poison":
            poison.append(value)
        elif key == "hang":
            hang.append(value)
        elif key == "heartbeat-stall":
            stall.append(value)
        elif key == "slow":
            slow.append(value)
        elif key == "corrupt":
            corrupt.append(value)
        elif key == "kill-worker":
            try:
                kill.append(int(value))
            except ValueError:
                raise ConfigurationError(
                    f"kill-worker needs an integer worker id, got {value!r}; "
                    f"{_SPEC_HELP}"
                )
        elif key == "io-error":
            io_error.append(_subsystem(value, "io-error"))
        elif key == "enospc":
            enospc.append(_subsystem(value, "enospc"))
        elif key == "journal-batch-crash":
            try:
                journal_batch_crash = int(value)
            except ValueError:
                raise ConfigurationError(
                    f"journal-batch-crash needs a 1-based flush number, "
                    f"got {value!r}; {_SPEC_HELP}"
                )
            if journal_batch_crash < 1:
                raise ConfigurationError(
                    f"journal-batch-crash needs a 1-based flush number, "
                    f"got {value!r}; {_SPEC_HELP}"
                )
        elif key in ("hang-seconds", "stall-seconds", "slow-seconds"):
            try:
                seconds = float(value)
            except ValueError:
                raise ConfigurationError(
                    f"{key} needs a number, got {value!r}; {_SPEC_HELP}"
                )
            if key == "hang-seconds":
                hang_seconds = seconds
            elif key == "stall-seconds":
                stall_seconds = seconds
            else:
                slow_seconds = seconds
        elif key == "state":
            state_dir = value
        else:
            raise ConfigurationError(
                f"unknown fault kind {key!r}; {_SPEC_HELP}"
            )
    return FaultPlan(
        crash_cells=tuple(crash),
        poison_cells=tuple(poison),
        hang_cells=tuple(hang),
        stall_cells=tuple(stall),
        slow_cells=tuple(slow),
        corrupt_cells=tuple(corrupt),
        kill_workers=tuple(kill),
        io_error_subsystems=tuple(io_error),
        enospc_subsystems=tuple(enospc),
        journal_batch_crash=journal_batch_crash,
        hang_seconds=hang_seconds,
        stall_seconds=stall_seconds,
        slow_seconds=slow_seconds,
        state_dir=state_dir,
    )


# ----------------------------------------------------------------------
# Auto-created state-directory lifecycle
# ----------------------------------------------------------------------
#: State directories this process created via :func:`faults_from_env`
#: and is responsible for removing (engine teardown + atexit net).
_AUTO_STATE_DIRS: set[str] = set()
_CLEANUP_REGISTERED = False


def _cleanup_auto_state_dirs() -> None:
    for directory in list(_AUTO_STATE_DIRS):
        shutil.rmtree(directory, ignore_errors=True)
        _AUTO_STATE_DIRS.discard(directory)


def release_fault_state(plan: FaultPlan | None) -> None:
    """Remove ``plan``'s state directory if this process auto-created it.

    Called by the engine on run teardown so one-shot chaos runs do not
    leak a ``repro-faults-*`` directory per campaign; explicit
    ``state=<dir>`` directories are the caller's property and are left
    alone. Idempotent. The ``atexit`` net covers plans that never reach
    an engine run, and :mod:`repro.harness.reaper` covers processes
    killed before either fires.
    """
    if plan is None or plan.state_dir is None:
        return
    if plan.state_dir in _AUTO_STATE_DIRS:
        # Membership is kept: _fire_once recreates the directory if the
        # plan is run again, and the atexit net then sweeps that too.
        shutil.rmtree(plan.state_dir, ignore_errors=True)


def faults_from_env() -> FaultPlan | None:
    """The ``REPRO_FAULTS`` plan, if any, with a one-shot state dir.

    A state directory is created automatically (unless the spec pins
    one) so each fault in a manual chaos run fires once and the run can
    then *recover* — the scenario worth rehearsing. The directory is
    stamped with this process's PID and removed on engine teardown (or
    interpreter exit); a SIGKILL'd run's leftover is swept by
    :func:`repro.harness.reaper.reap_orphans` on the next start.
    """
    global _CLEANUP_REGISTERED
    spec = os.environ.get("REPRO_FAULTS", "").strip()
    if not spec:
        return None
    plan = parse_fault_spec(spec)
    if plan.state_dir is None:
        state_dir = tempfile.mkdtemp(prefix=STATE_DIR_PREFIX)
        try:
            (Path(state_dir) / STATE_PID_FILE).write_text(str(os.getpid()))
        except OSError:
            pass
        _AUTO_STATE_DIRS.add(state_dir)
        if not _CLEANUP_REGISTERED:
            atexit.register(_cleanup_auto_state_dirs)
            _CLEANUP_REGISTERED = True
        plan = FaultPlan(
            crash_cells=plan.crash_cells,
            poison_cells=plan.poison_cells,
            hang_cells=plan.hang_cells,
            stall_cells=plan.stall_cells,
            slow_cells=plan.slow_cells,
            corrupt_cells=plan.corrupt_cells,
            kill_workers=plan.kill_workers,
            io_error_subsystems=plan.io_error_subsystems,
            enospc_subsystems=plan.enospc_subsystems,
            journal_batch_crash=plan.journal_batch_crash,
            hang_seconds=plan.hang_seconds,
            stall_seconds=plan.stall_seconds,
            slow_seconds=plan.slow_seconds,
            state_dir=state_dir,
        )
    return plan
