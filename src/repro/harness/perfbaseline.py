"""Perf regression check against the committed performance baselines.

Two benchmark drivers record machine-independent *speedup ratios* at the
repository root (absolute wall-clock depends on the host; the ratio of
two modes measured back-to-back on the same machine does not, to first
order):

* ``benchmarks/bench_kernel.py`` → ``BENCH_kernel.json``: batched vs
  reference simulation kernel, per scheme and for the raw cache kernel;
* ``benchmarks/bench_store.py`` → ``BENCH_store.json``
  (``"kind": "store"``): a multi-mix campaign with the precompute store
  disabled vs cold vs warm;
* ``benchmarks/bench_campaign.py`` → ``BENCH_campaign.json``
  (``"kind": "campaign"``): a skewed-cost campaign under legacy per-cell
  fifo dispatch vs the work-stealing scheduler (per-cell and batched);
* ``benchmarks/bench_overhead.py`` → ``BENCH_overhead.json``
  (``"kind": "overhead"``): a control-plane-bound campaign of trivial
  cells under per-cell journal fsync + per-file cache writes vs the
  group-commit journal + packed cache segments (cold and warm).

A regression is flagged when a freshly measured speedup falls more than
``tolerance`` (default 30%) below the committed baseline's — i.e. the
optimization lost a significant fraction of its advantage — or when a
measurement reports non-identical results between the modes (which is a
correctness bug, never tolerated).

CLI (the CI ``perf-smoke`` job)::

    PYTHONPATH=src python benchmarks/bench_kernel.py --quick --output fresh.json
    PYTHONPATH=src python -m repro.harness.perfbaseline --current fresh.json

    PYTHONPATH=src python benchmarks/bench_store.py --quick --output fresh.json
    PYTHONPATH=src python -m repro.harness.perfbaseline --current fresh.json

The baseline defaults to the committed file matching the current
payload's kind, so the same command line serves both checks.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

#: The committed baseline written by ``benchmarks/bench_kernel.py``.
BASELINE_PATH = Path(__file__).resolve().parents[3] / "BENCH_kernel.json"

#: The committed baseline written by ``benchmarks/bench_store.py``.
STORE_BASELINE_PATH = Path(__file__).resolve().parents[3] / "BENCH_store.json"

#: The committed baseline written by ``benchmarks/bench_campaign.py``.
CAMPAIGN_BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_campaign.json"
)

#: The committed baseline written by ``benchmarks/bench_overhead.py``.
OVERHEAD_BASELINE_PATH = (
    Path(__file__).resolve().parents[3] / "BENCH_overhead.json"
)

#: Allowed fractional loss of speedup before a measurement is a regression.
DEFAULT_TOLERANCE = 0.30


def load_bench(path: str | Path) -> dict:
    """Parse one benchmark JSON, validating its layout version."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read benchmark file {path}: {exc}")
    except ValueError as exc:
        raise ConfigurationError(f"benchmark file {path} is not JSON: {exc}")
    if not isinstance(payload, dict) or "format" not in payload:
        raise ConfigurationError(f"benchmark file {path} has no format marker")
    if payload["format"] != 1:
        raise ConfigurationError(
            f"benchmark file {path} has format {payload['format']!r}; "
            "this checker understands format 1"
        )
    return payload


def _speedups(payload: dict) -> dict[str, float]:
    """Flatten a benchmark payload to ``{measurement: speedup}``."""
    if payload.get("kind") == "store":
        return {
            "store/cold": float(payload["cold"]["speedup"]),
            "store/warm": float(payload["warm"]["speedup"]),
        }
    if payload.get("kind") == "campaign":
        out = {
            "campaign/stolen": float(payload["stolen"]["speedup"]),
            "campaign/batched": float(payload["batched"]["speedup"]),
        }
        # Lane stacking landed after the first committed baselines;
        # older payloads simply lack the arm (compare() intersects).
        if "stacked" in payload:
            out["campaign/stacked"] = float(payload["stacked"]["speedup"])
        return out
    if payload.get("kind") == "overhead":
        return {
            "overhead/fastpath": float(payload["grouped"]["speedup"]),
            "overhead/warm": float(payload["grouped"]["warm_speedup"]),
        }
    out = {"raw_kernel": float(payload["raw_kernel"]["speedup"])}
    for scheme, cell in payload["end_to_end"]["cells"].items():
        out[f"end_to_end/{scheme}"] = float(cell["speedup"])
    return out


def _identity_failures(payload: dict) -> list[str]:
    """Measurements whose modes reported non-identical results."""
    if payload.get("kind") == "store":
        return [
            f"store/{mode}"
            for mode in ("cold", "warm")
            if not payload[mode].get("identical", False)
        ]
    if payload.get("kind") == "campaign":
        return [
            f"campaign/{mode}"
            for mode in ("percell", "stolen", "batched", "stacked")
            if mode in payload and not payload[mode].get("identical", False)
        ]
    if payload.get("kind") == "overhead":
        return [
            f"overhead/{mode}"
            for mode in ("percell", "grouped")
            if not payload[mode].get("identical", False)
        ]
    return [
        f"end_to_end/{scheme}"
        for scheme, cell in payload["end_to_end"]["cells"].items()
        if not cell.get("identical", False)
    ]


@dataclass(frozen=True)
class Regression:
    """One measurement that fell outside the tolerance."""

    measurement: str
    baseline: float
    current: float
    #: Fractional loss of speedup relative to the baseline.
    loss: float

    def __str__(self) -> str:
        if self.loss >= 1.0:
            return f"{self.measurement}: kernels reported non-identical results"
        return (
            f"{self.measurement}: speedup {self.current:.2f}x is "
            f"{self.loss:.0%} below the baseline {self.baseline:.2f}x"
        )


def compare(
    current: dict, baseline: dict, tolerance: float = DEFAULT_TOLERANCE
) -> list[Regression]:
    """Regressions of ``current`` against ``baseline``.

    Only measurements present in *both* payloads are compared, so a
    baseline refresh that adds a scheme does not break older branches.
    A current cell with ``identical: false`` is reported as a regression
    with ``loss = 1.0`` — equivalence failures outrank any timing.
    """
    if not 0 <= tolerance < 1:
        raise ConfigurationError("tolerance must be in [0, 1)")
    if current.get("kind") != baseline.get("kind"):
        raise ConfigurationError(
            f"cannot compare a {current.get('kind') or 'kernel'!r} benchmark "
            f"against a {baseline.get('kind') or 'kernel'!r} baseline"
        )
    regressions: list[Regression] = []
    for measurement in _identity_failures(current):
        regressions.append(Regression(measurement, 0.0, 0.0, 1.0))
    base = _speedups(baseline)
    cur = _speedups(current)
    for measurement in sorted(base.keys() & cur.keys()):
        floor = base[measurement] * (1.0 - tolerance)
        if cur[measurement] < floor:
            loss = 1.0 - cur[measurement] / base[measurement]
            regressions.append(
                Regression(measurement, base[measurement], cur[measurement], loss)
            )
    return regressions


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness.perfbaseline",
        description="Compare a fresh kernel benchmark against the committed "
        "baseline; exit 1 on regression.",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed baseline (default: the committed file matching the "
        f"current payload's kind — {BASELINE_PATH.name}, "
        f"{STORE_BASELINE_PATH.name}, {CAMPAIGN_BASELINE_PATH.name}, "
        f"or {OVERHEAD_BASELINE_PATH.name})",
    )
    parser.add_argument(
        "--current",
        type=Path,
        required=True,
        help="freshly measured BENCH_kernel.json to check",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed fractional speedup loss (default: 0.30)",
    )
    args = parser.parse_args(argv)
    current = load_bench(args.current)
    baseline_path = args.baseline
    if baseline_path is None:
        baseline_path = {
            "store": STORE_BASELINE_PATH,
            "campaign": CAMPAIGN_BASELINE_PATH,
            "overhead": OVERHEAD_BASELINE_PATH,
        }.get(current.get("kind"), BASELINE_PATH)
    baseline = load_bench(baseline_path)
    regressions = compare(current, baseline, args.tolerance)
    base, cur = _speedups(baseline), _speedups(current)
    for measurement in sorted(base.keys() | cur.keys()):
        print(
            f"{measurement:22s} baseline={base.get(measurement, float('nan')):5.2f}x "
            f"current={cur.get(measurement, float('nan')):5.2f}x"
        )
    if regressions:
        for regression in regressions:
            print(f"REGRESSION: {regression}", file=sys.stderr)
        return 1
    print(f"ok: no speedup fell more than {args.tolerance:.0%} below baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
