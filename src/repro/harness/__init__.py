"""Experiment harness: profiles, mix experiments, figures, tables."""

from repro.harness.exec import (
    CellOutcome,
    EngineTelemetry,
    ExecutionEngine,
    MixSchemeCell,
    ResultCache,
    SensitivityCell,
    backoff_delay,
    cell_key,
    engine_from_env,
)
from repro.harness.faults import FaultPlan, faults_from_env, parse_fault_spec
from repro.harness.journal import JournalEntry, RunJournal
from repro.harness.experiment import (
    MixResult,
    SchemeRunResult,
    WorkloadResult,
    make_scheme,
    mix_labels,
    run_custom_mix,
    run_mix,
    run_mix_grid,
    run_mix_scheme,
)
from repro.harness.figures import FigureGroup, WorkloadRow, figure11_data, figure_group
from repro.harness.runconfig import LARGE, PROFILES, SCALED, TEST, RunProfile
from repro.harness.sensitivity import (
    SensitivityCurve,
    classify_benchmarks,
    run_sensitivity_curve,
    run_sensitivity_study,
)
from repro.harness.tables import (
    ActiveAttackerSummary,
    Table6,
    Table6Row,
    active_attacker_summary,
    table6,
)
from repro.harness.report import (
    render_active_attacker,
    render_figure_group,
    render_sensitivity,
    render_table6,
    render_telemetry,
    size_label,
)

__all__ = [
    "RunProfile",
    "SCALED",
    "TEST",
    "LARGE",
    "PROFILES",
    "run_mix",
    "run_mix_scheme",
    "run_custom_mix",
    "run_mix_grid",
    "make_scheme",
    "mix_labels",
    "ExecutionEngine",
    "ResultCache",
    "EngineTelemetry",
    "CellOutcome",
    "MixSchemeCell",
    "SensitivityCell",
    "backoff_delay",
    "cell_key",
    "engine_from_env",
    "FaultPlan",
    "parse_fault_spec",
    "faults_from_env",
    "JournalEntry",
    "RunJournal",
    "MixResult",
    "SchemeRunResult",
    "WorkloadResult",
    "figure_group",
    "figure11_data",
    "FigureGroup",
    "WorkloadRow",
    "SensitivityCurve",
    "run_sensitivity_curve",
    "run_sensitivity_study",
    "classify_benchmarks",
    "Table6",
    "Table6Row",
    "table6",
    "ActiveAttackerSummary",
    "active_attacker_summary",
    "render_figure_group",
    "render_sensitivity",
    "render_table6",
    "render_active_attacker",
    "render_telemetry",
    "size_label",
]
