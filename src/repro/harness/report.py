"""Text rendering of the reproduced figures and tables.

The benchmark harness prints, for every paper figure and table, the same
rows/series the paper reports — as plain text suitable for terminals and
log files. Sizes are labeled with their paper-scale equivalents
(e.g. ``2MB`` for a 256-line scaled partition).
"""

from __future__ import annotations

from repro.config import ArchConfig
from repro.errors import ConfigurationError
from repro.harness.exec import EngineTelemetry
from repro.harness.figures import FigureGroup
from repro.harness.sensitivity import SensitivityCurve
from repro.harness.tables import (
    ActiveAttackerSummary,
    CampaignDistributions,
    Table6,
)

_ARCH = ArchConfig.scaled()


def size_label(lines: int) -> str:
    """Paper-scale label for a scaled line count (256 -> ``2MB``)."""
    mb = _ARCH.lines_to_paper_mb(lines)
    if mb >= 1.0:
        if mb == int(mb):
            return f"{int(mb)}MB"
        return f"{mb:.2f}MB"
    return f"{int(round(mb * 1024))}kB"


def render_figure_group(group: FigureGroup) -> str:
    """Render one Figure 10/12-17 group as a text table."""
    lines = [group.title, "=" * len(group.title)]
    schemes = list(group.rows[0].normalized_ipc) if group.rows else []
    header = (
        f"{'workload':28s} "
        + " ".join(f"{s + ' IPC':>13s}" for s in schemes)
        + f" {'Time b/a':>9s} {'Unt b/a':>8s} {'Unt partition (q1/med/q3)':>26s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in group.rows:
        label = ("*" if row.llc_sensitive else " ") + row.label
        quartiles = row.untangle_partition_quartiles
        partition = (
            f"{size_label(quartiles[1])}/{size_label(quartiles[2])}/"
            f"{size_label(quartiles[3])}"
        )
        lines.append(
            f"{label:28s} "
            + " ".join(
                f"{row.normalized_ipc[s]:>13.3f}" for s in schemes
            )
            + f" {row.time_bits_per_assessment:>9.2f}"
            + f" {row.untangle_bits_per_assessment:>8.2f}"
            + f" {partition:>26s}"
        )
    lines.append("-" * len(header))
    geo = " ".join(
        f"{s}={v:.3f}" for s, v in group.geomean_speedups.items()
    )
    lines.append(f"Geo. mean speedup over Static: {geo}")
    lines.append(
        f"Untangle Maintain fraction: {group.maintain_fraction_untangle:.2f}"
        "   (* = LLC-sensitive)"
    )
    return "\n".join(lines)


def render_sensitivity(curves: dict[str, SensitivityCurve]) -> str:
    """Render the Figure 11 study: normalized IPC per size per benchmark."""
    if not curves:
        return "(no curves)"
    any_curve = next(iter(curves.values()))
    sizes = [size_label(s) for s in any_curve.sizes_lines]
    header = f"{'benchmark':14s} " + " ".join(f"{s:>6s}" for s in sizes) + "  adequate"
    lines = ["Figure 11: LLC sensitivity (IPC normalized to 8MB)", header,
             "-" * len(header)]
    for name in sorted(curves):
        curve = curves[name]
        values = " ".join(f"{v:>6.2f}" for v in curve.normalized_ipc)
        adequate = size_label(curve.adequate_size_lines())
        sensitive = "*" if curve.llc_sensitive(_ARCH.default_partition_lines) else " "
        lines.append(f"{sensitive}{name:13s} {values}  {adequate:>8s}")
    lines.append("(* = LLC-sensitive: adequate size > 2MB)")
    return "\n".join(lines)


def render_table6(table: Table6) -> str:
    """Render Table 6: leakage of the mixes under Time and Untangle."""
    lines = [
        "Table 6: Leakage under Time and Untangle",
        f"{'':8s} {'Time b/assess':>14s} {'Time total':>11s} "
        f"{'Unt b/assess':>13s} {'Unt total':>10s} {'reduction':>10s}",
    ]
    for row in table.rows:
        lines.append(
            f"Mix {row.mix_id:<4d} {row.time_bits_per_assessment:>13.1f}b "
            f"{row.time_total_bits:>10.1f}b "
            f"{row.untangle_bits_per_assessment:>12.1f}b "
            f"{row.untangle_total_bits:>9.1f}b "
            f"{row.per_assessment_reduction:>9.0%}"
        )
    lines.append(
        f"Average per-assessment leakage reduction: {table.average_reduction:.0%} "
        "(paper: 78%)"
    )
    return "\n".join(lines)


def render_distributions(dist: CampaignDistributions) -> str:
    """Render campaign-level leakage/IPC distributions per scheme.

    The numbers come from streaming sketches (P² quantiles + Welford),
    so this renders in O(1) memory regardless of campaign size; the
    p10/p50/p90 columns are estimates, exact below five observations.
    """
    if not dist.schemes:
        return "(no distribution data)"
    title = "Campaign distributions (streaming sketches)"
    lines = [title, "=" * len(title)]
    header = (
        f"{'scheme':16s} {'metric':12s} {'n':>6s} {'mean':>9s} "
        f"{'p10':>9s} {'p50':>9s} {'p90':>9s} {'min':>9s} {'max':>9s}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    summary = dist.summary()
    for scheme in dist.schemes:
        for metric, key in (("leakage b/a", "leakage_bits"), ("ipc", "ipc")):
            stats = summary[scheme][key]
            lines.append(
                f"{scheme:16s} {metric:12s} {stats['count']:>6d} "
                f"{stats['mean']:>9.3f} {stats['p10']:>9.3f} "
                f"{stats['p50']:>9.3f} {stats['p90']:>9.3f} "
                f"{stats['min']:>9.3f} {stats['max']:>9.3f}"
            )
    lines.append("(percentiles are P² estimates; exact below 5 observations)")
    return "\n".join(lines)


def _human_bytes(count: float) -> str:
    """``1536`` → ``"1.5 KiB"`` (for the store line of the summary)."""
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024 or unit == "GiB":
            return f"{count:.1f} {unit}" if unit != "B" else f"{int(count)} B"
        count /= 1024
    return f"{count:.1f} GiB"  # pragma: no cover - loop always returns


def render_telemetry(telemetry: EngineTelemetry) -> str:
    """Summarize one execution engine's counters as a text block.

    Renders from :meth:`EngineTelemetry.snapshot` — the same canonical
    counter dict the metrics exporters publish — so the printed summary
    and the exported metrics can never disagree. Shows the cache
    economics (hits vs. simulations), the robustness counters (retries,
    failed cells, quarantined cache entries, worker supervision
    events), and the aggregate work done (simulated cycles, per-cell
    seconds vs. engine wall-clock — their ratio is the achieved
    parallel speedup).

    Accounting invariant (journal replays are neither cache misses nor
    fresh simulations): ``computed + hit + replayed + failed == total``.
    """
    snap = telemetry.snapshot()
    breakdown = (
        f"{snap['hit']} cache hits, "
        f"{snap['computed']} simulated, {snap['failed']} failed"
    )
    if snap["poisoned"]:
        breakdown += f" ({snap['poisoned']} poisoned)"
    if snap["replayed"]:
        breakdown = f"{snap['replayed']} journal replays, " + breakdown
    lines = [
        "Execution telemetry",
        f"  cells:        {snap['total']} ({breakdown})",
        f"  retries:      {snap['retries']}",
        f"  cycles:       {snap['cycles_simulated']:,} simulated",
        f"  cell time:    {snap['cell_seconds']:.2f}s across cells",
        f"  wall clock:   {snap['wall_seconds']:.2f}s",
    ]
    if snap.get("cell_seconds_p50") is not None:
        lines.append(
            "  cell seconds: "
            f"p50={snap['cell_seconds_p50']:.3f}s "
            f"p90={snap['cell_seconds_p90']:.3f}s "
            f"p99={snap['cell_seconds_p99']:.3f}s (streaming sketch)"
        )
    if snap["wall_seconds"] > 0 and snap["cell_seconds"] > 0:
        speedup = snap["cell_seconds"] / snap["wall_seconds"]
        lines.append(f"  speedup:      {speedup:.2f}x (cell time / wall clock)")
    if snap["batches"]:
        factor = snap["batched_cells"] / snap["batches"]
        lines.append(
            f"  scheduling:   {snap['batches']} chunks dispatched "
            f"({factor:.1f} cells/chunk), {snap['steals']} steals"
        )
    if snap.get("stacked_cells"):
        lines.append(
            f"  stacking:     {snap['stacked_cells']} cells ran as "
            f"stacked lanes, {snap['lane_divergences']} lane divergences"
        )
    if snap["quarantined"]:
        lines.append(
            f"  quarantined:  {snap['quarantined']} corrupt cache "
            "entries renamed *.corrupt"
        )
    if (
        snap["worker_crashes"]
        or snap["worker_timeouts"]
        or snap["worker_unresponsive"]
    ):
        lines.append(
            f"  supervision:  {snap['worker_crashes']} worker crashes, "
            f"{snap['worker_timeouts']} deadline/stall kills, "
            f"{snap['worker_unresponsive']} unresponsive warnings, "
            f"{snap['workers_respawned']} respawns"
        )
    if snap["backoff_seconds"] > 0:
        lines.append(
            f"  backoff:      {snap['backoff_seconds']:.2f}s of retry delay"
        )
    store_activity = (
        snap["store_trace_hits"]
        + snap["store_trace_misses"]
        + snap["store_rmax_hits"]
        + snap["store_rmax_misses"]
    )
    if store_activity:
        lines.append(
            f"  store:        traces {snap['store_trace_hits']} hits / "
            f"{snap['store_trace_misses']} misses "
            f"({_human_bytes(snap['store_trace_bytes'])} zero-copy), "
            f"rmax {snap['store_rmax_hits']} hits / "
            f"{snap['store_rmax_misses']} misses"
        )
        lines.append(
            f"  rebuilt:      {snap['workload_builds']} workload "
            f"compositions, {snap['rmax_solves']} R_max solves"
        )
    if snap["store_quarantines"]:
        lines.append(
            f"  store quarantined: {snap['store_quarantines']} corrupt "
            "artifacts renamed *.corrupt"
        )
    for subsystem in sorted(snap["degraded"]):
        lines.append(
            f"  degraded:     {subsystem} — {snap['degraded'][subsystem]} "
            "(campaign continued without it)"
        )
    if snap["interrupted"]:
        lines.append(
            "  interrupted:  yes (journaled cells resume with --resume / "
            "REPRO_RESUME=1)"
        )
    for record in telemetry.records:
        if record.status in ("failed", "poisoned"):
            lines.append(
                f"  {record.status.upper()} {record.label}: {record.error}"
            )
    return "\n".join(lines)


def render_active_attacker(summary: ActiveAttackerSummary) -> str:
    """Render the Section 9 active-attacker comparison."""
    return (
        "Active attacker (no Maintain optimization) vs optimized accounting:\n"
        f"  optimized:   {summary.optimized_bits_per_assessment:.2f} bits/assessment "
        "(paper: 0.7)\n"
        f"  unoptimized: {summary.unoptimized_bits_per_assessment:.2f} bits/assessment "
        "(paper: 3.8)\n"
        f"  amplification: {summary.amplification:.1f}x"
    )


def render_conformance(reports) -> str:
    """Render conformance reports (``python -m repro conform``)."""
    lines = []
    failures = 0
    for report in reports:
        title = f"{report.scheme}  (profile: {report.profile_name})"
        lines.append(title)
        lines.append("-" * len(title))
        for check in report.checks:
            mark = {"passed": "PASS", "failed": "FAIL", "skipped": "SKIP"}[
                check.status
            ]
            detail = f"  {check.detail}" if check.detail else ""
            lines.append(f"  [{mark}] {check.name}{detail}")
            if check.status == "failed":
                failures += 1
        lines.append("")
    checks = sum(len(r.checks) for r in reports)
    verdict = "OK" if failures == 0 else "FAILED"
    lines.append(
        f"Conformance {verdict}: {len(reports)} report(s), "
        f"{checks} check(s), {failures} failure(s)"
    )
    return "\n".join(lines)


def render_scenario(result) -> str:
    """Render a scenario run: per sweep point, per mix, per scheme.

    Shows the geomean IPC speedup over the ``static`` column when the
    scenario includes one (the paper's headline metric); otherwise falls
    back to the mean raw IPC, since normalization is undefined without a
    baseline.
    """
    spec = result.spec
    keys = [selection.run_key for selection in spec.schemes]
    title = f"Scenario {spec.name!r}"
    lines = [title, "=" * len(title)]
    for point_result in result.points:
        point = point_result.point
        header = f"{point.campaign}  (profile: {point.profile.name})"
        lines.append(header)
        lines.append("-" * len(header))
        col = f"{'mix':12s} " + " ".join(f"{k:>16s}" for k in keys)
        lines.append(col)
        for mix_key, mix in point_result.results.items():
            cells = []
            for key in keys:
                run = mix.runs[key]
                try:
                    cells.append(f"{mix.geomean_speedup(key):>15.3f}x")
                except ConfigurationError:
                    ipcs = [w.ipc for w in run.workloads]
                    mean = sum(ipcs) / len(ipcs) if ipcs else 0.0
                    cells.append(f"{'ipc=' + format(mean, '.3f'):>16s}")
            label = f"mix {mix_key}" if mix_key is not None else "custom"
            lines.append(f"{label:12s} " + " ".join(cells))
        lines.append("")
    lines.append(
        "(columns: geomean IPC speedup over the static column; "
        "ipc=mean raw IPC when the scenario has no static baseline)"
    )
    return "\n".join(lines)


def render_mix_result(result) -> str:
    """Render one mix under an ad-hoc scheme set (``mix --schemes``).

    The figure renderer needs the paper's full static/time/untangle
    column set; a restricted or extended ``--schemes`` run gets this
    plain IPC table instead.
    """
    schemes = list(result.runs)
    title = f"Mix {result.mix_id}: " + ", ".join(schemes)
    lines = [title, "=" * len(title)]
    header = f"{'workload':28s} " + " ".join(
        f"{s + ' IPC':>16s}" for s in schemes
    )
    lines.append(header)
    lines.append("-" * len(header))
    for label in result.labels:
        cells = " ".join(
            f"{result.runs[s].workload(label).ipc:>16.3f}" for s in schemes
        )
        lines.append(f"{label:28s} {cells}")
    if "static" in result.runs:
        try:
            geo = "  ".join(
                f"{s}={result.geomean_speedup(s):.3f}x"
                for s in schemes
                if s != "static"
            )
            lines.append(f"Geomean speedup over static: {geo}")
        except ConfigurationError as exc:
            lines.append(f"(speedups unavailable: {exc})")
    return "\n".join(lines)
