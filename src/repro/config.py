"""Architecture configuration (Table 3 of the paper).

:class:`ArchConfig` captures the simulated machine: core count and issue
width, cache geometry and latencies, and the list of supported partition
sizes. Two constructors are provided:

* :meth:`ArchConfig.paper` — the paper's parameters (8 OoO cores at 2 GHz,
  32 kB L1s, 16 MB 16-way LLC, 50 ns DRAM, nine partition sizes from
  128 kB to 8 MB). Useful for documentation and unit conversions; far too
  large to simulate wholesale in Python.
* :meth:`ArchConfig.scaled` — the default evaluation configuration: every
  capacity divided by :data:`CAPACITY_SCALE` so that the LLC is 2048 lines
  instead of 262144, with all *ratios* between partition sizes, LLC total,
  and (in :mod:`repro.workloads`) working sets preserved. Those ratios are
  what determine the shapes of the paper's figures.

All capacities are expressed in cache lines, all times in core cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

#: Factor by which the scaled configuration shrinks every capacity
#: relative to the paper's machine (16 MB -> 128 kB worth of lines).
CAPACITY_SCALE = 128

#: Bytes per cache line (Table 3), shared by both configurations.
LINE_BYTES = 64


@dataclass(frozen=True)
class ArchConfig:
    """Simulated machine parameters.

    Attributes
    ----------
    num_cores:
        Number of cores; each runs one security domain's workload.
    issue_width:
        Max instructions retired per cycle; non-memory instructions cost
        ``1 / issue_width`` cycles each.
    l1_lines / l1_associativity:
        Private L1 data cache geometry (lines, ways).
    llc_lines / llc_associativity:
        Shared LLC geometry (total lines, ways).
    l1_latency / llc_latency / dram_latency:
        Round-trip latencies in cycles for a hit at each level.
    supported_partition_lines:
        The pre-defined list of partition sizes a domain may use, in
        lines, ascending (Table 3 lists nine sizes).
    default_partition_lines:
        Initial/static partition size (the paper's 2 MB equivalent).
    """

    num_cores: int = 8
    issue_width: int = 8
    l1_lines: int = 64
    l1_associativity: int = 8
    llc_lines: int = 2048
    llc_associativity: int = 16
    l1_latency: int = 2
    llc_latency: int = 10
    dram_latency: int = 110
    supported_partition_lines: tuple[int, ...] = (
        16, 32, 64, 128, 256, 384, 512, 768, 1024
    )
    default_partition_lines: int = 256

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigurationError("need at least one core")
        if self.issue_width < 1:
            raise ConfigurationError("issue width must be >= 1")
        if self.l1_lines < self.l1_associativity or self.l1_associativity < 1:
            raise ConfigurationError("invalid L1 geometry")
        if self.llc_lines < self.llc_associativity or self.llc_associativity < 1:
            raise ConfigurationError("invalid LLC geometry")
        sizes = self.supported_partition_lines
        if not sizes or list(sizes) != sorted(set(sizes)):
            raise ConfigurationError(
                "supported partition sizes must be unique and ascending"
            )
        if sizes[0] < self.llc_associativity:
            raise ConfigurationError(
                "smallest partition must hold at least one full set "
                f"({self.llc_associativity} lines)"
            )
        if sizes[-1] > self.llc_lines:
            raise ConfigurationError("largest partition exceeds the LLC")
        if self.default_partition_lines not in sizes:
            raise ConfigurationError(
                f"default partition {self.default_partition_lines} not in the "
                f"supported list {sizes}"
            )
        for latency in (self.l1_latency, self.llc_latency, self.dram_latency):
            if latency < 1:
                raise ConfigurationError("latencies must be >= 1 cycle")

    # ------------------------------------------------------------------
    @classmethod
    def paper(cls) -> "ArchConfig":
        """The paper's Table 3 machine, in lines (64 B each)."""
        kib_lines = 1024 // LINE_BYTES
        mib_lines = 1024 * kib_lines
        return cls(
            num_cores=8,
            issue_width=8,
            l1_lines=32 * kib_lines,
            l1_associativity=8,
            llc_lines=16 * mib_lines,
            llc_associativity=16,
            l1_latency=2,
            llc_latency=10,
            dram_latency=100,
            supported_partition_lines=(
                128 * kib_lines, 256 * kib_lines, 512 * kib_lines,
                1 * mib_lines, 2 * mib_lines, 3 * mib_lines,
                4 * mib_lines, 6 * mib_lines, 8 * mib_lines,
            ),
            default_partition_lines=2 * mib_lines,
        )

    @classmethod
    def scaled(cls, num_cores: int = 8) -> "ArchConfig":
        """The default evaluation machine: paper capacities / 128."""
        return cls(num_cores=num_cores)

    @classmethod
    def tiny(cls, num_cores: int = 2) -> "ArchConfig":
        """A very small machine for fast unit tests."""
        return cls(
            num_cores=num_cores,
            issue_width=4,
            l1_lines=16,
            l1_associativity=4,
            llc_lines=256,
            llc_associativity=8,
            supported_partition_lines=(8, 16, 32, 64, 128),
            default_partition_lines=32,
        )

    # ------------------------------------------------------------------
    def with_cores(self, num_cores: int) -> "ArchConfig":
        """This configuration with a different core count."""
        return replace(self, num_cores=num_cores)

    @property
    def partition_size_labels(self) -> list[str]:
        """Human-readable labels for the supported sizes.

        In the scaled configuration, each line count maps back to the
        paper-scale size it represents (e.g. 256 lines -> "2MB").
        """
        labels = []
        for lines in self.supported_partition_lines:
            paper_bytes = lines * LINE_BYTES * CAPACITY_SCALE
            if paper_bytes >= 1024 * 1024:
                labels.append(f"{paper_bytes // (1024 * 1024)}MB")
            else:
                labels.append(f"{paper_bytes // 1024}kB")
        return labels

    def lines_to_paper_mb(self, lines: int) -> float:
        """Convert a scaled line count to the paper-scale size in MB."""
        return lines * LINE_BYTES * CAPACITY_SCALE / (1024 * 1024)

    def paper_mb_to_lines(self, mb: float) -> int:
        """Convert a paper-scale size in MB to scaled lines."""
        return int(round(mb * 1024 * 1024 / (LINE_BYTES * CAPACITY_SCALE)))
