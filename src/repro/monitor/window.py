"""Reuse-distance tracking for the utility monitor.

The UMON-style monitor (Section 7) must know, for each candidate
partition size, how many recent accesses *would have hit* in a partition
of that size. For an LRU-managed cache this is classical Mattson stack
analysis: an access hits in a cache of capacity ``C`` lines exactly when
its *reuse distance* — the number of distinct lines touched since the
previous access to the same line — is smaller than ``C``. One pass over
the access stream therefore yields hit counts for *all* candidate sizes
simultaneously, which is exactly the property UMON's single shadow-tag
array exploits in hardware.

:class:`ReuseDistanceTracker` computes reuse distances online in
O(log n) per access with a Fenwick tree over access timestamps holding
one marker at each line's last-access position.
"""

from __future__ import annotations

from repro.errors import SimulationError


class FenwickTree:
    """A binary indexed tree over a growable range of positions."""

    __slots__ = ("_tree", "_size")

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise SimulationError("Fenwick capacity must be >= 1")
        self._size = capacity
        self._tree = [0] * (capacity + 1)

    def _grow(self, needed: int) -> None:
        new_size = self._size
        while new_size < needed:
            new_size *= 2
        # Rebuild from per-position values (O(n log n), amortized by doubling).
        # A node's point value is its range sum minus its direct children's
        # range sums (the children tile the rest of the node's range).
        tree = self._tree
        values = [0] * (self._size + 1)
        for i in range(1, self._size + 1):
            value = tree[i]
            child = i - 1
            stop = i - (i & -i)
            while child > stop:
                value -= tree[child]
                child -= child & -child
            values[i] = value
        new_tree = [0] * (new_size + 1)
        for i in range(1, self._size + 1):
            if values[i]:
                j = i
                while j <= new_size:
                    new_tree[j] += values[i]
                    j += j & -j
        self._tree = new_tree
        self._size = new_size

    def add(self, position: int, delta: int) -> None:
        """Add ``delta`` at a 1-based position."""
        if position < 1:
            raise SimulationError("Fenwick positions are 1-based")
        if position > self._size:
            self._grow(position)
        tree = self._tree
        while position <= self._size:
            tree[position] += delta
            position += position & -position

    def prefix_sum(self, position: int) -> int:
        """Sum of values at positions ``1..position``."""
        if position > self._size:
            position = self._size
        total = 0
        tree = self._tree
        while position > 0:
            total += tree[position]
            position -= position & -position
        return total

    def range_sum(self, low: int, high: int) -> int:
        """Sum of values at positions ``low..high`` inclusive."""
        if high < low:
            return 0
        return self.prefix_sum(high) - self.prefix_sum(low - 1)


#: Sentinel reuse distance for a first-touch (cold) access.
COLD_DISTANCE = -1


class ReuseDistanceTracker:
    """Online LRU reuse distances over a line-address stream."""

    __slots__ = ("_fenwick", "_last_position", "_clock")

    def __init__(self):
        self._fenwick = FenwickTree()
        self._last_position: dict[int, int] = {}
        self._clock = 0

    @property
    def distinct_lines(self) -> int:
        """Number of distinct lines observed so far."""
        return len(self._last_position)

    def observe(self, line_addr: int) -> int:
        """Record one access; returns its reuse distance.

        Returns :data:`COLD_DISTANCE` for the first access to a line.
        The reuse distance is the number of *distinct other* lines
        accessed since the previous access to ``line_addr``; the access
        hits in an LRU cache of capacity ``C`` iff ``0 <= distance < C``.
        """
        self._clock += 1
        now = self._clock
        previous = self._last_position.get(line_addr)
        if previous is None:
            distance = COLD_DISTANCE
        else:
            distance = self._fenwick.range_sum(previous + 1, now - 1)
            self._fenwick.add(previous, -1)
        self._fenwick.add(now, 1)
        self._last_position[line_addr] = now
        return distance

    def observe_run(self, line_addrs: list[int]) -> list[int]:
        """Record a run of accesses; returns their reuse distances.

        All-integer arithmetic, so the distances and the final tree state
        are exactly those of per-address :meth:`observe` calls; the tree
        is pre-grown to the run's last timestamp and the Fenwick walks
        are inlined over local references, which is what makes this the
        batched monitor's hot path.
        """
        fenwick = self._fenwick
        clock = self._clock
        if clock + len(line_addrs) > fenwick._size:
            fenwick._grow(clock + len(line_addrs))
        tree = fenwick._tree
        size = fenwick._size
        last_position = self._last_position
        get_previous = last_position.get
        distances: list[int] = []
        append = distances.append
        for line_addr in line_addrs:
            clock += 1
            previous = get_previous(line_addr)
            if previous is None:
                append(COLD_DISTANCE)
            else:
                # range_sum(previous + 1, clock - 1) as two prefix walks.
                total = 0
                position = clock - 1
                while position > 0:
                    total += tree[position]
                    position -= position & -position
                position = previous
                while position > 0:
                    total -= tree[position]
                    position -= position & -position
                append(total)
                position = previous
                while position <= size:
                    tree[position] -= 1
                    position += position & -position
            position = clock
            while position <= size:
                tree[position] += 1
                position += position & -position
            last_position[line_addr] = clock
        self._clock = clock
        return distances

    def reset(self) -> None:
        """Forget all history (used when a monitor is cleared)."""
        self._fenwick = FenwickTree()
        self._last_position.clear()
        self._clock = 0
