"""Utility monitoring substrate (the paper's UMON-style hardware table)."""

from repro.monitor.footprint import FootprintMetric
from repro.monitor.metrics import TimingDependentView, UtilizationMonitor
from repro.monitor.umon import UMONMonitor
from repro.monitor.window import COLD_DISTANCE, FenwickTree, ReuseDistanceTracker

__all__ = [
    "UMONMonitor",
    "FootprintMetric",
    "UtilizationMonitor",
    "TimingDependentView",
    "ReuseDistanceTracker",
    "FenwickTree",
    "COLD_DISTANCE",
]
