"""Utilization-metric protocol and timing-dependence declarations.

Table 2's first component: every dynamic partitioning scheme has a
utilization metric that reflects the program's demand for the resource.
Untangle's Principle 1 requires the metric to be *timing-independent*
(Section 5.2); compliance is a declared property checked at scheme
construction by :mod:`repro.core.principles` and validated dynamically by
the differential tests.

:class:`TimingDependentView` deliberately wraps a timing-independent
monitor as a timing-*dependent* metric. It models conventional schemes
(e.g. UMON's "hits in the last T cycles"): the same counters, but fed
with unfiltered accesses and sampled on a wall-clock schedule, which is
what entangles the metric value with program timing.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class UtilizationMonitor(Protocol):
    """A per-domain monitor consuming accesses and producing demand curves."""

    timing_independent: bool

    def observe(self, line_addr: int) -> None:
        ...

    def hits_per_size(self) -> np.ndarray:
        ...

    def reset_window(self) -> None:
        ...


class TimingDependentView:
    """Marks a monitor as violating Principle 1 (conventional schemes).

    All calls delegate to the wrapped monitor; only the declared
    ``timing_independent`` property changes. Conventional schemes built on
    this view cannot pass :func:`repro.core.principles.require_timing_independent_metric`.
    """

    timing_independent = False

    def __init__(self, inner: UtilizationMonitor):
        self._inner = inner

    def observe(self, line_addr: int) -> None:
        self._inner.observe(line_addr)

    def observe_block(
        self, addrs: np.ndarray, hashes: np.ndarray | None = None
    ) -> None:
        block = getattr(self._inner, "observe_block", None)
        if block is not None:
            block(addrs, hashes)
            return
        observe = self._inner.observe
        for line_addr in addrs.tolist():
            observe(line_addr)

    @property
    def uses_address_hashes(self) -> bool:
        return bool(getattr(self._inner, "uses_address_hashes", False))

    def hits_per_size(self) -> np.ndarray:
        return self._inner.hits_per_size()

    def reset_window(self) -> None:
        self._inner.reset_window()

    def epoch_accesses(self) -> float:
        return self._inner.epoch_accesses()  # type: ignore[attr-defined]

    @property
    def candidate_sizes(self) -> list[int]:
        return self._inner.candidate_sizes  # type: ignore[attr-defined]
