"""UMON-style LLC utilization monitor (Section 7 of the paper).

For each security domain, the monitor estimates how many LLC hits the
domain's recent accesses would have achieved under *each* supported
partition size. The hardware realization is a tag-only shadow table over
sampled sets; the software model here uses the equivalent Mattson stack
analysis (see :mod:`repro.monitor.window`): hits at size ``C`` = number
of monitored accesses with reuse distance below ``C`` lines.

Two operating modes matter for the paper:

* **Untangle mode** (``timing_independent=True``): the monitor is fed
  only *retired, public* post-L1 accesses in program order — secret-
  annotated accesses are filtered out upstream (Principle 1 plus
  annotations, Section 5.2).
* **Conventional mode** (``timing_independent=False``): every post-L1
  access is monitored, including secret-dependent ones. The scheme's
  actions then depend on secrets — the leakage Untangle eliminates.

Set sampling (``sampling_shift``) monitors only lines whose address
hashes into ``1 / 2**shift`` of the space and scales counts back up,
like UMON's sampled shadow sets.
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.errors import ConfigurationError
from repro.monitor.window import COLD_DISTANCE, ReuseDistanceTracker

_MASK64 = 0xFFFFFFFFFFFFFFFF


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: cheap avalanching hash for set sampling.

    Sampling on raw low address bits correlates with strided access
    patterns — a stride that is a multiple of ``2**shift`` is sampled at
    100% or 0%, biasing the hits-per-size curve. Hashing first makes the
    sampled subset pattern-independent (like UMON's set hashing).
    """
    x = int(x) & _MASK64
    x = (x ^ (x >> 33)) * 0xFF51AFD7ED558CCD & _MASK64
    x = (x ^ (x >> 33)) * 0xC4CEB9FE1A85EC53 & _MASK64
    return x ^ (x >> 33)


_U64_SHIFT = np.uint64(33)
_U64_MULT1 = np.uint64(0xFF51AFD7ED558CCD)
_U64_MULT2 = np.uint64(0xC4CEB9FE1A85EC53)


def mix64_array(addrs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_mix64` over an address array; returns uint64.

    Bit-identical to the scalar finalizer: the int64 → uint64 cast is the
    two's-complement reinterpretation (``x & _MASK64``), and uint64
    multiplication wraps modulo ``2**64`` exactly like the masked Python
    product. Streams hash their addresses once through this and reuse the
    result every pass (:attr:`repro.sim.cpu.InstructionStream.hashed_addresses`).
    """
    x = addrs.astype(np.uint64)
    x = (x ^ (x >> _U64_SHIFT)) * _U64_MULT1
    x = (x ^ (x >> _U64_SHIFT)) * _U64_MULT2
    return x ^ (x >> _U64_SHIFT)


class UMONMonitor:
    """Per-domain shadow monitor producing hits-per-candidate-size curves.

    Parameters
    ----------
    candidate_sizes:
        Ascending partition sizes (in lines) to evaluate — the scheme's
        action alphabet.
    window:
        Monitor window ``M_w``: the approximate number of recent monitored
        accesses summarized by a snapshot ("the monitor only considers the
        past M_w retired memory instructions", Section 8). Implemented as
        exponential aging: when the epoch exceeds the window, accumulated
        counts are halved.
    sampling_shift:
        Monitor only addresses with ``hash(addr) % 2**shift == 0``;
        counts are scaled by ``2**shift``. Zero monitors everything.
    timing_independent:
        Declared compliance with Principle 1; checked by
        :func:`repro.core.principles.require_timing_independent_metric`.
    """

    def __init__(
        self,
        candidate_sizes: tuple[int, ...] | list[int],
        window: int = 100_000,
        sampling_shift: int = 0,
        timing_independent: bool = True,
    ):
        sizes = list(candidate_sizes)
        if not sizes or sizes != sorted(set(sizes)):
            raise ConfigurationError("candidate sizes must be unique and ascending")
        if window < 1:
            raise ConfigurationError("monitor window must be >= 1")
        if sampling_shift < 0:
            raise ConfigurationError("sampling shift must be non-negative")
        self._sizes = sizes
        self._window = window
        self._sampling_shift = sampling_shift
        self._sampling_mask = (1 << sampling_shift) - 1
        self._scale = float(1 << sampling_shift)
        self.timing_independent = timing_independent
        self._tracker = ReuseDistanceTracker()
        # _bins[i] counts accesses whose smallest hitting size is sizes[i];
        # the last bin collects accesses that miss at every candidate size.
        self._bins = np.zeros(len(sizes) + 1, dtype=np.float64)
        self._epoch_accesses = 0.0
        self.total_observed = 0
        #: Accesses that passed the set-sampling filter (== fed to the
        #: stack tracker; equals ``total_observed`` when sampling is
        #: off). Exported on the ``sim.run`` trace span, so campaigns
        #: can verify the sampling rate the monitor actually achieved.
        self.sampled_observed = 0

    # ------------------------------------------------------------------
    @property
    def candidate_sizes(self) -> list[int]:
        return list(self._sizes)

    @property
    def window(self) -> int:
        return self._window

    @property
    def uses_address_hashes(self) -> bool:
        """Whether :meth:`observe_block` can use precomputed address hashes."""
        return self._sampling_mask != 0

    # ------------------------------------------------------------------
    def observe(self, line_addr: int) -> None:
        """Feed one post-L1 access (already annotation-filtered upstream)."""
        self.total_observed += 1
        if self._sampling_mask and (_mix64(line_addr) & self._sampling_mask):
            return
        self.sampled_observed += 1
        distance = self._tracker.observe(line_addr)
        if distance == COLD_DISTANCE:
            bin_index = len(self._sizes)
        else:
            # The tracker only sees the sampled 1/2**shift of the lines,
            # so its stack distance represents ~2**shift times as many
            # total lines (like UMON scaling sampled-set distances up to
            # full-cache capacity).
            distance <<= self._sampling_shift
            # Smallest candidate size C with distance < C; past the last
            # candidate the access misses at every size (the last bin).
            bin_index = bisect.bisect_right(self._sizes, distance)
        self._bins[bin_index] += 1.0
        self._epoch_accesses += 1.0
        if self._epoch_accesses * self._scale > self._window:
            # Exponential aging keeps the snapshot focused on roughly the
            # last `window` monitored accesses.
            self._bins *= 0.5
            self._epoch_accesses *= 0.5

    def observe_block(
        self, addrs: np.ndarray, hashes: np.ndarray | None = None
    ) -> None:
        """Feed a run of post-L1 accesses in one call.

        Equivalent, counter for counter and bit for bit, to calling
        :meth:`observe` once per address in order: the sampling filter
        applies the same hash test (vectorized), reuse distances come
        from one tracker run, and the bin/epoch accumulation replays the
        per-access ``+= 1.0`` / halving sequence on local Python floats
        (IEEE-754 identical to the numpy scalar ops) before writing back.
        ``hashes`` optionally carries precomputed SplitMix64 hashes
        aligned with ``addrs``.
        """
        self.total_observed += int(addrs.shape[0])
        if self._sampling_mask:
            if hashes is None:
                hashes = mix64_array(addrs)
            keep = (hashes & np.uint64(self._sampling_mask)) == 0
            addrs = addrs[keep]
            self.sampled_observed += int(addrs.shape[0])
            if not addrs.shape[0]:
                return
        else:
            self.sampled_observed += int(addrs.shape[0])
        distances = self._tracker.observe_run(addrs.tolist())
        sizes = self._sizes
        cold_bin = len(sizes)
        shift = self._sampling_shift
        scale = self._scale
        window = self._window
        bins = self._bins.tolist()
        epoch = self._epoch_accesses
        find_bin = bisect.bisect_right
        for distance in distances:
            if distance < 0:
                bin_index = cold_bin
            else:
                bin_index = find_bin(sizes, distance << shift)
            bins[bin_index] += 1.0
            epoch += 1.0
            if epoch * scale > window:
                bins = [value * 0.5 for value in bins]
                epoch *= 0.5
        self._bins[:] = bins
        self._epoch_accesses = epoch

    def hits_per_size(self) -> np.ndarray:
        """Estimated hits at each candidate size over the current window.

        ``result[k]`` is the (scaled) number of recent accesses that would
        hit in a partition of ``candidate_sizes[k]`` lines. The curve is
        non-decreasing in size by construction (stack inclusion).
        """
        cumulative = np.cumsum(self._bins[:-1])
        return cumulative * self._scale

    def misses_at_size(self, size_index: int) -> float:
        """Estimated misses at candidate size ``size_index`` this window."""
        total = float(self._bins.sum()) * self._scale
        return total - float(self.hits_per_size()[size_index])

    def epoch_accesses(self) -> float:
        """Scaled number of accesses in the current aging window."""
        return self._epoch_accesses * self._scale

    def reset_window(self) -> None:
        """Clear the windowed counters (the LRU stack state persists)."""
        self._bins[:] = 0.0
        self._epoch_accesses = 0.0

    def clear(self) -> None:
        """Forget everything, including the stack state."""
        self.reset_window()
        self._tracker.reset()
        self.total_observed = 0
        self.sampled_observed = 0
