"""Memory-footprint utilization metric.

Section 5.2's worked example of a timing-independent metric: "the memory
footprint (i.e., the number of unique memory lines accessed) of the past
N retired memory instructions, regardless of what level in the cache
hierarchy the memory requests were served from."

This metric is simpler than the UMON monitor (it produces a single
demand number rather than a hits-per-size curve) and is used by the
examples and by threshold-style action heuristics.
"""

from __future__ import annotations

from collections import deque

from repro.errors import ConfigurationError


class FootprintMetric:
    """Unique lines among the last ``window`` retired memory instructions."""

    #: Principle 1 compliance: depends only on the retired access sequence.
    timing_independent = True

    def __init__(self, window: int):
        if window < 1:
            raise ConfigurationError("footprint window must be >= 1")
        self._window = window
        self._recent: deque[int] = deque()
        self._counts: dict[int, int] = {}

    @property
    def window(self) -> int:
        return self._window

    def observe(self, line_addr: int) -> None:
        """Record one retired memory access."""
        self._recent.append(line_addr)
        self._counts[line_addr] = self._counts.get(line_addr, 0) + 1
        if len(self._recent) > self._window:
            evicted = self._recent.popleft()
            remaining = self._counts[evicted] - 1
            if remaining:
                self._counts[evicted] = remaining
            else:
                del self._counts[evicted]

    @property
    def value(self) -> int:
        """Current footprint: unique lines in the window."""
        return len(self._counts)

    @property
    def accesses_in_window(self) -> int:
        return len(self._recent)

    def reset(self) -> None:
        self._recent.clear()
        self._counts.clear()
