"""The idealized attacker of the threat model (Section 4).

The attacker directly observes the victim's resizing trace — what
visible actions are taken and when. This module implements that observer
plus an *empirical leakage estimator*: run the victim under a scheme for
each possible secret value (with its probability), collect the observed
traces, and compute the entropy of the observation distribution /
the mutual information between secret and observation.

This is the experimental counterpart of Section 3.2's definition: the
exhaustive-enumeration leakage that is infeasible for real programs but
exact for the small Figure 1 demos — and therefore perfect for testing
that annotations eliminate action leakage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable

from repro.core.trace import ResizingTrace
from repro.errors import TraceError
from repro.info.distributions import DiscreteDistribution, joint_from_conditional
from repro.info.entropy import entropy, mutual_information


@dataclass(frozen=True)
class ObservedTrace:
    """What the idealized attacker sees of one execution."""

    #: (new_size, timestamp) of every visible action, in order.
    events: tuple[tuple[int, int], ...]

    @property
    def action_part(self) -> tuple[int, ...]:
        """The visible action sequence (sizes only)."""
        return tuple(size for size, _ in self.events)

    @property
    def timing_part(self) -> tuple[int, ...]:
        """The visible timing sequence."""
        return tuple(timestamp for _, timestamp in self.events)


def observe(trace: ResizingTrace) -> ObservedTrace:
    """Project a full resizing trace onto the attacker's view.

    Maintain actions are invisible (Section 5.3.4); everything else —
    the new size and the (delayed) application time — is visible.
    """
    return ObservedTrace(
        events=tuple(
            (event.action.new_size, event.timestamp)
            for event in trace.visible_events
        )
    )


@dataclass(frozen=True)
class EmpiricalLeakage:
    """Observed-leakage estimates over a secret distribution."""

    #: Entropy of the full observation (actions and timing), in bits.
    observation_entropy_bits: float
    #: Mutual information between secret and visible action sequence.
    action_information_bits: float
    #: Mutual information between secret and full observation.
    total_information_bits: float


def measure_empirical_leakage(
    secrets: DiscreteDistribution,
    run_victim: Callable[[Hashable], ResizingTrace],
    *,
    timing_resolution: int = 1,
) -> EmpiricalLeakage:
    """Exhaustively measure what an observer learns about the secret.

    ``run_victim(secret)`` must execute the victim deterministically for
    the given secret and return its resizing trace. ``timing_resolution``
    coarsens observed timestamps (an attacker with 1-cycle resolution is
    the worst case).
    """
    if timing_resolution < 1:
        raise TraceError("timing resolution must be >= 1")

    observations: dict[Hashable, ObservedTrace] = {}
    for secret in secrets.support:
        observed = observe(run_victim(secret))
        observations[secret] = ObservedTrace(
            events=tuple(
                (size, timestamp // timing_resolution)
                for size, timestamp in observed.events
            )
        )

    full_joint = joint_from_conditional(
        secrets,
        lambda secret: DiscreteDistribution.delta(
            (observations[secret].action_part, observations[secret].timing_part)
        ),
    )
    action_joint = joint_from_conditional(
        secrets,
        lambda secret: DiscreteDistribution.delta(observations[secret].action_part),
    )
    observation_marginal = full_joint.map(lambda pair: pair[1])

    return EmpiricalLeakage(
        observation_entropy_bits=entropy(observation_marginal),
        action_information_bits=mutual_information(action_joint),
        total_information_bits=mutual_information(full_joint),
    )
