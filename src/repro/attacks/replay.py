"""Replay attacks and cross-run budget enforcement (Section 6.2).

"A powerful attacker can replay the victim program many times, gaining
additional information at every replay from the scheduling leakage.
However, the operating system can use the upper bound of the victim
program's leakage rate ... to keep accumulating the victim program
leakage across the multiple runs."

:class:`ReplayCampaign` drives that scenario: the same victim is run
repeatedly against one persistent :class:`~repro.core.accountant.LeakageAccountant`;
once the accumulated leakage reaches the victim's threshold, further
resizes are denied and subsequent runs leak nothing more (they only lose
performance) — the guarantee the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.accountant import LeakageAccountant
from repro.errors import SimulationError


@dataclass
class ReplayRun:
    """Summary of one replayed victim execution."""

    index: int
    bits_charged: float
    assessments: int
    resizes_allowed: int
    resizes_denied: int
    budget_exhausted_after: bool


@dataclass
class ReplayCampaign:
    """Replays a victim against one cross-run leakage budget.

    Parameters
    ----------
    accountant:
        The persistent accountant holding the victim's threshold.
    run_victim:
        Callable executing one victim run. It receives the accountant
        (already advanced to a fresh run) and must perform its
        assessments through it, returning the list of per-assessment
        ``(timestamp, wants_visible)`` decisions it made.
    """

    accountant: LeakageAccountant
    run_victim: Callable[[LeakageAccountant], list[tuple[int, bool]]]
    runs: list[ReplayRun] = field(default_factory=list)

    def replay(self, times: int) -> list[ReplayRun]:
        """Execute ``times`` victim runs, accumulating leakage."""
        if times < 1:
            raise SimulationError("need at least one replay")
        for _ in range(times):
            index = len(self.runs)
            if index > 0:
                self.accountant.start_new_run()
            before = self.accountant.total_bits
            decisions = self.run_victim(self.accountant)
            allowed = sum(
                1 for _, visible in decisions if visible
            )
            denied = sum(
                1 for _, wanted in decisions if not wanted
            )
            self.runs.append(
                ReplayRun(
                    index=index,
                    bits_charged=self.accountant.total_bits - before,
                    assessments=len(decisions),
                    resizes_allowed=allowed,
                    resizes_denied=denied,
                    budget_exhausted_after=self.accountant.budget_exhausted,
                )
            )
        return list(self.runs)

    @property
    def total_bits(self) -> float:
        return self.accountant.total_bits

    @property
    def threshold_ever_exceeded(self) -> bool:
        """Whether any run pushed the accumulated leakage past threshold.

        The accountant clamps resizing once the threshold is *reached*;
        leakage can exceed it only by the residue of the final charging
        interval, never by further resizes.
        """
        threshold = self.accountant.threshold_bits
        if threshold is None:
            return False
        # One final-interval overshoot is permitted by the model.
        last_charge = max((run.bits_charged for run in self.runs), default=0.0)
        return self.accountant.total_bits > threshold + last_charge
