"""Attacker models: idealized observer, active squeezer, replay, channel."""

from repro.attacks.active import (
    RechargeResult,
    recharge_unoptimized,
    squeezing_workload,
)
from repro.attacks.channel_sim import ChannelSimulationResult, CovertChannelSimulator
from repro.attacks.observer import (
    EmpiricalLeakage,
    ObservedTrace,
    measure_empirical_leakage,
    observe,
)
from repro.attacks.replay import ReplayCampaign, ReplayRun

__all__ = [
    "observe",
    "ObservedTrace",
    "EmpiricalLeakage",
    "measure_empirical_leakage",
    "squeezing_workload",
    "recharge_unoptimized",
    "RechargeResult",
    "ReplayCampaign",
    "ReplayRun",
    "CovertChannelSimulator",
    "ChannelSimulationResult",
]
