"""Empirical covert-channel simulation (validates the Section 5.3 bound).

A cooperative sender encodes random symbols as durations between visible
resizing actions; the receiver observes durations perturbed by the
random action delays (Equation 5.8) and decodes. Running many
transmissions yields an empirical estimate of the per-transmission
mutual information and the achieved data rate — which must never exceed
the certified ``R'_max`` bound from the Dinkelbach solver. The property
tests sample sender strategies at random and assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.covert import CovertChannelModel
from repro.errors import ChannelModelError
from repro.info.distributions import DiscreteDistribution
from repro.info.entropy import mutual_information


@dataclass(frozen=True)
class ChannelSimulationResult:
    """Outcome of an empirical covert-channel run."""

    transmissions: int
    empirical_information_bits: float
    average_transmission_time: float
    decode_accuracy: float

    @property
    def empirical_rate(self) -> float:
        """Achieved bits per time unit."""
        if self.average_transmission_time <= 0:
            return 0.0
        return self.empirical_information_bits / self.average_transmission_time


class CovertChannelSimulator:
    """Simulates sender/receiver over a covert-channel model."""

    def __init__(self, model: CovertChannelModel, seed: int = 0):
        self.model = model
        self._rng = np.random.default_rng(seed)
        delay = model.delay
        self._delay_values = np.array(sorted(delay.support), dtype=np.int64)
        self._delay_probs = np.array(
            [delay.probability(int(v)) for v in self._delay_values]
        )

    def transmit(
        self,
        input_distribution: np.ndarray,
        transmissions: int,
    ) -> ChannelSimulationResult:
        """Send random symbols and measure what the receiver learns.

        The receiver decodes with the maximum-likelihood rule over the
        known input distribution and delay model; mutual information is
        estimated from the empirical joint distribution of (sent symbol,
        observed duration).
        """
        if transmissions < 1:
            raise ChannelModelError("need at least one transmission")
        p_x = np.asarray(input_distribution, dtype=np.float64)
        if p_x.shape != (self.model.num_inputs,):
            raise ChannelModelError("input distribution does not match the model")
        durations = self.model.durations

        sent = self._rng.choice(self.model.num_inputs, size=transmissions, p=p_x)
        delays = self._rng.choice(
            self._delay_values, size=transmissions + 1, p=self._delay_probs
        )
        observed = durations[sent] + delays[1:] - delays[:-1]

        # Empirical joint of (sent index, observed duration).
        joint_counts: dict[tuple[int, int], int] = {}
        for x, y in zip(sent, observed):
            key = (int(x), int(y))
            joint_counts[key] = joint_counts.get(key, 0) + 1
        joint = DiscreteDistribution.from_counts(joint_counts)
        information = mutual_information(joint)

        # Maximum-likelihood decoding for the accuracy report.
        transition = self.model.transition_matrix
        outputs = self.model.outputs
        index_of_output = {int(y): i for i, y in enumerate(outputs)}
        correct = 0
        posterior = transition * p_x[np.newaxis, :]
        for x, y in zip(sent, observed):
            row = posterior[index_of_output[int(y)]]
            if int(np.argmax(row)) == int(x):
                correct += 1

        return ChannelSimulationResult(
            transmissions=transmissions,
            empirical_information_bits=information,
            average_transmission_time=float(durations[sent].mean()),
            decode_accuracy=correct / transmissions,
        )
