"""Active attacker experiments (Sections 6.2 and 9 of the paper).

An active attacker co-runs with the victim and hammers the shared LLC so
the allocator squeezes the victim's partition, forcing attacker-visible
actions at (nearly) every victim assessment. Two artifacts model this:

* :func:`squeezing_workload` — an attacker workload with a huge,
  always-hot working set that drives the allocator to take capacity from
  everyone else, then periodically releases and re-applies pressure to
  keep every domain resizing.
* :func:`recharge_unoptimized` — the Section 9 measurement: re-price a
  victim's assessment log as if the Maintain optimization were disabled
  (every assessment charged at the single-cooldown worst-case rate),
  quantifying what the active attacker can force at most.

The paper's headline numbers here: 3.8 bits/assessment without the
optimization versus 0.7 with it — and, crucially, even the forced higher
rate only burns the victim's leakage budget faster; it never breaks the
threshold guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.annotations import AnnotationVector
from repro.core.rates import RmaxTable
from repro.sim.cpu import CoreConfig, InstructionStream
from repro.workloads.patterns import place_memory_instructions

#: Attacker's private region, far from all workload regions.
_ATTACKER_BASE = 32 << 22


def squeezing_workload(
    total_instructions: int,
    working_set_lines: int,
    *,
    memory_fraction: float = 0.5,
    pulse_instructions: int | None = None,
    idle_stall_cycles: int = 2,
    mlp: float = 4.0,
    seed: int = 0,
) -> tuple[InstructionStream, CoreConfig]:
    """Build the attacker's pressure workload.

    The attacker alternates *pulse* phases — hammering a working set
    large enough to justify a big partition, squeezing everyone — with
    idle phases that release the capacity so the victim re-expands,
    forcing another visible resize (Figure 9). ``pulse_instructions``
    controls the pulse length (default: a tenth of the total);
    ``idle_stall_cycles`` pads each idle instruction so the idle phases
    occupy wall-clock time comparable to the (memory-bound, slow) pulses
    rather than flashing by at full issue width.
    """
    if pulse_instructions is None:
        pulse_instructions = max(1, total_instructions // 10)
    rng = np.random.default_rng(seed)
    period = max(1, round(1.0 / memory_fraction))
    segments = []
    stall_segments = []
    produced = 0
    pulse = True
    while produced < total_instructions:
        chunk = min(pulse_instructions, total_instructions - produced)
        if pulse:
            mem_count = max(1, chunk // period)
            accesses = (
                rng.integers(0, working_set_lines, size=mem_count, dtype=np.int64)
                + _ATTACKER_BASE
            )
            segment = place_memory_instructions(accesses, memory_fraction)
            segments.append(segment)
            stall_segments.append(np.zeros(len(segment), dtype=np.int64))
        else:
            segments.append(np.full(chunk, -1, dtype=np.int64))
            # Batch the padding into sparse large stalls (every 64th
            # instruction) so the simulator handles few stall events.
            idle_stalls = np.zeros(chunk, dtype=np.int64)
            idle_stalls[::64] = idle_stall_cycles * 64
            stall_segments.append(idle_stalls)
        produced += chunk
        pulse = not pulse
    addresses = np.concatenate(segments)
    stalls = np.concatenate(stall_segments)
    stream = InstructionStream(
        addresses,
        AnnotationVector.public(len(addresses)),
        stall_cycles=stalls if stalls.any() else None,
    )
    config = CoreConfig(
        mlp=mlp,
        slice_instructions=stream.length,
        warmup_instructions=0,
    )
    return stream, config


@dataclass(frozen=True)
class RechargeResult:
    """Outcome of re-pricing a victim's assessments."""

    assessments: int
    optimized_bits: float
    unoptimized_bits: float

    @property
    def optimized_bits_per_assessment(self) -> float:
        return self.optimized_bits / self.assessments if self.assessments else 0.0

    @property
    def unoptimized_bits_per_assessment(self) -> float:
        return self.unoptimized_bits / self.assessments if self.assessments else 0.0


def recharge_unoptimized(
    assessment_times: list[int],
    optimized_bits: float,
    worst_case: RmaxTable,
) -> RechargeResult:
    """Re-price an assessment timeline without the Maintain optimization.

    Every inter-assessment interval is charged at the level-0 rate (the
    single-cooldown worst case), modeling an attacker who forces a
    visible action at every assessment (Section 9).
    """
    if not assessment_times:
        return RechargeResult(0, optimized_bits, 0.0)
    total = 0.0
    previous = None
    for timestamp in assessment_times:
        interval = (
            worst_case.cooldown if previous is None else max(1, timestamp - previous)
        )
        total += worst_case.bits_for_interval(0, interval)
        previous = timestamp
    return RechargeResult(
        assessments=len(assessment_times),
        optimized_bits=optimized_bits,
        unoptimized_bits=total,
    )
