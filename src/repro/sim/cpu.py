"""Core execution and timing model.

Replaces gem5's cycle-level OoO core with a deterministic instruction-
level cost model that preserves the one coupling the evaluation needs:
IPC responds to LLC partition size through cache hits and misses.

Model
-----
* Every retired instruction costs ``1 / issue_width`` cycles of pipeline
  occupancy.
* A memory instruction additionally stalls the core for
  ``latency / mlp`` cycles, where ``latency`` is the round-trip latency
  of the serving level and ``mlp`` is the workload's memory-level
  parallelism factor (how many misses it typically overlaps).
* Optional per-access timing jitter models microarchitectural
  non-determinism (DRAM scheduling, prefetcher interference). Jitter
  changes *when* things happen but never *what* retires — exactly the
  separation Untangle's principles rely on, and what the differential
  timing-independence tests exploit.

Instruction streams are numpy arrays; the core walks them memory-access
by memory-access, retiring non-memory blocks in bulk, so simulation cost
is proportional to the number of memory accesses, not instructions.

After a stream's slice finishes, the core keeps re-running the stream
(wrapping around) to maintain LLC pressure, per the paper's methodology,
while its statistics stay frozen.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.config import ArchConfig
from repro.core.annotations import AnnotationVector
from repro.errors import ConfigurationError, SimulationError
from repro.sim.hierarchy import DomainMemory
from repro.sim.stats import DomainStats


class StopReason(enum.Enum):
    """Why :meth:`Core.run` returned control to the system driver."""

    #: The cycle budget of the current quantum was reached.
    QUANTUM = "quantum"
    #: The public-progress target was reached (Untangle assessment point).
    PROGRESS = "progress"


class InstructionStream:
    """A dynamic instruction stream with secret-dependence annotations.

    Parameters
    ----------
    addresses:
        int64 array, one entry per instruction: the cache-line address
        accessed by a memory instruction, or ``-1`` for a non-memory
        instruction.
    annotations:
        Per-instruction :class:`~repro.core.annotations.AnnotationVector`;
        defaults to all-public.
    """

    __slots__ = (
        "addresses",
        "annotations",
        "stall_cycles",
        "length",
        "mem_positions",
        "event_positions",
        "cum_public",
        "public_per_pass",
    )

    def __init__(
        self,
        addresses: np.ndarray,
        annotations: AnnotationVector | None = None,
        stall_cycles: np.ndarray | None = None,
    ):
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if addresses.ndim != 1 or addresses.shape[0] == 0:
            raise ConfigurationError("instruction stream must be a non-empty 1-D array")
        if annotations is None:
            annotations = AnnotationVector.public(addresses.shape[0])
        if len(annotations) != addresses.shape[0]:
            raise ConfigurationError(
                "annotations must align with the instruction stream"
            )
        if stall_cycles is not None:
            stall_cycles = np.ascontiguousarray(stall_cycles, dtype=np.int64)
            if stall_cycles.shape != addresses.shape:
                raise ConfigurationError("stall cycles must align with the stream")
            if np.any(stall_cycles < 0):
                raise ConfigurationError("stall cycles must be non-negative")
        self.addresses = addresses
        self.annotations = annotations
        self.stall_cycles = stall_cycles
        self.length = int(addresses.shape[0])
        self.mem_positions = np.flatnonzero(addresses >= 0)
        # Positions the core must handle one at a time: memory accesses
        # plus explicit stalls (e.g. the usleep of Figure 1c).
        if stall_cycles is None:
            self.event_positions = self.mem_positions
        else:
            self.event_positions = np.flatnonzero(
                (addresses >= 0) | (stall_cycles > 0)
            )
        # cum_public[i] = number of progress-counted instructions among the
        # first i instructions of one pass of the stream.
        counted = (~annotations.progress_excluded).astype(np.int64)
        self.cum_public = np.concatenate(([0], np.cumsum(counted)))
        self.public_per_pass = int(self.cum_public[-1])

    @property
    def memory_instruction_count(self) -> int:
        return int(self.mem_positions.shape[0])

    @property
    def memory_fraction(self) -> float:
        return self.memory_instruction_count / self.length


@dataclass
class CoreConfig:
    """Per-core execution parameters derived from the workload."""

    mlp: float = 2.0
    slice_instructions: int = 100_000
    warmup_instructions: int = 0
    timing_jitter: int = 0
    timing_jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.mlp <= 0:
            raise ConfigurationError("mlp must be positive")
        if self.slice_instructions < 1:
            raise ConfigurationError("slice must be at least one instruction")
        if self.warmup_instructions < 0 or self.timing_jitter < 0:
            raise ConfigurationError("warmup and jitter must be non-negative")


class Core:
    """One core executing one domain's instruction stream."""

    def __init__(
        self,
        domain: int,
        stream: InstructionStream,
        memory: DomainMemory,
        arch: ArchConfig,
        core_config: CoreConfig,
        stats: DomainStats,
    ):
        self.domain = domain
        self.stream = stream
        self.memory = memory
        self.stats = stats
        self._cpi = 1.0 / arch.issue_width
        self._inv_mlp = 1.0 / core_config.mlp
        self._warmup_end = core_config.warmup_instructions
        self._slice_end = (
            core_config.warmup_instructions + core_config.slice_instructions
        )
        self._jitter = core_config.timing_jitter
        self._jitter_rng = (
            np.random.default_rng(core_config.timing_jitter_seed)
            if core_config.timing_jitter > 0
            else None
        )

        self.cycles: float = 0.0
        self.retired: int = 0
        self.public_retired: int = 0
        self._rel_pos: int = 0
        self._mem_cursor: int = 0
        self._pass_public_base: int = 0
        self._measuring = self._warmup_end == 0
        if self._measuring:
            self.stats.begin_measurement(0.0, 0)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the measured slice has completed."""
        return self.stats.finished

    @property
    def now(self) -> int:
        """Current local time as an integer timestamp."""
        return int(self.cycles)

    # ------------------------------------------------------------------
    def _check_boundaries(self) -> None:
        if not self._measuring and self.retired >= self._warmup_end:
            self._measuring = True
            self.stats.begin_measurement(self.cycles, self.retired)
        if self._measuring and not self.stats.finished and self.retired >= self._slice_end:
            self.stats.end_measurement(self.cycles, self.retired)

    def _advance_nonmem(self, count: int) -> None:
        """Retire ``count`` instructions starting at the current position.

        The range must not contain a memory instruction (callers guarantee
        this by stopping at the next memory position).
        """
        if count <= 0:
            return
        start = self._rel_pos
        end = start + count
        self.cycles += count * self._cpi
        self.retired += count
        cum = self.stream.cum_public
        self.public_retired += int(cum[end] - cum[start])
        self._rel_pos = end
        self._check_boundaries()

    def _execute_event(self, rel_pos: int) -> None:
        """Retire the memory or stall instruction at ``rel_pos``."""
        stream = self.stream
        addr = int(stream.addresses[rel_pos])
        extra = 0.0
        if addr >= 0:
            latency = self.memory.access(
                addr, bool(stream.annotations.metric_excluded[rel_pos])
            )
            extra = latency * self._inv_mlp
            if self._jitter_rng is not None:
                extra += float(self._jitter_rng.integers(0, self._jitter + 1))
        if stream.stall_cycles is not None:
            extra += float(stream.stall_cycles[rel_pos])
        self.cycles += self._cpi + extra
        self.retired += 1
        if not stream.annotations.progress_excluded[rel_pos]:
            self.public_retired += 1
        self._rel_pos = rel_pos + 1
        self._check_boundaries()

    def _wrap_pass(self) -> None:
        """Start a fresh pass of the stream (pressure-maintenance loop)."""
        if self._rel_pos != self.stream.length:
            raise SimulationError("pass wrap before the stream tail retired")
        self._rel_pos = 0
        self._mem_cursor = 0
        self._pass_public_base = self.public_retired

    def _public_crossing_rel(self, progress_target: int) -> int | None:
        """Pass-relative position where public progress reaches the target.

        Returns the smallest ``i`` such that retiring the first ``i``
        instructions of the current pass reaches ``progress_target``
        public instructions in total, or ``None`` if the target is not
        reached within this pass.
        """
        needed = progress_target - self._pass_public_base
        if needed > self.stream.public_per_pass:
            return None
        index = int(np.searchsorted(self.stream.cum_public, needed, side="left"))
        return index if index <= self.stream.length else None

    # ------------------------------------------------------------------
    def run(self, until_cycle: float, progress_target: int | None = None) -> StopReason:
        """Execute until the cycle budget or the public-progress target.

        The core stops *exactly* at the instruction where the public
        progress counter reaches ``progress_target`` — this precision is
        what makes Untangle's assessment points (and hence its utilization
        metric snapshots) functions of the instruction stream alone.
        """
        stream = self.stream
        event_positions = stream.event_positions
        num_events = event_positions.shape[0]
        length = stream.length
        while self.cycles < until_cycle:
            if progress_target is not None and self.public_retired >= progress_target:
                return StopReason.PROGRESS
            next_event = (
                int(event_positions[self._mem_cursor])
                if self._mem_cursor < num_events
                else length
            )
            if progress_target is not None:
                crossing = self._public_crossing_rel(progress_target)
                if crossing is not None and crossing <= next_event:
                    self._advance_nonmem(crossing - self._rel_pos)
                    return StopReason.PROGRESS
            if next_event >= length:
                self._advance_nonmem(length - self._rel_pos)
                self._wrap_pass()
                continue
            self._advance_nonmem(next_event - self._rel_pos)
            self._execute_event(next_event)
            self._mem_cursor += 1
        return StopReason.QUANTUM
