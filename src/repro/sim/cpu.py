"""Core execution and timing model.

Replaces gem5's cycle-level OoO core with a deterministic instruction-
level cost model that preserves the one coupling the evaluation needs:
IPC responds to LLC partition size through cache hits and misses.

Model
-----
* Every retired instruction costs ``1 / issue_width`` cycles of pipeline
  occupancy.
* A memory instruction additionally stalls the core for
  ``latency / mlp`` cycles, where ``latency`` is the round-trip latency
  of the serving level and ``mlp`` is the workload's memory-level
  parallelism factor (how many misses it typically overlaps).
* Optional per-access timing jitter models microarchitectural
  non-determinism (DRAM scheduling, prefetcher interference). Jitter
  changes *when* things happen but never *what* retires — exactly the
  separation Untangle's principles rely on, and what the differential
  timing-independence tests exploit.

Instruction streams are numpy arrays; the core walks them memory-access
by memory-access, retiring non-memory blocks in bulk, so simulation cost
is proportional to the number of memory accesses, not instructions.

Two inner kernels implement that walk (selected by ``REPRO_SIM_KERNEL``,
see :mod:`repro.sim.kernelmode`):

* The **batched** kernel resolves whole *runs* of events — every memory
  access and stall between two stop events (quantum top, progress
  target) — in one speculative :meth:`DomainMemory.resolve_block` call,
  accumulating cycles with a vectorized interleaved cumulative sum that
  reproduces the scalar float-addition chain bit for bit. Because the
  resolve returns the *actual* latencies, the exact reference stopping
  point within the run is found by binary search over the cumulative
  loop-top values, and :meth:`DomainMemory.commit_block` keeps exactly
  that prefix (rolling the caches back over the rest). Runs never cross
  a measurement boundary (warmup end / slice end) or the progress
  crossing; events at those edges fall back to the scalar step, which
  performs the boundary bookkeeping at exactly the reference
  granularity.
* The **reference** kernel is the original one-call-per-access loop,
  retained verbatim for differential testing and as the before/after
  baseline of ``benchmarks/bench_kernel.py``. Timing jitter draws one
  RNG value per access, so jittered cores always use the scalar loop
  regardless of kernel mode (the draw sequence is part of the result).

After a stream's slice finishes, the core keeps re-running the stream
(wrapping around) to maintain LLC pressure, per the paper's methodology,
while its statistics stay frozen.
"""

from __future__ import annotations

import enum
from collections.abc import Generator
from dataclasses import dataclass

import numpy as np

from repro.config import ArchConfig
from repro.core.annotations import AnnotationVector
from repro.errors import ConfigurationError, SimulationError
from repro.monitor.umon import mix64_array
from repro.sim.batch import active_scratch, drive_kernel
from repro.sim.hierarchy import DomainMemory
from repro.sim.kernelmode import batching_enabled
from repro.sim.stats import DomainStats

#: Smallest event run worth dispatching as a batch; shorter runs go
#: through the scalar step (batch setup would cost more than it saves).
MIN_BATCH = 8


class StopReason(enum.Enum):
    """Why :meth:`Core.run` returned control to the system driver."""

    #: The cycle budget of the current quantum was reached.
    QUANTUM = "quantum"
    #: The public-progress target was reached (Untangle assessment point).
    PROGRESS = "progress"


class InstructionStream:
    """A dynamic instruction stream with secret-dependence annotations.

    Parameters
    ----------
    addresses:
        int64 array, one entry per instruction: the cache-line address
        accessed by a memory instruction, or ``-1`` for a non-memory
        instruction.
    annotations:
        Per-instruction :class:`~repro.core.annotations.AnnotationVector`;
        defaults to all-public.
    """

    __slots__ = (
        "addresses",
        "annotations",
        "stall_cycles",
        "length",
        "mem_positions",
        "event_positions",
        "cum_public",
        "public_per_pass",
        "max_stall",
        "_hashed",
    )

    def __init__(
        self,
        addresses: np.ndarray,
        annotations: AnnotationVector | None = None,
        stall_cycles: np.ndarray | None = None,
    ):
        addresses = np.ascontiguousarray(addresses, dtype=np.int64)
        if addresses.ndim != 1 or addresses.shape[0] == 0:
            raise ConfigurationError("instruction stream must be a non-empty 1-D array")
        if annotations is None:
            annotations = AnnotationVector.public(addresses.shape[0])
        if len(annotations) != addresses.shape[0]:
            raise ConfigurationError(
                "annotations must align with the instruction stream"
            )
        if stall_cycles is not None:
            stall_cycles = np.ascontiguousarray(stall_cycles, dtype=np.int64)
            if stall_cycles.shape != addresses.shape:
                raise ConfigurationError("stall cycles must align with the stream")
            if np.any(stall_cycles < 0):
                raise ConfigurationError("stall cycles must be non-negative")
        self.addresses = addresses
        self.annotations = annotations
        self.stall_cycles = stall_cycles
        self.length = int(addresses.shape[0])
        self.mem_positions = np.flatnonzero(addresses >= 0)
        # Positions the core must handle one at a time: memory accesses
        # plus explicit stalls (e.g. the usleep of Figure 1c).
        if stall_cycles is None:
            self.event_positions = self.mem_positions
            self.max_stall = 0
        else:
            self.event_positions = np.flatnonzero(
                (addresses >= 0) | (stall_cycles > 0)
            )
            self.max_stall = int(stall_cycles.max())
        # cum_public[i] = number of progress-counted instructions among the
        # first i instructions of one pass of the stream.
        counted = (~annotations.progress_excluded).astype(np.int64)
        self.cum_public = np.concatenate(([0], np.cumsum(counted)))
        self.public_per_pass = int(self.cum_public[-1])
        self._hashed: np.ndarray | None = None

    @property
    def hashed_addresses(self) -> np.ndarray:
        """SplitMix64 hash of every address, computed once and cached.

        Set-sampling monitors decide per address whether to observe it by
        hashing it (:func:`repro.monitor.umon.mix64_array`); since the
        stream is re-executed pass after pass, hashing each address once
        up front turns that decision into an array mask. Entries at
        non-memory positions (address ``-1``) are meaningless and never
        consumed.
        """
        if self._hashed is None:
            self._hashed = mix64_array(self.addresses)
        return self._hashed

    @property
    def memory_instruction_count(self) -> int:
        return int(self.mem_positions.shape[0])

    @property
    def memory_fraction(self) -> float:
        return self.memory_instruction_count / self.length


@dataclass
class CoreConfig:
    """Per-core execution parameters derived from the workload."""

    mlp: float = 2.0
    slice_instructions: int = 100_000
    warmup_instructions: int = 0
    timing_jitter: int = 0
    timing_jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.mlp <= 0:
            raise ConfigurationError("mlp must be positive")
        if self.slice_instructions < 1:
            raise ConfigurationError("slice must be at least one instruction")
        if self.warmup_instructions < 0 or self.timing_jitter < 0:
            raise ConfigurationError("warmup and jitter must be non-negative")


class Core:
    """One core executing one domain's instruction stream."""

    def __init__(
        self,
        domain: int,
        stream: InstructionStream,
        memory: DomainMemory,
        arch: ArchConfig,
        core_config: CoreConfig,
        stats: DomainStats,
    ):
        self.domain = domain
        self.stream = stream
        self.memory = memory
        self.stats = stats
        self._cpi = 1.0 / arch.issue_width
        self._inv_mlp = 1.0 / core_config.mlp
        self._warmup_end = core_config.warmup_instructions
        self._slice_end = (
            core_config.warmup_instructions + core_config.slice_instructions
        )
        self._jitter = core_config.timing_jitter
        self._jitter_rng = (
            np.random.default_rng(core_config.timing_jitter_seed)
            if core_config.timing_jitter > 0
            else None
        )
        # Jitter draws one RNG value per access, so jittered cores must
        # take the scalar loop to preserve the draw sequence. Speculative
        # block resolution additionally needs an LLC view that can
        # snapshot/restore its state.
        self._use_batched = (
            batching_enabled()
            and core_config.timing_jitter == 0
            and memory.supports_speculation
        )
        # Running estimate of the average cycle cost per event, used only
        # to size batches against the remaining budget (never to decide
        # results — the stop point is computed exactly afterwards).
        events = max(1, int(stream.event_positions.shape[0]))
        self._est_cost = (
            self._cpi * (stream.length / events)
            + self._cpi
            + arch.llc_latency * self._inv_mlp
        )

        self.cycles: float = 0.0
        self.retired: int = 0
        self.public_retired: int = 0
        self._rel_pos: int = 0
        self._mem_cursor: int = 0
        self._pass_public_base: int = 0
        self._measuring = self._warmup_end == 0
        if self._measuring:
            self.stats.begin_measurement(0.0, 0)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        """Whether the measured slice has completed."""
        return self.stats.finished

    @property
    def now(self) -> int:
        """Current local time as an integer timestamp."""
        return int(self.cycles)

    # ------------------------------------------------------------------
    def _check_boundaries(self) -> None:
        if not self._measuring and self.retired >= self._warmup_end:
            self._measuring = True
            self.stats.begin_measurement(self.cycles, self.retired)
        if self._measuring and not self.stats.finished and self.retired >= self._slice_end:
            self.stats.end_measurement(self.cycles, self.retired)

    def _advance_nonmem(self, count: int) -> None:
        """Retire ``count`` instructions starting at the current position.

        The range must not contain a memory instruction (callers guarantee
        this by stopping at the next memory position).
        """
        if count <= 0:
            return
        start = self._rel_pos
        end = start + count
        self.cycles += count * self._cpi
        self.retired += count
        cum = self.stream.cum_public
        self.public_retired += int(cum[end] - cum[start])
        self._rel_pos = end
        self._check_boundaries()

    def _execute_event(self, rel_pos: int) -> None:
        """Retire the memory or stall instruction at ``rel_pos``."""
        stream = self.stream
        addr = int(stream.addresses[rel_pos])
        extra = 0.0
        if addr >= 0:
            latency = self.memory.access(
                addr, bool(stream.annotations.metric_excluded[rel_pos])
            )
            extra = latency * self._inv_mlp
            if self._jitter_rng is not None:
                extra += float(self._jitter_rng.integers(0, self._jitter + 1))
        if stream.stall_cycles is not None:
            extra += float(stream.stall_cycles[rel_pos])
        self.cycles += self._cpi + extra
        self.retired += 1
        if not stream.annotations.progress_excluded[rel_pos]:
            self.public_retired += 1
        self._rel_pos = rel_pos + 1
        self._check_boundaries()

    def _wrap_pass(self) -> None:
        """Start a fresh pass of the stream (pressure-maintenance loop)."""
        if self._rel_pos != self.stream.length:
            raise SimulationError("pass wrap before the stream tail retired")
        self._rel_pos = 0
        self._mem_cursor = 0
        self._pass_public_base = self.public_retired

    def _public_crossing_rel(self, progress_target: int) -> int | None:
        """Pass-relative position where public progress reaches the target.

        Returns the smallest ``i`` such that retiring the first ``i``
        instructions of the current pass reaches ``progress_target``
        public instructions in total, or ``None`` if the target is not
        reached within this pass.
        """
        needed = progress_target - self._pass_public_base
        if needed > self.stream.public_per_pass:
            return None
        index = int(np.searchsorted(self.stream.cum_public, needed, side="left"))
        return index if index <= self.stream.length else None

    # ------------------------------------------------------------------
    def run(self, until_cycle: float, progress_target: int | None = None) -> StopReason:
        """Execute until the cycle budget or the public-progress target.

        The core stops *exactly* at the instruction where the public
        progress counter reaches ``progress_target`` — this precision is
        what makes Untangle's assessment points (and hence its utilization
        metric snapshots) functions of the instruction stream alone.
        """
        if self._use_batched:
            return drive_kernel(self._batched_gen(until_cycle, progress_target))
        return self._run_reference(until_cycle, progress_target)

    def run_gen(
        self, until_cycle: float, progress_target: int | None = None
    ) -> "Generator":
        """Generator form of :meth:`run` for external cumsum service.

        Yields ``("cumsum", deltas, cum)`` requests (see
        :meth:`_batched_gen`) and returns the :class:`StopReason` via
        ``StopIteration.value``. A reference-kernel core never yields —
        the whole quantum runs inside the first ``next()`` — so drivers
        can treat every core uniformly. :func:`repro.sim.batch.drive_kernel`
        services the requests locally; the stacked-lanes driver services
        several cores' requests with one vectorized call instead.
        """
        if self._use_batched:
            return (yield from self._batched_gen(until_cycle, progress_target))
        return self._run_reference(until_cycle, progress_target)

    def _run_reference(
        self, until_cycle: float, progress_target: int | None
    ) -> StopReason:
        """The original per-access loop, kept verbatim as the reference."""
        stream = self.stream
        event_positions = stream.event_positions
        num_events = event_positions.shape[0]
        length = stream.length
        while self.cycles < until_cycle:
            if progress_target is not None and self.public_retired >= progress_target:
                return StopReason.PROGRESS
            next_event = (
                int(event_positions[self._mem_cursor])
                if self._mem_cursor < num_events
                else length
            )
            if progress_target is not None:
                crossing = self._public_crossing_rel(progress_target)
                if crossing is not None and crossing <= next_event:
                    self._advance_nonmem(crossing - self._rel_pos)
                    return StopReason.PROGRESS
            if next_event >= length:
                self._advance_nonmem(length - self._rel_pos)
                self._wrap_pass()
                continue
            self._advance_nonmem(next_event - self._rel_pos)
            self._execute_event(next_event)
            self._mem_cursor += 1
        return StopReason.QUANTUM

    def _batched_gen(
        self, until_cycle: float, progress_target: int | None
    ) -> Generator:
        """Batched kernel: speculatively resolve event runs, commit exactly.

        Bit-exact with :meth:`_run_reference`. Each iteration picks a run
        of upcoming events capped so that none could cross the progress
        target or a measurement boundary (those must fire from the scalar
        path at the reference's exact granularity), sized by a running
        cost estimate against the remaining cycle budget. The run is
        resolved *speculatively* through the hierarchy
        (:meth:`DomainMemory.resolve_block`): caches advance and the
        actual per-access latencies come back, but monitor and service
        counters are deferred. With real latencies in hand, one
        interleaved cumulative sum reproduces the scalar float-addition
        chain bit for bit, and a binary search over its loop-top values
        finds exactly how many events the reference loop would have
        executed before the budget check stopped it.
        :meth:`DomainMemory.commit_block` then keeps that prefix, rolling
        the caches back over the unexecuted tail (deterministic replay
        from copy-on-write set snapshots) — so sizing is a pure
        performance knob with no effect on results. Leftover runs shorter
        than :data:`MIN_BATCH` take the scalar step.

        Speculation is sound because within one ``run()`` call the LLC
        view is effectively private: other cores and resizes only act
        between calls, at quantum and assessment granularity.

        The cumulative sum itself is delegated: the generator yields
        ``("cumsum", deltas, cum)`` and expects ``np.cumsum(deltas)``
        back from ``send``. ``deltas`` may live in the shared scratch
        arena, so a driver interleaving several generators must copy it
        before resuming any other lane; the reply only needs to stay
        valid until this lane's next request.
        """
        stream = self.stream
        ev = stream.event_positions
        num_events = int(ev.shape[0])
        length = stream.length
        cpi = self._cpi
        inv_mlp = self._inv_mlp
        memory = self.memory
        stats = self.stats
        addresses = stream.addresses
        excluded = stream.annotations.metric_excluded
        stalls = stream.stall_cycles
        cum_public = stream.cum_public
        hashes = stream.hashed_addresses if memory.monitor_wants_hashes else None
        # Annotation/hash slices only matter to the monitor feed; without
        # a monitor, commit_block never reads them.
        has_monitor = memory.monitor is not None

        crossing = (
            self._public_crossing_rel(progress_target)
            if progress_target is not None
            else None
        )
        while self.cycles < until_cycle:
            if progress_target is not None and self.public_retired >= progress_target:
                return StopReason.PROGRESS
            cursor = self._mem_cursor
            next_event = int(ev[cursor]) if cursor < num_events else length
            if crossing is not None and crossing <= next_event:
                self._advance_nonmem(crossing - self._rel_pos)
                return StopReason.PROGRESS
            if next_event >= length:
                self._advance_nonmem(length - self._rel_pos)
                self._wrap_pass()
                if progress_target is not None:
                    crossing = self._public_crossing_rel(progress_target)
                continue

            rel_pos = self._rel_pos
            # Events at or past the crossing never execute this pass.
            if crossing is None:
                stop = num_events
            else:
                stop = int(np.searchsorted(ev, crossing, side="left"))
            # Keep retired strictly below the next measurement boundary.
            if not self._measuring:
                boundary = self._warmup_end
            elif not stats.finished:
                boundary = self._slice_end
            else:
                boundary = -1
            if boundary >= 0:
                max_pos = rel_pos + boundary - self.retired - 2
                cap = int(np.searchsorted(ev, max_pos, side="right"))
                if cap < stop:
                    stop = cap
            # Size the run to just under the remaining budget, so runs
            # commit fully (no rollback). Over- and undershoot are both
            # safe — the commit point is computed exactly from actual
            # latencies — so this is a pure performance knob.
            cap_stop = stop
            want = int(0.9 * (until_cycle - self.cycles) / self._est_cost)
            if cursor + want < stop:
                stop = cursor + want
            n = stop - cursor
            if n < MIN_BATCH:
                # Scalar mop-up for the quantum tail (cheaper than a tiny
                # speculative batch, which would always roll back). Events
                # in [cursor, cap_stop) are strictly before the crossing
                # and the measurement boundary, so only the cycle budget
                # can stop early; a zero-length window is the capped
                # boundary event itself, which steps once as the
                # reference would.
                end = cap_stop if cap_stop > cursor else cursor + 1
                while True:
                    next_event = int(ev[cursor])
                    self._advance_nonmem(next_event - self._rel_pos)
                    self._execute_event(next_event)
                    cursor += 1
                    if cursor >= end or self.cycles >= until_cycle:
                        break
                self._mem_cursor = cursor
                continue

            idx = ev[cursor:stop]
            addrs = addresses[idx]
            commit_excluded = None
            commit_hashes = None
            if stalls is None:
                mem_mask = None
                latencies, token = memory.resolve_block(addrs)
                extras = latencies * inv_mlp
                if has_monitor:
                    commit_excluded = excluded[idx]
                    commit_hashes = hashes[idx] if hashes is not None else None
            else:
                extras = np.zeros(n, dtype=np.float64)
                mem_mask = addrs >= 0
                if mem_mask.any():
                    mem_idx = idx[mem_mask]
                    latencies, token = memory.resolve_block(addresses[mem_idx])
                    extras[mem_mask] = latencies * inv_mlp
                    if has_monitor:
                        commit_excluded = excluded[mem_idx]
                        commit_hashes = (
                            hashes[mem_idx] if hashes is not None else None
                        )
                else:
                    token = None
                extras = extras + stalls[idx]
            # Interleave (gap advance, event retire) deltas and fold them
            # with one strictly-sequential cumulative sum; even entries
            # are the reference loop-top cycle values before each event.
            # Under cell-major batching a chunk-shared scratch arena
            # backs the delta/cumsum buffers (every entry is written
            # before it is read, so reuse is bit-identical to np.empty).
            gaps = idx - np.concatenate(([rel_pos], idx[:-1] + 1))
            scratch = active_scratch()
            if scratch is not None:
                deltas = scratch.f64(2 * n + 1, slot=0)
                cum = scratch.f64(2 * n + 1, slot=1)
            else:
                deltas = np.empty(2 * n + 1, dtype=np.float64)
                cum = None
            deltas[0] = self.cycles
            deltas[1::2] = gaps * cpi
            deltas[2::2] = cpi + extras
            tops = (yield ("cumsum", deltas, cum))[0::2]
            # First event whose loop-top check would fail the budget.
            k = int(np.searchsorted(tops, until_cycle, side="left"))
            if k > n:
                k = n
            if token is not None:
                kept = k if mem_mask is None else int(np.count_nonzero(mem_mask[:k]))
                memory.commit_block(token, kept, commit_excluded, commit_hashes)
            last = int(idx[k - 1])
            self.cycles = float(tops[k])
            self.retired += last + 1 - rel_pos
            self.public_retired += int(cum_public[last + 1] - cum_public[rel_pos])
            self._rel_pos = last + 1
            self._mem_cursor = cursor + k
            # Refresh the batch-sizing estimate (perf only, never results).
            self._est_cost = 0.5 * (
                self._est_cost + (float(tops[k]) - float(tops[0])) / k
            )
            self._check_boundaries()
        return StopReason.QUANTUM
