"""Set-associative cache models.

The basic building block of the memory hierarchy: a tag-only
set-associative cache with LRU replacement (fast path) or a pluggable
policy (slow path). Addresses are *line* addresses — the byte-offset
within a line never matters to this model.

Two implementations live here:

* :class:`SetAssociativeCache` — the production kernel. Each set is a
  packed-recency structure (an insertion-ordered dict whose key order
  *is* the LRU order), giving O(1) hit/install/evict instead of the
  O(associativity) list scans of the original model, and
  :meth:`SetAssociativeCache.access_run` resolves a whole run of line
  addresses in one call — the batched entry point used by
  :meth:`repro.sim.hierarchy.DomainMemory.access_block`.
* :class:`ReferenceSetAssociativeCache` — the original per-access,
  list-based model, retained verbatim as the reference implementation
  for differential testing (``REPRO_SIM_KERNEL=reference`` selects it
  everywhere; see :mod:`repro.sim.kernelmode`).

Resizing support: partitions change their number of sets at runtime
(set partitioning, Section 8). :meth:`SetAssociativeCache.resize_sets`
re-hashes surviving lines into the new geometry, preserving per-set
recency order and evicting overflow — modeling a partition reconfiguration
in which lines whose set index is unchanged survive. Both implementations
produce bit-identical resize outcomes (the interleaved-LRU rehash order
is part of the model's contract and is pinned by tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.replacement import LRUPolicy, ReplacementPolicy


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class SetAssociativeCache:
    """A tag-only set-associative cache (packed-recency kernel).

    Parameters
    ----------
    num_sets:
        Number of sets (any positive integer; non-power-of-two values are
        supported because 3 MB / 6 MB partitions produce them).
    associativity:
        Ways per set.
    policy:
        Replacement policy object; ``None`` (or an explicit
        :class:`~repro.sim.replacement.LRUPolicy`) selects the fast
        packed-recency path. Other policies fall back to list-based sets.
    """

    __slots__ = (
        "num_sets",
        "associativity",
        "_sets",
        "_policy",
        "_lru",
        "_resident",
        "stats",
    )

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        policy: ReplacementPolicy | None = None,
    ):
        if num_sets < 1:
            raise ConfigurationError(f"num_sets {num_sets} must be >= 1")
        if associativity < 1:
            raise ConfigurationError(f"associativity {associativity} must be >= 1")
        self.num_sets = num_sets
        self.associativity = associativity
        self._policy = policy
        self._lru = policy is None or isinstance(policy, LRUPolicy)
        # LRU path: dict per set, insertion order == LRU-first order.
        # Generic-policy path: list per set (policies index into lists).
        self._sets: list = (
            [{} for _ in range(num_sets)]
            if self._lru
            else [[] for _ in range(num_sets)]
        )
        self._resident = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity_lines(self) -> int:
        """Total lines the cache can hold."""
        return self.num_sets * self.associativity

    @property
    def resident_lines(self) -> int:
        """Lines currently resident (O(1): an incrementally maintained count)."""
        return self._resident

    def set_index(self, line_addr: int) -> int:
        """The set a line address maps to."""
        return line_addr % self.num_sets

    def contains(self, line_addr: int) -> bool:
        """Whether the line is resident (no state update)."""
        return line_addr in self._sets[line_addr % self.num_sets]

    def resident_addresses(self) -> list[int]:
        """All resident line addresses (LRU-first within each set)."""
        resident: list[int] = []
        for ways in self._sets:
            resident.extend(ways)
        return resident

    # ------------------------------------------------------------------
    def access(self, line_addr: int) -> bool:
        """Access a line; returns ``True`` on hit.

        On a miss the line is installed, evicting the policy's victim if
        the set is full.
        """
        ways = self._sets[line_addr % self.num_sets]
        if self._lru:
            # Packed-recency fast path: O(1) membership + move-to-MRU.
            if line_addr in ways:
                del ways[line_addr]
                ways[line_addr] = None
                self.stats.hits += 1
                return True
            self.stats.misses += 1
            if len(ways) >= self.associativity:
                del ways[next(iter(ways))]
                self.stats.evictions += 1
            else:
                self._resident += 1
            ways[line_addr] = None
            return False

        # Generic path with a pluggable policy.
        assert self._policy is not None
        try:
            index = ways.index(line_addr)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.associativity:
                victim = self._policy.victim_index(ways)
                ways.pop(victim)
                self.stats.evictions += 1
            else:
                self._resident += 1
            ways.append(line_addr)
            return False
        self._policy.on_hit(ways, index)
        self.stats.hits += 1
        return True

    def access_run(self, addrs: np.ndarray) -> tuple[np.ndarray, int]:
        """Resolve a run of line addresses in one call.

        Returns ``(hits, evictions)``: a boolean hit/miss vector aligned
        with ``addrs`` and the number of evictions the run caused. The
        cache state and counters afterwards are exactly as if each
        address had been passed to :meth:`access` in order.
        """
        if not self._lru:
            before = self.stats.evictions
            hits = np.array([self.access(int(a)) for a in addrs], dtype=bool)
            return hits, self.stats.evictions - before

        sets = self._sets
        num_sets = self.num_sets
        assoc = self.associativity
        misses = 0
        evictions = 0
        resident = self._resident
        out: list[bool] = []
        append = out.append
        for addr in addrs.tolist():
            ways = sets[addr % num_sets]
            if addr in ways:
                del ways[addr]
                ways[addr] = None
                append(True)
            else:
                misses += 1
                if len(ways) >= assoc:
                    del ways[next(iter(ways))]
                    evictions += 1
                else:
                    resident += 1
                ways[addr] = None
                append(False)
        self._resident = resident
        stats = self.stats
        stats.hits += len(out) - misses
        stats.misses += misses
        stats.evictions += evictions
        return np.array(out, dtype=bool), evictions

    def snapshot_for(self, addrs: np.ndarray) -> tuple:
        """Copy-on-write snapshot covering the sets ``addrs`` map to.

        Captures exactly the state an :meth:`access_run` over ``addrs``
        can change — the touched sets, the stats counters, and the
        resident count — so a speculative run can be undone with
        :meth:`restore_snapshot`. Cost is proportional to the run, not
        the cache.
        """
        sets = self._sets
        touched = set((addrs % self.num_sets).tolist())
        if self._lru:
            saved: dict = {index: dict(sets[index]) for index in touched}
        else:
            saved = {index: list(sets[index]) for index in touched}
        stats = self.stats
        return (
            saved,
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.invalidations,
            self._resident,
        )

    def restore_snapshot(self, snapshot: tuple) -> None:
        """Undo every state change made since the matching snapshot."""
        saved, hits, misses, evictions, invalidations, resident = snapshot
        sets = self._sets
        for index, ways in saved.items():
            sets[index] = ways
        stats = self.stats
        stats.hits = hits
        stats.misses = misses
        stats.evictions = evictions
        stats.invalidations = invalidations
        self._resident = resident

    def probe(self, line_addr: int, touch: bool = False) -> bool:
        """Non-allocating lookup: hit status without installing on miss.

        By default the probe is truly read-only — no recency or counter
        state changes, so attackers and diagnostics can inspect residency
        without perturbing the replacement state. Pass ``touch=True`` to
        additionally apply the same recency update a hitting
        :meth:`access` would (an explicit "touching probe").
        """
        ways = self._sets[line_addr % self.num_sets]
        if self._lru:
            if line_addr not in ways:
                return False
            if touch:
                del ways[line_addr]
                ways[line_addr] = None
            return True
        try:
            index = ways.index(line_addr)
        except ValueError:
            return False
        if touch:
            assert self._policy is not None
            self._policy.on_hit(ways, index)
        return True

    def invalidate(self, line_addr: int) -> bool:
        """Remove one line if resident; returns whether it was."""
        ways = self._sets[line_addr % self.num_sets]
        if self._lru:
            if line_addr not in ways:
                return False
            del ways[line_addr]
        else:
            try:
                ways.remove(line_addr)
            except ValueError:
                return False
        self._resident -= 1
        self.stats.invalidations += 1
        return True

    def invalidate_all(self) -> int:
        """Flush the cache; returns the number of lines dropped."""
        dropped = self._resident
        self._sets = (
            [{} for _ in range(self.num_sets)]
            if self._lru
            else [[] for _ in range(self.num_sets)]
        )
        self._resident = 0
        self.stats.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    def resize_sets(self, new_num_sets: int) -> int:
        """Change the number of sets, re-hashing surviving lines.

        Lines are re-inserted in global LRU-first order so that per-set
        recency is preserved as well as possible; lines overflowing their
        new set are dropped. Returns the number of lines lost.
        """
        if new_num_sets < 1:
            raise ConfigurationError(f"num_sets {new_num_sets} must be >= 1")
        if new_num_sets == self.num_sets:
            return 0
        old_sets = [list(ways) for ways in self._sets]
        survivors: list[int] = []
        # Interleave sets preserving intra-set LRU order: take the i-th
        # most-recent line of every set in rounds, oldest round first.
        max_depth = max((len(w) for w in old_sets), default=0)
        for depth in range(max_depth):
            for ways in old_sets:
                if depth < len(ways):
                    survivors.append(ways[depth])
        lost = 0
        self.num_sets = new_num_sets
        associativity = self.associativity
        if self._lru:
            new_dicts: list[dict[int, None]] = [{} for _ in range(new_num_sets)]
            for line_addr in survivors:
                ways = new_dicts[line_addr % new_num_sets]
                if len(ways) >= associativity:
                    lost += 1
                    continue
                ways[line_addr] = None
            self._sets = new_dicts
        else:
            new_lists: list[list[int]] = [[] for _ in range(new_num_sets)]
            for line_addr in survivors:
                ways = new_lists[line_addr % new_num_sets]
                if len(ways) >= associativity:
                    lost += 1
                    continue
                ways.append(line_addr)
            self._sets = new_lists
        self._resident = len(survivors) - lost
        self.stats.invalidations += lost
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(sets={self.num_sets}, ways={self.associativity}, "
            f"resident={self.resident_lines}/{self.capacity_lines})"
        )


class ReferenceSetAssociativeCache:
    """The original per-access, list-based cache model.

    Kept as the obviously-correct reference implementation for
    differential testing of :class:`SetAssociativeCache` (and, via
    ``REPRO_SIM_KERNEL=reference``, of the whole batched simulation
    path). It exposes the same interface — including the read-only
    :meth:`probe` contract and :meth:`access_run` — but every operation
    is the original list-scan code path.
    """

    __slots__ = ("num_sets", "associativity", "_sets", "_policy", "_lru", "stats")

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        policy: ReplacementPolicy | None = None,
    ):
        if num_sets < 1:
            raise ConfigurationError(f"num_sets {num_sets} must be >= 1")
        if associativity < 1:
            raise ConfigurationError(f"associativity {associativity} must be >= 1")
        self.num_sets = num_sets
        self.associativity = associativity
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._policy = policy
        self._lru = policy is None or isinstance(policy, LRUPolicy)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.associativity

    @property
    def resident_lines(self) -> int:
        """Lines currently resident (the original O(num_sets) recount)."""
        return sum(len(ways) for ways in self._sets)

    def set_index(self, line_addr: int) -> int:
        return line_addr % self.num_sets

    def contains(self, line_addr: int) -> bool:
        return line_addr in self._sets[line_addr % self.num_sets]

    def resident_addresses(self) -> list[int]:
        resident: list[int] = []
        for ways in self._sets:
            resident.extend(ways)
        return resident

    # ------------------------------------------------------------------
    def access(self, line_addr: int) -> bool:
        ways = self._sets[line_addr % self.num_sets]
        if self._lru:
            # Original fast path: membership scan over <= associativity entries.
            try:
                ways.remove(line_addr)
            except ValueError:
                self.stats.misses += 1
                if len(ways) >= self.associativity:
                    ways.pop(0)
                    self.stats.evictions += 1
                ways.append(line_addr)
                return False
            ways.append(line_addr)
            self.stats.hits += 1
            return True

        assert self._policy is not None
        try:
            index = ways.index(line_addr)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.associativity:
                victim = self._policy.victim_index(ways)
                ways.pop(victim)
                self.stats.evictions += 1
            ways.append(line_addr)
            return False
        self._policy.on_hit(ways, index)
        self.stats.hits += 1
        return True

    def access_run(self, addrs: np.ndarray) -> tuple[np.ndarray, int]:
        """Per-access loop with the batched-call signature."""
        before = self.stats.evictions
        hits = np.array([self.access(int(a)) for a in addrs], dtype=bool)
        return hits, self.stats.evictions - before

    def snapshot_for(self, addrs: np.ndarray) -> tuple:
        """Copy-on-write snapshot covering the sets ``addrs`` map to."""
        sets = self._sets
        saved = {
            index: list(sets[index])
            for index in set((addrs % self.num_sets).tolist())
        }
        stats = self.stats
        return (
            saved,
            stats.hits,
            stats.misses,
            stats.evictions,
            stats.invalidations,
        )

    def restore_snapshot(self, snapshot: tuple) -> None:
        """Undo every state change made since the matching snapshot."""
        saved, hits, misses, evictions, invalidations = snapshot
        sets = self._sets
        for index, ways in saved.items():
            sets[index] = ways
        stats = self.stats
        stats.hits = hits
        stats.misses = misses
        stats.evictions = evictions
        stats.invalidations = invalidations

    def probe(self, line_addr: int, touch: bool = False) -> bool:
        ways = self._sets[line_addr % self.num_sets]
        try:
            index = ways.index(line_addr)
        except ValueError:
            return False
        if touch:
            if self._lru:
                ways.pop(index)
                ways.append(line_addr)
            else:
                assert self._policy is not None
                self._policy.on_hit(ways, index)
        return True

    def invalidate(self, line_addr: int) -> bool:
        ways = self._sets[line_addr % self.num_sets]
        try:
            ways.remove(line_addr)
        except ValueError:
            return False
        self.stats.invalidations += 1
        return True

    def invalidate_all(self) -> int:
        dropped = self.resident_lines
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    def resize_sets(self, new_num_sets: int) -> int:
        if new_num_sets < 1:
            raise ConfigurationError(f"num_sets {new_num_sets} must be >= 1")
        if new_num_sets == self.num_sets:
            return 0
        survivors: list[int] = []
        max_depth = max((len(w) for w in self._sets), default=0)
        for depth in range(max_depth):
            for ways in self._sets:
                if depth < len(ways):
                    survivors.append(ways[depth])
        lost = 0
        self.num_sets = new_num_sets
        self._sets = [[] for _ in range(new_num_sets)]
        for line_addr in survivors:
            ways = self._sets[line_addr % new_num_sets]
            if len(ways) >= self.associativity:
                lost += 1
                continue
            ways.append(line_addr)
        self.stats.invalidations += lost
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReferenceSetAssociativeCache(sets={self.num_sets}, "
            f"ways={self.associativity}, "
            f"resident={self.resident_lines}/{self.capacity_lines})"
        )
