"""Set-associative cache model.

The basic building block of the memory hierarchy: a tag-only
set-associative cache with LRU replacement (fast path) or a pluggable
policy (slow path). Addresses are *line* addresses — the byte-offset
within a line never matters to this model.

Resizing support: partitions change their number of sets at runtime
(set partitioning, Section 8). :meth:`SetAssociativeCache.resize_sets`
re-hashes surviving lines into the new geometry, preserving per-set
recency order and evicting overflow — modeling a partition reconfiguration
in which lines whose set index is unchanged survive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.replacement import LRUPolicy, ReplacementPolicy


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class SetAssociativeCache:
    """A tag-only set-associative cache.

    Parameters
    ----------
    num_sets:
        Number of sets (any positive integer; non-power-of-two values are
        supported because 3 MB / 6 MB partitions produce them).
    associativity:
        Ways per set.
    policy:
        Replacement policy object; ``None`` selects the fast LRU path.
    """

    __slots__ = ("num_sets", "associativity", "_sets", "_policy", "_lru", "stats")

    def __init__(
        self,
        num_sets: int,
        associativity: int,
        policy: ReplacementPolicy | None = None,
    ):
        if num_sets < 1:
            raise ConfigurationError(f"num_sets {num_sets} must be >= 1")
        if associativity < 1:
            raise ConfigurationError(f"associativity {associativity} must be >= 1")
        self.num_sets = num_sets
        self.associativity = associativity
        self._sets: list[list[int]] = [[] for _ in range(num_sets)]
        self._policy = policy
        self._lru = policy is None or isinstance(policy, LRUPolicy)
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def capacity_lines(self) -> int:
        """Total lines the cache can hold."""
        return self.num_sets * self.associativity

    @property
    def resident_lines(self) -> int:
        """Lines currently resident."""
        return sum(len(ways) for ways in self._sets)

    def set_index(self, line_addr: int) -> int:
        """The set a line address maps to."""
        return line_addr % self.num_sets

    def contains(self, line_addr: int) -> bool:
        """Whether the line is resident (no state update)."""
        return line_addr in self._sets[line_addr % self.num_sets]

    def resident_addresses(self) -> list[int]:
        """All resident line addresses (LRU-first within each set)."""
        resident: list[int] = []
        for ways in self._sets:
            resident.extend(ways)
        return resident

    # ------------------------------------------------------------------
    def access(self, line_addr: int) -> bool:
        """Access a line; returns ``True`` on hit.

        On a miss the line is installed, evicting the policy's victim if
        the set is full.
        """
        ways = self._sets[line_addr % self.num_sets]
        if self._lru:
            # Fast path: membership scan over <= associativity entries.
            try:
                ways.remove(line_addr)
            except ValueError:
                self.stats.misses += 1
                if len(ways) >= self.associativity:
                    ways.pop(0)
                    self.stats.evictions += 1
                ways.append(line_addr)
                return False
            ways.append(line_addr)
            self.stats.hits += 1
            return True

        # Generic path with a pluggable policy.
        assert self._policy is not None
        try:
            index = ways.index(line_addr)
        except ValueError:
            self.stats.misses += 1
            if len(ways) >= self.associativity:
                victim = self._policy.victim_index(ways)
                ways.pop(victim)
                self.stats.evictions += 1
            ways.append(line_addr)
            return False
        self._policy.on_hit(ways, index)
        self.stats.hits += 1
        return True

    def probe(self, line_addr: int) -> bool:
        """Non-allocating lookup: hit status without installing on miss."""
        ways = self._sets[line_addr % self.num_sets]
        if line_addr in ways:
            if self._lru:
                ways.remove(line_addr)
                ways.append(line_addr)
            return True
        return False

    def invalidate(self, line_addr: int) -> bool:
        """Remove one line if resident; returns whether it was."""
        ways = self._sets[line_addr % self.num_sets]
        try:
            ways.remove(line_addr)
        except ValueError:
            return False
        self.stats.invalidations += 1
        return True

    def invalidate_all(self) -> int:
        """Flush the cache; returns the number of lines dropped."""
        dropped = self.resident_lines
        self._sets = [[] for _ in range(self.num_sets)]
        self.stats.invalidations += dropped
        return dropped

    # ------------------------------------------------------------------
    def resize_sets(self, new_num_sets: int) -> int:
        """Change the number of sets, re-hashing surviving lines.

        Lines are re-inserted in global LRU-first order so that per-set
        recency is preserved as well as possible; lines overflowing their
        new set are dropped. Returns the number of lines lost.
        """
        if new_num_sets < 1:
            raise ConfigurationError(f"num_sets {new_num_sets} must be >= 1")
        if new_num_sets == self.num_sets:
            return 0
        survivors: list[int] = []
        # Interleave sets preserving intra-set LRU order: take the i-th
        # most-recent line of every set in rounds, oldest round first.
        max_depth = max((len(w) for w in self._sets), default=0)
        for depth in range(max_depth):
            for ways in self._sets:
                if depth < len(ways):
                    survivors.append(ways[depth])
        lost = 0
        self.num_sets = new_num_sets
        self._sets = [[] for _ in range(new_num_sets)]
        for line_addr in survivors:
            ways = self._sets[line_addr % new_num_sets]
            if len(ways) >= self.associativity:
                lost += 1
                continue
            ways.append(line_addr)
        self.stats.invalidations += lost
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SetAssociativeCache(sets={self.num_sets}, ways={self.associativity}, "
            f"resident={self.resident_lines}/{self.capacity_lines})"
        )
