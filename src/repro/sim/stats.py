"""Per-domain runtime statistics.

Collects what the paper's evaluation reports per workload: IPC over the
measured slice, partition-size samples (for the distribution charts in
Figure 10's top row), assessment/action counts, and leakage bits.

Measurement honors the paper's protocol (Section 8): a warmup period is
excluded, and once a workload finishes its slice it keeps running (to
maintain LLC pressure) but stops updating statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PartitionSample:
    """One sample of a domain's partition size at a point in time."""

    cycle: int
    lines: int


@dataclass
class DomainStats:
    """Statistics for one domain (one core + workload)."""

    domain: int
    #: Cycle at which measurement started (end of warmup).
    measure_start_cycle: float | None = None
    measure_start_instructions: int = 0
    #: Cycle at which the slice finished (stats frozen).
    measure_end_cycle: float | None = None
    measure_end_instructions: int = 0
    finished: bool = False
    partition_samples: list[PartitionSample] = field(default_factory=list)
    assessments: int = 0
    visible_actions: int = 0
    leakage_bits: float = 0.0

    # ------------------------------------------------------------------
    def begin_measurement(self, cycle: float, instructions: int) -> None:
        self.measure_start_cycle = cycle
        self.measure_start_instructions = instructions

    def end_measurement(self, cycle: float, instructions: int) -> None:
        if self.finished:
            return
        self.measure_end_cycle = cycle
        self.measure_end_instructions = instructions
        self.finished = True

    def close_measurement_window(self, cycle: float, instructions: int) -> None:
        """Close an unfinished measurement window at simulation end.

        A domain whose slice never completes before ``max_cycles`` used
        to report IPC of 0 (no ``end_measurement`` call ever set the
        window's end), silently under-reporting partial slices. Closing
        the window records the work that actually ran while keeping
        ``finished=False``, so completion checks still see the truth.
        No-op for finished domains and for domains still in warmup.
        """
        if self.finished or self.measure_start_cycle is None:
            return
        self.measure_end_cycle = cycle
        self.measure_end_instructions = instructions

    # ------------------------------------------------------------------
    @property
    def measured_instructions(self) -> int:
        if self.measure_start_cycle is None or self.measure_end_cycle is None:
            return 0
        return self.measure_end_instructions - self.measure_start_instructions

    @property
    def measured_cycles(self) -> float:
        if self.measure_start_cycle is None or self.measure_end_cycle is None:
            return 0.0
        return self.measure_end_cycle - self.measure_start_cycle

    @property
    def ipc(self) -> float:
        """Instructions per cycle over the measured slice."""
        cycles = self.measured_cycles
        return self.measured_instructions / cycles if cycles > 0 else 0.0

    @property
    def bits_per_assessment(self) -> float:
        return self.leakage_bits / self.assessments if self.assessments else 0.0

    @property
    def maintain_fraction(self) -> float:
        if not self.assessments:
            return 0.0
        return (self.assessments - self.visible_actions) / self.assessments

    # ------------------------------------------------------------------
    def record_partition_sample(self, cycle: int, lines: int) -> None:
        if not self.finished:
            self.partition_samples.append(PartitionSample(cycle, lines))

    def partition_size_quartiles(self) -> tuple[float, float, float, float, float]:
        """(min, q1, median, q3, max) of sampled partition sizes.

        These are the five numbers behind each bar of the paper's
        partition-size distribution charts. Quartiles interpolate
        linearly between order statistics (numpy's default percentile
        method), which is symmetric by construction: the old
        ``round(fraction * (n - 1))`` index rounded half-to-even
        (banker's rounding), so for small sample counts q1 and q3 (and
        the even-``n`` median) could land asymmetric distances from the
        extremes. Interpolated values may fall between two sampled
        (supported) sizes; min and max are always exact samples.
        """
        if not self.partition_samples:
            return (0, 0, 0, 0, 0)
        values = sorted(s.lines for s in self.partition_samples)
        n = len(values)

        def percentile(fraction: float) -> float:
            rank = fraction * (n - 1)
            low = int(rank)
            high = min(n - 1, low + 1)
            weight = rank - low
            return values[low] * (1.0 - weight) + values[high] * weight

        return (
            float(values[0]),
            percentile(0.25),
            percentile(0.5),
            percentile(0.75),
            float(values[-1]),
        )
