"""SMT pipeline-resource partitioning substrate (Table 1's SecSMT row).

Section 6.3: "Another example of resource of interest is functional
units shared by two SMT threads, where we can use the fraction of the
retired instructions that utilize a certain type of function unit as a
metric."

This module models the relevant slice of an SMT core: two hardware
threads share a pool of pipeline resources (modeled after SecSMT's
partitioned structures — think reorder-buffer/scheduler entries or
functional-unit slots). Each thread owns a partition of the pool; a
thread whose demand exceeds its partition stalls ("full" events, the
utilization signal SecSMT counts).

The execution model is deliberately simple but preserves the coupling
the framework needs: per-cycle, each thread's issue bandwidth is the
minimum of its demand and its partition, so throughput responds to
partition size; demand is derived from the thread's instruction mix,
which is architectural (timing-independent) — enabling an
Untangle-compliant metric (:class:`MixFractionMetric`) alongside the
conventional full-event heuristic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError, SimulationError


@dataclass(frozen=True)
class SMTWorkload:
    """A thread's demand model.

    ``unit_demand[i]`` is the number of pool slots instruction ``i``
    wants (0 for instructions that bypass the partitioned structure).
    """

    name: str
    unit_demand: np.ndarray

    def __post_init__(self) -> None:
        demand = np.asarray(self.unit_demand)
        if demand.ndim != 1 or demand.shape[0] == 0:
            raise ConfigurationError("unit demand must be a non-empty 1-D array")
        if np.any(demand < 0):
            raise ConfigurationError("unit demand must be non-negative")

    @property
    def length(self) -> int:
        return int(np.asarray(self.unit_demand).shape[0])

    def unit_fraction(self) -> float:
        """Fraction of instructions that use the partitioned unit.

        This is Section 6.3's timing-independent metric: it depends only
        on the instruction mix.
        """
        demand = np.asarray(self.unit_demand)
        return float((demand > 0).mean())


def synthetic_smt_workload(
    name: str,
    instructions: int,
    unit_fraction: float,
    burstiness: int = 1,
    seed: int = 0,
) -> SMTWorkload:
    """Generate a thread whose unit usage is phased/bursty.

    ``burstiness`` > 1 clusters the unit-using instructions into runs,
    creating the demand spikes dynamic partitioning exploits.
    """
    if not 0.0 <= unit_fraction <= 1.0:
        raise ConfigurationError("unit fraction must be within [0, 1]")
    if burstiness < 1:
        raise ConfigurationError("burstiness must be >= 1")
    rng = np.random.default_rng(seed)
    uses = rng.random(max(1, instructions // burstiness)) < unit_fraction
    demand = np.repeat(uses.astype(np.int64), burstiness)[:instructions]
    if demand.shape[0] < instructions:
        demand = np.pad(demand, (0, instructions - demand.shape[0]))
    return SMTWorkload(name=name, unit_demand=demand)


@dataclass
class SMTThreadStats:
    """Per-thread outcome counters."""

    retired: int = 0
    cycles: int = 0
    full_events: int = 0
    partition_samples: list[int] = field(default_factory=list)

    @property
    def ipc(self) -> float:
        return self.retired / self.cycles if self.cycles else 0.0


class SMTPipeline:
    """Two threads sharing a partitioned pool of pipeline slots.

    Per cycle, a thread may retire up to ``issue_width`` instructions,
    but every slot-demanding instruction consumes one pool slot from the
    thread's partition for that cycle; when the partition is exhausted
    the thread stalls and a *full event* is recorded — SecSMT's resizing
    signal.
    """

    def __init__(
        self,
        total_slots: int,
        issue_width: int = 4,
        num_threads: int = 2,
    ):
        if total_slots < num_threads:
            raise ConfigurationError("need at least one slot per thread")
        if issue_width < 1:
            raise ConfigurationError("issue width must be >= 1")
        self.total_slots = total_slots
        self.issue_width = issue_width
        self.num_threads = num_threads
        self._quota = [total_slots // num_threads] * num_threads
        self.stats = [SMTThreadStats() for _ in range(num_threads)]

    # ------------------------------------------------------------------
    def quota_of(self, thread: int) -> int:
        return self._quota[thread]

    def set_quota(self, thread: int, slots: int) -> None:
        """Resize a thread's slot partition (capacity-checked)."""
        if slots < 1:
            raise ConfigurationError("every thread needs at least one slot")
        others = sum(q for t, q in enumerate(self._quota) if t != thread)
        if others + slots > self.total_slots:
            raise SimulationError(
                f"quota {slots} for thread {thread} exceeds the pool"
            )
        self._quota[thread] = slots

    # ------------------------------------------------------------------
    def run(
        self,
        workloads: list[SMTWorkload],
        max_cycles: int = 1_000_000,
        on_cycle=None,
    ) -> list[SMTThreadStats]:
        """Execute both threads to completion (or the cycle cap).

        ``on_cycle(cycle, pipeline)`` is an optional hook for schemes to
        observe progress and resize between cycles.
        """
        if len(workloads) != self.num_threads:
            raise ConfigurationError("one workload per thread required")
        cursors = [0] * self.num_threads
        demands = [np.asarray(w.unit_demand) for w in workloads]
        cycle = 0
        while cycle < max_cycles:
            all_done = all(
                cursors[t] >= demands[t].shape[0] for t in range(self.num_threads)
            )
            if all_done:
                break
            for thread in range(self.num_threads):
                demand = demands[thread]
                if cursors[thread] >= demand.shape[0]:
                    continue
                stats = self.stats[thread]
                slots_left = self._quota[thread]
                issued = 0
                stalled = False
                while issued < self.issue_width and cursors[thread] < demand.shape[0]:
                    need = int(demand[cursors[thread]])
                    if need > slots_left:
                        stalled = True
                        break
                    slots_left -= need
                    cursors[thread] += 1
                    issued += 1
                stats.retired += issued
                stats.cycles += 1
                if stalled:
                    stats.full_events += 1
            cycle += 1
            if on_cycle is not None:
                on_cycle(cycle, self)
        return self.stats


class MixFractionMetric:
    """Section 6.3's timing-independent SMT metric.

    Tracks, over a window of retired instructions, the fraction using
    the partitioned unit — a pure function of the retired mix. The
    recommended quota is that fraction scaled to the thread's peak
    per-cycle demand.
    """

    timing_independent = True

    def __init__(self, window: int = 1_000):
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self._window = window
        self._recent: deque[int] = deque()
        self._using = 0

    def observe(self, unit_demand: int) -> None:
        self._recent.append(unit_demand)
        if unit_demand > 0:
            self._using += 1
        if len(self._recent) > self._window:
            if self._recent.popleft() > 0:
                self._using -= 1

    @property
    def fraction(self) -> float:
        if not self._recent:
            return 0.0
        return self._using / len(self._recent)

    def recommended_slots(self, issue_width: int) -> int:
        """Slots needed to sustain the observed mix at full issue width."""
        return max(1, round(self.fraction * issue_width))
