"""Cache replacement policies.

The set-associative cache in :mod:`repro.sim.cache` hard-codes a fast LRU
path (the paper's caches are LRU-managed and LRU is what the UMON-style
monitor models). The policy classes here exist for the generic slow path,
used by tests that verify LRU equivalence and by ablation experiments on
replacement behaviour.

A policy operates on one cache set, represented as a list of tags ordered
from least to most recently used.
"""

from __future__ import annotations

import random
from typing import Protocol

from repro.errors import ConfigurationError


class ReplacementPolicy(Protocol):
    """Chooses a victim way index within one set and orders residents."""

    name: str

    def victim_index(self, ways: list[int]) -> int:
        """Index of the line to evict from a full set."""
        ...

    def on_hit(self, ways: list[int], index: int) -> None:
        """Update recency state after a hit on ``ways[index]``."""
        ...


class LRUPolicy:
    """Least-recently-used: evict the front, move hits to the back."""

    name = "lru"

    def victim_index(self, ways: list[int]) -> int:
        return 0

    def on_hit(self, ways: list[int], index: int) -> None:
        ways.append(ways.pop(index))


class FIFOPolicy:
    """First-in-first-out: evict the front, hits do not reorder."""

    name = "fifo"

    def victim_index(self, ways: list[int]) -> int:
        return 0

    def on_hit(self, ways: list[int], index: int) -> None:
        return None


class RandomPolicy:
    """Random replacement with an explicit seed for determinism."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed)

    def victim_index(self, ways: list[int]) -> int:
        return self._rng.randrange(len(ways))

    def on_hit(self, ways: list[int], index: int) -> None:
        return None


def make_policy(name: str, seed: int = 0) -> ReplacementPolicy:
    """Factory for policies by name (``lru``, ``fifo``, ``random``)."""
    if name == "lru":
        return LRUPolicy()
    if name == "fifo":
        return FIFOPolicy()
    if name == "random":
        return RandomPolicy(seed)
    raise ConfigurationError(f"unknown replacement policy {name!r}")
