"""Way-partitioned LLC — the classic alternative to set partitioning.

The paper's evaluation uses set partitioning (following Bespoke/Chunked
Cache-style designs), but the canonical partitioned cache — and the one
its Background cites for static isolation (Catalyst [28]) — partitions
by *ways*: every domain uses all sets but owns a disjoint subset of the
ways in each set.

:class:`WayPartitionedLLC` implements that organization behind the same
interface as :class:`~repro.sim.partition.PartitionedLLC`, so any scheme
can drive either. Differences that matter to experiments:

* allocation granularity is one way across all sets (128 lines of the
  scaled LLC), coarser than set partitioning's one set (16 lines);
* a domain's partition keeps the full set count, so high-associativity
  conflict behaviour differs from an equal-capacity set partition;
* resizing reassigns whole ways: a shrinking domain loses the lines in
  its surrendered ways, and growth adds empty ways — no re-hash.

Partition sizes are expressed in lines (``ways * num_sets``) so action
alphabets remain comparable across organizations; sizes must therefore
be multiples of ``num_sets``.
"""

from __future__ import annotations

from repro.errors import ConfigurationError, SimulationError
from repro.sim.cache import CacheStats
from repro.sim.partition import LLCView, ResizeOutcome


class _WaySet:
    """One cache set whose ways are split between domains.

    Per domain we keep an LRU-ordered list of resident tags, bounded by
    the domain's current way quota in this set.
    """

    __slots__ = ("ways_of",)

    def __init__(self, num_domains: int):
        self.ways_of: list[list[int]] = [[] for _ in range(num_domains)]


class WayPartitionedLLC:
    """An LLC partitioned by ways with per-domain quotas."""

    def __init__(
        self,
        total_lines: int,
        associativity: int,
        num_domains: int,
        initial_lines: int,
    ):
        if num_domains < 1:
            raise ConfigurationError("need at least one domain")
        if total_lines % associativity != 0:
            raise ConfigurationError("total lines must be a whole number of ways")
        self.total_lines = total_lines
        self.associativity = associativity
        self.num_domains = num_domains
        self.num_sets = total_lines // associativity
        initial_ways = self._ways_for_lines(initial_lines)
        if initial_ways * num_domains > associativity:
            raise ConfigurationError(
                f"{num_domains} domains x {initial_ways} ways exceed the "
                f"{associativity}-way LLC"
            )
        self._way_quota = [initial_ways] * num_domains
        self._sets = [_WaySet(num_domains) for _ in range(self.num_sets)]
        self._stats = [CacheStats() for _ in range(num_domains)]
        self.resizes: list[ResizeOutcome] = []

    # ------------------------------------------------------------------
    def _ways_for_lines(self, lines: int) -> int:
        if lines < self.num_sets:
            raise ConfigurationError(
                f"partition of {lines} lines is below one way "
                f"({self.num_sets} lines)"
            )
        if lines % self.num_sets != 0:
            raise ConfigurationError(
                f"partition of {lines} lines is not a whole number of ways"
            )
        return lines // self.num_sets

    def lines_for_ways(self, ways: int) -> int:
        """Partition size in lines for a way quota."""
        return ways * self.num_sets

    def size_of(self, domain: int) -> int:
        """Current partition size in lines."""
        return self._way_quota[domain] * self.num_sets

    @property
    def allocated_lines(self) -> int:
        return sum(self._way_quota) * self.num_sets

    @property
    def free_lines(self) -> int:
        return self.total_lines - self.allocated_lines

    def available_for(self, domain: int) -> int:
        return self.free_lines + self.size_of(domain)

    def stats_of(self, domain: int) -> CacheStats:
        return self._stats[domain]

    # ------------------------------------------------------------------
    def view(self, domain: int) -> "WayPartitionView":
        if not 0 <= domain < self.num_domains:
            raise ConfigurationError(f"domain {domain} out of range")
        return WayPartitionView(self, domain)

    def access(self, domain: int, line_addr: int) -> bool:
        quota = self._way_quota[domain]
        stats = self._stats[domain]
        if quota == 0:
            # A domain stripped of every way bypasses the LLC entirely.
            stats.misses += 1
            return False
        ways = self._sets[line_addr % self.num_sets].ways_of[domain]
        try:
            ways.remove(line_addr)
        except ValueError:
            stats.misses += 1
            if len(ways) >= quota:
                ways.pop(0)
                stats.evictions += 1
            ways.append(line_addr)
            return False
        ways.append(line_addr)
        stats.hits += 1
        return True

    def resize(self, domain: int, new_lines: int) -> ResizeOutcome:
        """Change a domain's way quota; surrendered ways lose their lines."""
        new_ways = self._ways_for_lines(new_lines)
        old_ways = self._way_quota[domain]
        old_lines = self.size_of(domain)
        if new_ways == old_ways:
            outcome = ResizeOutcome(domain, old_lines, new_lines, 0)
            self.resizes.append(outcome)
            return outcome
        others = sum(q for d, q in enumerate(self._way_quota) if d != domain)
        if others + new_ways > self.associativity:
            raise SimulationError(
                f"resizing domain {domain} to {new_ways} ways would exceed "
                f"the {self.associativity}-way LLC"
            )
        lost = 0
        if new_ways < old_ways:
            for way_set in self._sets:
                ways = way_set.ways_of[domain]
                while len(ways) > new_ways:
                    ways.pop(0)  # evict LRU lines of the surrendered ways
                    lost += 1
        self._way_quota[domain] = new_ways
        if lost:
            self._stats[domain].invalidations += lost
        outcome = ResizeOutcome(domain, old_lines, new_lines, lost)
        self.resizes.append(outcome)
        return outcome


class WayPartitionView(LLCView):
    """A single domain's view of a :class:`WayPartitionedLLC`."""

    __slots__ = ("_llc", "_domain")

    def __init__(self, llc: WayPartitionedLLC, domain: int):
        self._llc = llc
        self._domain = domain

    def access(self, line_addr: int) -> bool:
        return self._llc.access(self._domain, line_addr)

    @property
    def partition_lines(self) -> int:
        return self._llc.size_of(self._domain)


def way_alphabet_lines(num_sets: int, associativity: int) -> tuple[int, ...]:
    """The natural action alphabet of a way-partitioned LLC: 1..A-1 ways."""
    return tuple(num_sets * ways for ways in range(1, associativity))
