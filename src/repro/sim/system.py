"""Multicore system driver.

Ties together cores, per-domain memory hierarchies, the LLC organization,
the utilization monitors, and a partitioning scheme, and advances them in
fixed cycle quanta:

1. Each core runs until the quantum boundary, stopping early whenever its
   domain's public-progress target is reached — at which point the scheme
   performs a resizing assessment at that exact instruction (Untangle's
   progress-based schedule).
2. At each quantum boundary the scheme gets a time-based hook (used by
   the Time scheme's fixed-interval assessments) and any delayed resizing
   actions whose scheduled application time has passed are applied.
3. Partition sizes are sampled periodically for the distribution charts.

The scheme object owns all policy (when to assess, what to resize, how to
charge leakage); the system owns all mechanism.
"""

from __future__ import annotations

from collections.abc import Generator
from dataclasses import dataclass
from typing import Protocol

from repro.config import ArchConfig
from repro.core.actions import ResizingAction
from repro.core.trace import ResizingTrace
from repro.errors import ConfigurationError, SimulationError
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.liveness import progress_beat
from repro.sim.batch import drive_kernel
from repro.sim.cpu import Core, CoreConfig, InstructionStream, StopReason
from repro.sim.hierarchy import DomainMemory
from repro.sim.kernelmode import kernel_mode
from repro.sim.stats import DomainStats

# Per-run (never per-access) simulator metrics: incremented once when a
# system run finishes, so the recording cost is invisible next to the
# millions of simulated cycles it summarizes.
_REG = obs_metrics.get_registry()
_M_RUNS = _REG.counter("repro_sim_runs_total", "Completed system runs")
_M_QUANTA = _REG.counter("repro_sim_quanta_total", "Interleaving quanta advanced")
_M_CYCLES = _REG.counter("repro_sim_cycles_total", "Cycles simulated")


@dataclass
class DomainSpec:
    """One security domain: a workload stream plus core parameters."""

    name: str
    stream: InstructionStream
    core_config: CoreConfig


class SchemeProtocol(Protocol):
    """What the system requires of a partitioning scheme."""

    name: str

    def build(self, system: "MultiDomainSystem") -> None:
        """Create the LLC organization, monitors, and accountants."""
        ...

    def progress_target(self, domain: int) -> int | None:
        """Public-progress count of the domain's next assessment, if any."""
        ...

    def on_progress(self, system: "MultiDomainSystem", domain: int, now: int) -> None:
        """A domain reached its progress target: perform an assessment."""
        ...

    def on_quantum(self, system: "MultiDomainSystem", now: int) -> None:
        """Quantum boundary: time-based assessments and delayed actions."""
        ...

    def partition_size(self, domain: int) -> int:
        """The domain's current (nominal) partition size in lines."""
        ...


@dataclass
class SystemResult:
    """Outcome of one system run."""

    stats: list[DomainStats]
    traces: list[ResizingTrace]
    total_cycles: int
    completed: bool


class MultiDomainSystem:
    """An ``ArchConfig.num_cores``-domain simulated machine.

    Parameters
    ----------
    arch:
        Machine parameters.
    domains:
        One :class:`DomainSpec` per core, in domain order.
    scheme:
        The partitioning scheme (see :mod:`repro.schemes`).
    quantum:
        Cycle quantum for interleaving cores. Smaller quanta tighten the
        interleaving of Shared-LLC accesses and the timing resolution of
        delayed actions.
    sample_interval:
        Cycle period of partition-size distribution samples (the paper
        samples every 100 us).
    """

    def __init__(
        self,
        arch: ArchConfig,
        domains: list[DomainSpec],
        scheme: SchemeProtocol,
        *,
        quantum: int = 500,
        sample_interval: int = 5_000,
    ):
        if len(domains) != arch.num_cores:
            raise ConfigurationError(
                f"{len(domains)} domains for {arch.num_cores} cores"
            )
        if quantum < 1 or sample_interval < 1:
            raise ConfigurationError("quantum and sample interval must be >= 1")
        self.arch = arch
        self.domains = domains
        self.scheme = scheme
        self.quantum = quantum
        self.sample_interval = sample_interval

        self.stats = [DomainStats(domain=i) for i in range(arch.num_cores)]
        #: Per-domain (action, timestamp) logs, appended by the scheme.
        self.trace_logs: list[list[tuple[ResizingAction, int]]] = [
            [] for _ in range(arch.num_cores)
        ]
        #: Populated by ``scheme.build``: per-domain memory hierarchies.
        self.memories: list[DomainMemory] = []
        scheme.build(self)
        if len(self.memories) != arch.num_cores:
            raise SimulationError(
                "scheme.build must populate one DomainMemory per core"
            )
        self.cores = [
            Core(
                domain=i,
                stream=spec.stream,
                memory=self.memories[i],
                arch=arch,
                core_config=spec.core_config,
                stats=self.stats[i],
            )
            for i, spec in enumerate(domains)
        ]

    # ------------------------------------------------------------------
    def record_action(self, domain: int, action: ResizingAction, timestamp: int) -> None:
        """Append an action to the domain's resizing trace log.

        Timestamps are forced strictly increasing (the trace format's
        invariant) by nudging collisions forward one time unit.
        """
        log = self.trace_logs[domain]
        if log and timestamp <= log[-1][1]:
            timestamp = log[-1][1] + 1
        log.append((action, timestamp))

    def sample_partition_sizes(self, now: int) -> None:
        for domain in range(self.arch.num_cores):
            self.stats[domain].record_partition_sample(
                now, self.scheme.partition_size(domain)
            )

    @property
    def all_finished(self) -> bool:
        return all(core.finished for core in self.cores)

    # ------------------------------------------------------------------
    def _observability_attrs(self) -> dict:
        """Per-run counters attached to the ``sim.run`` trace span.

        Resizing-action counts come from the trace logs the scheme
        appends to; monitor observation counters come from whatever
        UMON-style monitors the scheme built (schemes without monitors
        — Static, Shared — report zeros).
        """
        monitors = [
            m for m in getattr(self.scheme, "monitors", []) or [] if m is not None
        ]
        observed = sum(int(getattr(m, "total_observed", 0)) for m in monitors)
        sampled = sum(int(getattr(m, "sampled_observed", 0)) for m in monitors)
        return {
            "resizes": sum(len(log) for log in self.trace_logs),
            "assessments": sum(s.assessments for s in self.stats),
            "monitor_observed": observed,
            "monitor_sampled": sampled,
        }

    def run(self, max_cycles: int = 50_000_000) -> SystemResult:
        """Advance the system until every domain's slice finishes."""
        with obs_trace.span(
            "sim.run", scheme=self.scheme.name, kernel=kernel_mode()
        ) as span:
            now, quanta, completed = drive_kernel(self.run_gen(max_cycles))
            span.set(
                total_cycles=now,
                quanta=quanta,
                completed=completed,
                **self._observability_attrs(),
            )
        return self.finish(now, quanta, completed)

    def run_gen(self, max_cycles: int = 50_000_000) -> Generator:
        """Generator form of :meth:`run` for the stacked-lanes driver.

        Forwards the cores' ``("cumsum", deltas, out)`` requests
        unchanged and flags every resizing assessment with a
        ``("diverge", "assessment", domain)`` marker (reply ignored), so
        a driver interleaving several systems can count lanes leaving
        the vectorized pass. Returns ``(now, quanta, completed)``; the
        caller passes that to :meth:`finish` for the
        :class:`SystemResult`. No trace span is held across yields —
        the span stack is thread-local and strictly nested, so
        :meth:`run` opens it around the whole drive and a stacked
        driver opens its own around all lanes.
        """
        now = 0
        next_sample = 0
        quanta = 0
        completed = False
        while now < max_cycles:
            if self.all_finished:
                completed = True
                break
            quantum_end = now + self.quantum
            for core in self.cores:
                while core.cycles < quantum_end:
                    target = self.scheme.progress_target(core.domain)
                    reason = yield from core.run_gen(float(quantum_end), target)
                    if reason is StopReason.PROGRESS:
                        self.scheme.on_progress(self, core.domain, core.now)
                        if self.scheme.progress_target(core.domain) == target:
                            raise SimulationError(
                                "scheme did not advance the progress target "
                                f"of domain {core.domain}"
                            )
                        yield ("diverge", "assessment", core.domain)
                    else:
                        break
            now = quantum_end
            quanta += 1
            # Liveness evidence for the engine's worker heartbeats:
            # a quantum is thousands of simulated accesses, so this
            # is far off the hot path.
            progress_beat()
            self.scheme.on_quantum(self, now)
            if now >= next_sample:
                self.sample_partition_sizes(now)
                next_sample = now + self.sample_interval
        # The loop's finished-check runs at quantum tops only, so a run
        # whose last core retires during the final quantum at exactly
        # max_cycles would otherwise be misreported as incomplete.
        if not completed:
            completed = self.all_finished
        # Close the measurement window of any domain whose slice the
        # max_cycles cap cut short, so partial slices report IPC over
        # the instructions that actually ran instead of a silent 0.
        # ``finished`` stays False: completion checks are unaffected.
        for core in self.cores:
            core.stats.close_measurement_window(core.cycles, core.retired)
        return (now, quanta, completed)

    def finish(self, now: int, quanta: int, completed: bool) -> SystemResult:
        """Book per-run metrics and assemble the :class:`SystemResult`.

        Split from :meth:`run_gen` so both the sequential path and the
        stacked-lanes driver finalize a run exactly once, with identical
        accounting.
        """
        _M_RUNS.inc()
        _M_QUANTA.inc(quanta)
        _M_CYCLES.inc(now)
        _REG.counter(
            "repro_sim_resizes_total",
            "Resizing actions recorded, by scheme",
            scheme=self.scheme.name,
        ).inc(sum(len(log) for log in self.trace_logs))
        traces = [
            ResizingTrace.from_pairs(log) for log in self.trace_logs
        ]
        return SystemResult(
            stats=self.stats,
            traces=traces,
            total_cycles=now,
            completed=completed,
        )
