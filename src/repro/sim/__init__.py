"""Simulation substrate: caches, partitioned LLC, cores, system driver.

This package replaces the paper's gem5 setup (Section 8) with an
instruction-level timing model — see DESIGN.md for the substitution
rationale.
"""

from repro.sim.cache import CacheStats, SetAssociativeCache
from repro.sim.cpu import Core, CoreConfig, InstructionStream, StopReason
from repro.sim.hierarchy import DomainMemory, MemoryLevel
from repro.sim.partition import (
    PartitionedLLC,
    PartitionView,
    ResizeOutcome,
    SharedLLC,
    SharedView,
    sets_for_lines,
)
from repro.sim.replacement import (
    FIFOPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.sim.smt import (
    MixFractionMetric,
    SMTPipeline,
    SMTThreadStats,
    SMTWorkload,
    synthetic_smt_workload,
)
from repro.sim.stats import DomainStats, PartitionSample
from repro.sim.system import DomainSpec, MultiDomainSystem, SystemResult
from repro.sim.waypart import (
    WayPartitionedLLC,
    WayPartitionView,
    way_alphabet_lines,
)

__all__ = [
    "SetAssociativeCache",
    "CacheStats",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "make_policy",
    "PartitionedLLC",
    "PartitionView",
    "SharedLLC",
    "SharedView",
    "ResizeOutcome",
    "sets_for_lines",
    "DomainMemory",
    "MemoryLevel",
    "InstructionStream",
    "Core",
    "CoreConfig",
    "StopReason",
    "DomainStats",
    "PartitionSample",
    "DomainSpec",
    "MultiDomainSystem",
    "SystemResult",
    "WayPartitionedLLC",
    "WayPartitionView",
    "way_alphabet_lines",
    "SMTPipeline",
    "SMTWorkload",
    "SMTThreadStats",
    "MixFractionMetric",
    "synthetic_smt_workload",
]
