"""Shared numpy scratch for cell-major batched execution.

When the execution engine dispatches a *chunk* of compatible cells to
one worker (cell-major batching, ``docs/performance.md``), every cell
in the chunk re-allocates the same transient numpy arrays millions of
times: the interleaved delta/cumsum buffers of the batched CPU kernel
(:meth:`repro.sim.cpu.Core._run_batched`) and the set-index arrays of
the fused hierarchy resolver
(:meth:`repro.sim.hierarchy.DomainMemory._resolve_block_fused`). This
module provides one growable scratch arena those cores stack their
arrays into, installed for the duration of a chunk (or a serial run),
so allocator and interpreter overhead is amortized across dozens of
cells.

Correctness: every buffer handed out is *transient* — fully overwritten
before use and never stored beyond the call that requested it — so
sharing is bit-identical to fresh allocation. The arena is per-thread
(thread-local active slot); nested activations reuse the outer arena.

Usage::

    from repro.sim.batch import cell_scratch, active_scratch

    with cell_scratch():          # around a chunk of cells
        ...                       # kernels pick the arena up themselves

    scratch = active_scratch()    # inside a kernel; None = allocate fresh
    buf = scratch.f64(2 * n + 1, slot=0)
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

import numpy as np

#: Independent buffers per dtype an arena hands out; a kernel may hold
#: this many distinct live views at once (e.g. deltas + cumsum output).
SLOTS = 4

_ACTIVE = threading.local()


class CellScratch:
    """A growable arena of reusable numpy buffers.

    ``f64(n, slot)`` / ``i64(n, slot)`` return a length-``n`` view of a
    persistent buffer, growing it geometrically when needed. Different
    ``slot`` values never alias, so a kernel can request its input and
    output buffers from separate slots and use ``out=`` safely.
    """

    __slots__ = ("_f64", "_i64")

    def __init__(self) -> None:
        self._f64: list[np.ndarray] = [
            np.empty(0, dtype=np.float64) for _ in range(SLOTS)
        ]
        self._i64: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(SLOTS)
        ]

    @staticmethod
    def _view(pool: list[np.ndarray], n: int, slot: int, dtype) -> np.ndarray:
        buf = pool[slot]
        if buf.shape[0] < n:
            buf = np.empty(max(n, 2 * buf.shape[0]), dtype=dtype)
            pool[slot] = buf
        return buf[:n]

    def f64(self, n: int, slot: int = 0) -> np.ndarray:
        """A float64 view of length ``n`` (contents undefined)."""
        return self._view(self._f64, n, slot, np.float64)

    def i64(self, n: int, slot: int = 0) -> np.ndarray:
        """An int64 view of length ``n`` (contents undefined)."""
        return self._view(self._i64, n, slot, np.int64)


def active_scratch() -> CellScratch | None:
    """The arena installed for the current thread, if any."""
    return getattr(_ACTIVE, "scratch", None)


@contextmanager
def cell_scratch() -> Iterator[CellScratch]:
    """Install a scratch arena for the current thread.

    Reentrant: a nested activation reuses (and must not tear down) the
    outer arena, so a chunk driver can wrap cells that themselves wrap
    sub-phases without double management.
    """
    existing = active_scratch()
    if existing is not None:
        yield existing
        return
    scratch = CellScratch()
    _ACTIVE.scratch = scratch
    try:
        yield scratch
    finally:
        _ACTIVE.scratch = None
