"""Shared numpy scratch and the stacked-lanes driver for batched execution.

When the execution engine dispatches a *chunk* of compatible cells to
one worker (cell-major batching, ``docs/performance.md``), every cell
in the chunk re-allocates the same transient numpy arrays millions of
times: the interleaved delta/cumsum buffers of the batched CPU kernel
(:meth:`repro.sim.cpu.Core._batched_gen`) and the set-index arrays of
the fused hierarchy resolver
(:meth:`repro.sim.hierarchy.DomainMemory._resolve_block_fused`). This
module provides one growable scratch arena those cores stack their
arrays into, installed for the duration of a chunk (or a serial run),
so allocator and interpreter overhead is amortized across dozens of
cells.

Correctness: every buffer handed out is *transient* — fully overwritten
before use and never stored beyond the call that requested it — so
sharing is bit-identical to fresh allocation. The arena is per-thread
(thread-local active slot); nested activations reuse the outer arena.

Usage::

    from repro.sim.batch import cell_scratch, active_scratch

    with cell_scratch():          # around a chunk of cells
        ...                       # kernels pick the arena up themselves

    scratch = active_scratch()    # inside a kernel; None = allocate fresh
    buf = scratch.f64(2 * n + 1, slot=0)

On top of the arena sits :class:`StackedLanes` — the lane-stacked
multi-cell driver (``docs/performance.md`` layer 4). The batched CPU
kernel is written as a generator that *requests* its one vectorized
step, the strictly-sequential cumulative sum, by yielding
``("cumsum", deltas, out)`` and receiving ``np.cumsum(deltas)`` back.
:func:`drive_kernel` services one generator locally (the sequential
path); :class:`StackedLanes` interleaves K batch-compatible cells'
generators and services each round of requests with a single 2-D
``np.cumsum(slab, axis=1)`` over a ``(K, n)`` row stack. Row-wise
accumulation performs the same float-addition chain per row as the 1-D
call, so lane results are bit-identical to sequential execution — the
differential oracle pinned by ``tests/sim/test_stacked_lanes.py``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Generator, Iterator

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Independent buffers per dtype an arena hands out; a kernel may hold
#: this many distinct live views at once (e.g. deltas + cumsum output).
SLOTS = 4

_ACTIVE = threading.local()


class CellScratch:
    """A growable arena of reusable numpy buffers.

    ``f64(n, slot)`` / ``i64(n, slot)`` return a length-``n`` view of a
    persistent buffer, growing it geometrically when needed. Different
    ``slot`` values never alias, so a kernel can request its input and
    output buffers from separate slots and use ``out=`` safely.
    """

    __slots__ = ("_f64", "_i64")

    def __init__(self) -> None:
        self._f64: list[np.ndarray] = [
            np.empty(0, dtype=np.float64) for _ in range(SLOTS)
        ]
        self._i64: list[np.ndarray] = [
            np.empty(0, dtype=np.int64) for _ in range(SLOTS)
        ]

    @staticmethod
    def _view(pool: list[np.ndarray], n: int, slot: int, dtype) -> np.ndarray:
        buf = pool[slot]
        if buf.shape[0] < n:
            buf = np.empty(max(n, 2 * buf.shape[0]), dtype=dtype)
            pool[slot] = buf
        return buf[:n]

    def f64(self, n: int, slot: int = 0) -> np.ndarray:
        """A float64 view of length ``n`` (contents undefined)."""
        return self._view(self._f64, n, slot, np.float64)

    def i64(self, n: int, slot: int = 0) -> np.ndarray:
        """An int64 view of length ``n`` (contents undefined)."""
        return self._view(self._i64, n, slot, np.int64)


def active_scratch() -> CellScratch | None:
    """The arena installed for the current thread, if any."""
    return getattr(_ACTIVE, "scratch", None)


@contextmanager
def cell_scratch() -> Iterator[CellScratch]:
    """Install a scratch arena for the current thread.

    Reentrant: a nested activation reuses (and must not tear down) the
    outer arena, so a chunk driver can wrap cells that themselves wrap
    sub-phases without double management.
    """
    existing = active_scratch()
    if existing is not None:
        yield existing
        return
    scratch = CellScratch()
    _ACTIVE.scratch = scratch
    try:
        yield scratch
    finally:
        _ACTIVE.scratch = None


# ----------------------------------------------------------------------
# Kernel generator protocol and the stacked-lanes driver
# ----------------------------------------------------------------------
_REG = obs_metrics.get_registry()
_M_STACK_LANES = _REG.histogram(
    "repro_stacked_lanes",
    "Lanes per stacked-lanes group",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0),
)
_M_STACKED_CELLS = _REG.counter(
    "repro_stacked_cells_total", "Cells executed inside a stacked-lanes group"
)
_M_STACK_DIVERGENCES = _REG.counter(
    "repro_stack_divergences_total",
    "Lane divergences (assessments, early finishes) in stacked groups",
)


def drive_kernel(gen: Generator) -> Any:
    """Drive one kernel generator to completion, servicing its requests.

    Services ``("cumsum", deltas, out)`` requests with a local
    ``np.cumsum(deltas, out=out)`` (bit-identical to inlining the call)
    and ignores divergence markers, which only matter to the stacked
    driver. Returns the generator's return value. This is the
    sequential execution path :meth:`repro.sim.cpu.Core.run` and
    :meth:`repro.sim.system.MultiDomainSystem.run` use.
    """
    reply = None
    while True:
        try:
            request = gen.send(reply)
        except StopIteration as stop:
            return stop.value
        if request[0] == "cumsum":
            reply = np.cumsum(request[1], out=request[2])
        else:
            reply = None


class StackedLanes:
    """Drive K batch-compatible kernel generators as stacked lanes.

    Each *lane* is one cell's kernel generator (typically
    :meth:`repro.sim.system.MultiDomainSystem.run_gen`). The driver
    resumes lanes round-robin; a lane runs — assessments, scalar
    mop-up, cache resolution and all — until it yields its next
    ``("cumsum", deltas, out)`` request, at which point its ``deltas``
    are copied into row ``i`` of a shared ``(K, n)`` slab *immediately*
    (the array may be a view of the thread's scratch arena, which the
    next lane overwrites). Once every live lane has parked a request,
    one ``np.cumsum(slab, axis=1)`` services the whole round and each
    lane's reply is its row view. Row-wise accumulation runs the same
    strictly-sequential float-addition chain per row as the lane's own
    1-D cumsum, so results are bit-identical to sequential execution.

    Divergence is cheap by construction: a lane that leaves the
    vectorized pass (a resizing assessment, flagged by a
    ``("diverge", kind, domain)`` marker, or an early finish while
    peers still run) simply executes its scalar work inline during its
    resumption and re-joins the stack at its next cumsum request —
    correctness never depends on lanes staying in sync. Divergences
    are counted, exported (``repro_stack_divergences_total``), and
    traced as ``stack.diverge`` events.

    A lane that raises is isolated: its exception is captured as its
    result (see :attr:`results`) and the remaining lanes keep running.
    """

    def __init__(self, generators: list[Generator]):
        self._gens = list(generators)
        self.lanes = len(self._gens)
        #: Per-lane generator return values, in input order; a lane
        #: that raised holds its exception instance instead.
        self.results: list[Any] = [None] * self.lanes
        self.divergences = 0
        self._cap = 0
        self._slab: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def _rows(self, count: int, width: int, live: int, live_width: int):
        """Grow the slab pair to ``(count, >= width)``, keeping live rows."""
        if self._slab is None or width > self._cap:
            cap = max(width, 2 * self._cap, 64)
            slab = np.empty((count, cap), dtype=np.float64)
            if self._slab is not None and live:
                slab[:live, :live_width] = self._slab[:live, :live_width]
            self._slab = slab
            # Replies handed out last round are views of the old ``_out``
            # and stay valid (the old array outlives us through them);
            # only fresh rows are ever written to the new one.
            self._out = np.empty((count, cap), dtype=np.float64)
            self._cap = cap
        return self._slab

    def run(self) -> "StackedLanes":
        """Drive every lane to completion; returns ``self``."""
        active = list(range(self.lanes))
        replies: dict[int, Any] = {lane: None for lane in active}
        _M_STACK_LANES.observe(float(self.lanes))
        _M_STACKED_CELLS.inc(self.lanes)
        with obs_trace.span("sim.stacked", lanes=self.lanes) as span:
            while active:
                order: list[int] = []
                widths: list[int] = []
                for lane in list(active):
                    reply = replies[lane]
                    replies[lane] = None
                    while True:
                        try:
                            request = self._gens[lane].send(reply)
                        except StopIteration as stop:
                            self.results[lane] = stop.value
                            active.remove(lane)
                            if active:
                                self._diverge(lane, "finish")
                            break
                        except Exception as exc:
                            self.results[lane] = exc
                            active.remove(lane)
                            obs_trace.event(
                                "stack.error",
                                lane=lane,
                                error=f"{type(exc).__name__}: {exc}",
                            )
                            break
                        if request[0] == "cumsum":
                            deltas = request[1]
                            width = int(deltas.shape[0])
                            row = len(order)
                            live_width = max(widths) if widths else 0
                            self._rows(self.lanes, width, row, live_width)
                            self._slab[row, :width] = deltas
                            order.append(lane)
                            widths.append(width)
                            break
                        # Divergence marker: the lane ran an assessment
                        # (resize / monitor commit) inline; resume it so
                        # it re-joins at its next cumsum request.
                        self._diverge(lane, request[1], domain=request[2])
                        reply = None
                if not order:
                    continue
                rows = len(order)
                width = max(widths)
                np.cumsum(
                    self._slab[:rows, :width],
                    axis=1,
                    out=self._out[:rows, :width],
                )
                for row, lane in enumerate(order):
                    replies[lane] = self._out[row, : widths[row]]
            span.set(divergences=self.divergences)
        return self

    def _diverge(self, lane: int, kind: str, **attrs: Any) -> None:
        self.divergences += 1
        _M_STACK_DIVERGENCES.inc()
        obs_trace.event("stack.diverge", lane=lane, kind=kind, **attrs)
