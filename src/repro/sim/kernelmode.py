"""Simulation-kernel selection: batched (default) vs reference.

The simulator has two equivalent inner kernels:

* ``batched`` — the production path: packed-recency caches
  (:class:`repro.sim.cache.SetAssociativeCache`), block resolution of
  memory-access runs through :meth:`repro.sim.hierarchy.DomainMemory.access_block`,
  and vectorized stall accounting in :class:`repro.sim.cpu.Core`.
* ``reference`` — the original per-access kernel: list-based caches
  (:class:`repro.sim.cache.ReferenceSetAssociativeCache`) and the
  one-call-per-access core loop, retained for differential testing and
  as the before/after baseline of ``benchmarks/bench_kernel.py``.

Results are bit-identical between the two — hit/miss/eviction/
invalidation counters, IPC, resizing traces, and leakage numbers — which
the equivalence tests pin for every scheme. Select with the
``REPRO_SIM_KERNEL`` environment variable (read at construction time, so
a test can flip it per simulation with ``monkeypatch.setenv``).
"""

from __future__ import annotations

import os

from repro.errors import ConfigurationError
from repro.sim.cache import ReferenceSetAssociativeCache, SetAssociativeCache
from repro.sim.replacement import ReplacementPolicy

#: Environment variable selecting the simulation kernel.
KERNEL_ENV = "REPRO_SIM_KERNEL"

#: Recognized kernel modes.
KERNEL_MODES = ("batched", "reference")


def kernel_mode() -> str:
    """The currently selected kernel mode (``batched`` unless overridden)."""
    mode = os.environ.get(KERNEL_ENV, "batched").strip().lower() or "batched"
    if mode not in KERNEL_MODES:
        raise ConfigurationError(
            f"unknown {KERNEL_ENV} value {mode!r}; expected one of {KERNEL_MODES}"
        )
    return mode


def batching_enabled() -> bool:
    """Whether the batched kernel is selected."""
    return kernel_mode() == "batched"


def make_cache(
    num_sets: int,
    associativity: int,
    policy: ReplacementPolicy | None = None,
):
    """A set-associative cache built for the selected kernel mode."""
    cls = SetAssociativeCache if batching_enabled() else ReferenceSetAssociativeCache
    return cls(num_sets, associativity, policy)
