"""LLC organizations: set-partitioned and shared (Section 8 of the paper).

The evaluation uses *set partitioning*: each security domain owns a
disjoint group of LLC sets sized to its current partition. Because set
groups are disjoint, a domain's partition behaves exactly like a private
set-associative cache whose set count is ``partition_lines / associativity``;
that is how :class:`PartitionedLLC` models it. Resizing a domain re-hashes
its lines into the new set count (surviving lines keep their data, as in
a real set-repartitioning where some sets are reassigned).

:class:`SharedLLC` is the insecure baseline: one cache shared by all
domains, with per-domain statistics, where workloads conflict.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, SimulationError
from repro.sim.cache import CacheStats, SetAssociativeCache
from repro.sim.kernelmode import make_cache


def sets_for_lines(lines: int, associativity: int) -> int:
    """Number of sets for a partition of ``lines`` lines.

    Partition sizes are required to be multiples of the associativity so
    every size maps to a whole number of sets (true of all nine paper
    sizes).
    """
    if lines < associativity:
        raise ConfigurationError(
            f"partition of {lines} lines smaller than one set ({associativity} ways)"
        )
    if lines % associativity != 0:
        raise ConfigurationError(
            f"partition of {lines} lines is not a whole number of "
            f"{associativity}-way sets"
        )
    return lines // associativity


class LLCView:
    """What a domain's memory hierarchy sees of the LLC.

    ``access`` returns ``True`` on hit. Implementations: a partition of
    :class:`PartitionedLLC`, or a :class:`SharedLLC` bound to a domain.
    """

    #: Whether this view supports speculative runs (snapshot + restore).
    #: Views that keep it ``False`` still work with every scalar path and
    #: with :meth:`access_run`; the batched CPU kernel simply falls back
    #: to the reference loop for cores attached to them.
    supports_speculation = False

    def access(self, line_addr: int) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def access_run(self, addrs: np.ndarray) -> np.ndarray:
        """Resolve a run of accesses; returns the hit/miss boolean vector.

        The default loops over :meth:`access`, so any view is batchable;
        the concrete views override it with one-call kernel paths.
        """
        return np.fromiter(
            (self.access(int(a)) for a in addrs),
            dtype=bool,
            count=int(addrs.shape[0]),
        )

    def snapshot_for(self, addrs: np.ndarray) -> object:
        """Snapshot the state an :meth:`access_run` over ``addrs`` may change."""
        raise NotImplementedError

    def restore_snapshot(self, snapshot: object) -> None:
        """Undo changes made since the matching :meth:`snapshot_for`."""
        raise NotImplementedError


@dataclass(frozen=True)
class ResizeOutcome:
    """Result of applying a partition resize."""

    domain: int
    old_lines: int
    new_lines: int
    lines_lost: int


class PartitionedLLC:
    """A set-partitioned LLC: one private set group per domain.

    Parameters
    ----------
    total_lines:
        Total LLC capacity in lines.
    associativity:
        Ways per set (shared by all partitions).
    initial_lines:
        Starting partition size per domain (one value for all domains).
    num_domains:
        Number of security domains.
    """

    def __init__(
        self,
        total_lines: int,
        associativity: int,
        num_domains: int,
        initial_lines: int,
    ):
        if num_domains < 1:
            raise ConfigurationError("need at least one domain")
        if initial_lines * num_domains > total_lines:
            raise ConfigurationError(
                f"{num_domains} domains x {initial_lines} lines exceed the "
                f"{total_lines}-line LLC"
            )
        self.total_lines = total_lines
        self.associativity = associativity
        self.num_domains = num_domains
        self._sizes = [initial_lines] * num_domains
        self._caches = [
            make_cache(sets_for_lines(initial_lines, associativity), associativity)
            for _ in range(num_domains)
        ]
        self.resizes: list[ResizeOutcome] = []

    # ------------------------------------------------------------------
    def size_of(self, domain: int) -> int:
        """Current partition size of a domain, in lines."""
        return self._sizes[domain]

    @property
    def allocated_lines(self) -> int:
        """Sum of all partition sizes."""
        return sum(self._sizes)

    @property
    def free_lines(self) -> int:
        """Unallocated LLC capacity."""
        return self.total_lines - self.allocated_lines

    def available_for(self, domain: int) -> int:
        """Largest size the domain could grow to right now."""
        return self.free_lines + self._sizes[domain]

    def stats_of(self, domain: int) -> CacheStats:
        return self._caches[domain].stats

    def cache_of(self, domain: int) -> SetAssociativeCache:
        """The backing cache of a domain's partition (for inspection).

        The concrete type follows the selected kernel mode (see
        :mod:`repro.sim.kernelmode`); both expose the same interface.
        """
        return self._caches[domain]

    # ------------------------------------------------------------------
    def view(self, domain: int) -> "PartitionView":
        """The domain-private view used by its memory hierarchy."""
        if not 0 <= domain < self.num_domains:
            raise ConfigurationError(f"domain {domain} out of range")
        return PartitionView(self, domain)

    def access(self, domain: int, line_addr: int) -> bool:
        """Access a line within the domain's partition."""
        return self._caches[domain].access(line_addr)

    def access_run(self, domain: int, addrs: np.ndarray) -> np.ndarray:
        """Resolve a run of accesses within the domain's partition."""
        hits, _ = self._caches[domain].access_run(addrs)
        return hits

    def resize(self, domain: int, new_lines: int) -> ResizeOutcome:
        """Resize a domain's partition, enforcing the capacity invariant."""
        old_lines = self._sizes[domain]
        if new_lines == old_lines:
            outcome = ResizeOutcome(domain, old_lines, new_lines, 0)
            self.resizes.append(outcome)
            return outcome
        others = self.allocated_lines - old_lines
        if others + new_lines > self.total_lines:
            raise SimulationError(
                f"resizing domain {domain} to {new_lines} lines would exceed "
                f"the {self.total_lines}-line LLC ({others} allocated elsewhere)"
            )
        lost = self._caches[domain].resize_sets(
            sets_for_lines(new_lines, self.associativity)
        )
        self._sizes[domain] = new_lines
        outcome = ResizeOutcome(domain, old_lines, new_lines, lost)
        self.resizes.append(outcome)
        return outcome


class PartitionView(LLCView):
    """A single domain's view of a :class:`PartitionedLLC`."""

    __slots__ = ("_llc", "_domain")

    supports_speculation = True

    def __init__(self, llc: PartitionedLLC, domain: int):
        self._llc = llc
        self._domain = domain

    def access(self, line_addr: int) -> bool:
        return self._llc.access(self._domain, line_addr)

    def access_run(self, addrs: np.ndarray) -> np.ndarray:
        return self._llc.access_run(self._domain, addrs)

    def snapshot_for(self, addrs: np.ndarray) -> object:
        return self._llc._caches[self._domain].snapshot_for(addrs)

    def restore_snapshot(self, snapshot: object) -> None:
        self._llc._caches[self._domain].restore_snapshot(snapshot)

    def kernel_binding(self) -> tuple:
        """(backing cache, address offset, per-domain stats or None).

        Lets the fused hierarchy kernel loop walk the backing cache
        directly; a partition view has no address tagging and no separate
        per-domain counters (the cache's own stats are the domain's).
        """
        return self._llc._caches[self._domain], 0, None

    @property
    def partition_lines(self) -> int:
        return self._llc.size_of(self._domain)


class SharedLLC:
    """An unpartitioned LLC shared by all domains (the Shared scheme).

    Domain identity is folded into the tag so different domains' equal
    virtual line addresses do not falsely share cache lines, while still
    *conflicting* in the same sets — the paper's "cache conflicts between
    workloads" effect.
    """

    def __init__(self, total_lines: int, associativity: int, num_domains: int):
        if num_domains < 1:
            raise ConfigurationError("need at least one domain")
        self.total_lines = total_lines
        self.associativity = associativity
        self.num_domains = num_domains
        self._cache = make_cache(
            sets_for_lines(total_lines, associativity), associativity
        )
        self._domain_stats = [CacheStats() for _ in range(num_domains)]

    def view(self, domain: int) -> "SharedView":
        if not 0 <= domain < self.num_domains:
            raise ConfigurationError(f"domain {domain} out of range")
        return SharedView(self, domain)

    def size_of(self, domain: int) -> int:
        """Nominal per-domain size: the whole LLC (it is shared)."""
        return self.total_lines

    def stats_of(self, domain: int) -> CacheStats:
        return self._domain_stats[domain]

    #: Per-domain address-space offset: a large odd constant so domains'
    #: lines spread across (and conflict in) every set while their tags
    #: stay distinct. A simple ``addr * num_domains + domain`` folding
    #: would stripe each domain into its own set residue class —
    #: accidentally partitioning the "shared" cache.
    _DOMAIN_STRIDE = 7_368_787

    def access(self, domain: int, line_addr: int) -> bool:
        tagged = line_addr + domain * self._DOMAIN_STRIDE
        hit = self._cache.access(tagged)
        stats = self._domain_stats[domain]
        if hit:
            stats.hits += 1
        else:
            stats.misses += 1
        return hit

    def access_run(self, domain: int, addrs: np.ndarray) -> np.ndarray:
        """Resolve a run of one domain's accesses against the shared cache."""
        tagged = addrs + domain * self._DOMAIN_STRIDE
        hits, _ = self._cache.access_run(tagged)
        stats = self._domain_stats[domain]
        num_hits = int(np.count_nonzero(hits))
        stats.hits += num_hits
        stats.misses += int(hits.shape[0]) - num_hits
        return hits

    def snapshot_for(self, domain: int, addrs: np.ndarray) -> tuple:
        tagged = addrs + domain * self._DOMAIN_STRIDE
        stats = self._domain_stats[domain]
        return (self._cache.snapshot_for(tagged), stats.hits, stats.misses)

    def restore_snapshot(self, domain: int, snapshot: tuple) -> None:
        cache_snapshot, hits, misses = snapshot
        self._cache.restore_snapshot(cache_snapshot)
        stats = self._domain_stats[domain]
        stats.hits = hits
        stats.misses = misses


class SharedView(LLCView):
    """A single domain's view of a :class:`SharedLLC`."""

    __slots__ = ("_llc", "_domain")

    supports_speculation = True

    def __init__(self, llc: SharedLLC, domain: int):
        self._llc = llc
        self._domain = domain

    def access(self, line_addr: int) -> bool:
        return self._llc.access(self._domain, line_addr)

    def access_run(self, addrs: np.ndarray) -> np.ndarray:
        return self._llc.access_run(self._domain, addrs)

    def snapshot_for(self, addrs: np.ndarray) -> object:
        return self._llc.snapshot_for(self._domain, addrs)

    def restore_snapshot(self, snapshot: object) -> None:
        self._llc.restore_snapshot(self._domain, snapshot)

    def kernel_binding(self) -> tuple:
        """(backing cache, address offset, per-domain stats).

        The fused kernel loop adds the offset to every address (the
        shared LLC's domain tagging) and bulk-updates the domain's
        hit/miss stats, mirroring :meth:`SharedLLC.access_run`.
        """
        llc = self._llc
        domain = self._domain
        return llc._cache, domain * llc._DOMAIN_STRIDE, llc._domain_stats[domain]
