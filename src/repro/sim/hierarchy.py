"""Per-domain memory hierarchy: private L1 -> LLC view -> DRAM.

Each access walks the hierarchy and returns the round-trip latency of the
level that served it. On an L1 miss the access is also offered to the
domain's utilization monitor (the paper's UMON-style hardware table
filters out "memory accesses that would hit in the private caches",
Section 7); secret-annotated accesses are excluded from the monitor when
the hierarchy is configured to respect annotations (Principle 1 plus
annotations, Section 5.2).
"""

from __future__ import annotations

import enum
from typing import Protocol

from repro.config import ArchConfig
from repro.sim.cache import SetAssociativeCache
from repro.sim.partition import LLCView


class MemoryLevel(enum.IntEnum):
    """The level of the hierarchy that served an access."""

    L1 = 1
    LLC = 2
    DRAM = 3


class MonitorSink(Protocol):
    """Destination for monitored (L1-filtered) memory accesses."""

    def observe(self, line_addr: int) -> None:
        """Record one public post-L1 access."""
        ...


class DomainMemory:
    """One domain's private L1 plus its LLC view.

    Parameters
    ----------
    config:
        Machine parameters (latencies, L1 geometry).
    llc_view:
        This domain's LLC access object (partitioned or shared).
    monitor:
        Optional utilization-monitor sink fed with L1-missing accesses.
    monitor_respects_annotations:
        When ``True`` (Untangle), secret-annotated accesses never reach
        the monitor. When ``False`` (conventional schemes), every access
        is monitored — which is what makes their metric secret-dependent.
    """

    __slots__ = (
        "l1",
        "llc_view",
        "monitor",
        "monitor_respects_annotations",
        "_l1_latency",
        "_llc_latency",
        "_dram_latency",
        "level_counts",
    )

    def __init__(
        self,
        config: ArchConfig,
        llc_view: LLCView,
        monitor: MonitorSink | None = None,
        monitor_respects_annotations: bool = True,
    ):
        l1_sets = max(1, config.l1_lines // config.l1_associativity)
        self.l1 = SetAssociativeCache(l1_sets, config.l1_associativity)
        self.llc_view = llc_view
        self.monitor = monitor
        self.monitor_respects_annotations = monitor_respects_annotations
        self._l1_latency = config.l1_latency
        self._llc_latency = config.llc_latency
        self._dram_latency = config.dram_latency
        self.level_counts = {level: 0 for level in MemoryLevel}

    def access(self, line_addr: int, metric_excluded: bool = False) -> int:
        """Perform one memory access; returns its round-trip latency.

        ``metric_excluded`` marks secret-annotated accesses: they traverse
        the caches normally (the data still moves!) but are hidden from
        the monitor when annotations are respected.
        """
        if self.l1.access(line_addr):
            self.level_counts[MemoryLevel.L1] += 1
            return self._l1_latency
        if self.monitor is not None and (
            not self.monitor_respects_annotations or not metric_excluded
        ):
            self.monitor.observe(line_addr)
        if self.llc_view.access(line_addr):
            self.level_counts[MemoryLevel.LLC] += 1
            return self._llc_latency
        self.level_counts[MemoryLevel.DRAM] += 1
        return self._dram_latency

    def reset_level_counts(self) -> None:
        """Zero the per-level service counters (used at warmup end)."""
        for level in MemoryLevel:
            self.level_counts[level] = 0
