"""Per-domain memory hierarchy: private L1 -> LLC view -> DRAM.

Each access walks the hierarchy and returns the round-trip latency of the
level that served it. The domain's utilization monitor is fed the
L1-filtered access stream (the paper's UMON-style hardware table filters
out "memory accesses that would hit in the private caches", Section 7) —
but the *filter itself* depends on who is asking:

* When the hierarchy respects annotations (Principle 1, Untangle-style
  schemes), the monitor's L1 filter is a private shadow tag directory
  warmed only by the monitored (public) accesses. The live L1 holds
  secret lines too — the data really moves — so filtering by live-L1
  misses would let a secret-warmed L1 decide which *public* accesses the
  monitor sees, making the metric a function of the secret (exactly the
  Edge 1 leak Principle 1 exists to close). The shadow filter's "would
  this hit in the private cache" answer is a pure function of the public
  access sequence, so the monitor window contents are too.
* When annotations are not respected (conventional schemes, the Time
  baseline), the monitor observes live-L1-missing accesses including
  secret ones — the secret-dependent metric that motivates the paper.

Three entry points exist: :meth:`DomainMemory.access` resolves one
access (the reference kernel's path); :meth:`DomainMemory.access_block`
resolves a whole run of accesses in one call; and the
:meth:`DomainMemory.resolve_block` / :meth:`DomainMemory.commit_block`
pair resolves a run *speculatively* — caches advanced, monitor and
service counters deferred — so the batched CPU kernel can learn every
access's actual latency first, compute exactly where the reference
scalar loop would have stopped (a cycle budget, typically), and then
commit only that prefix, rolling the caches back over the unexecuted
tail via copy-on-write set snapshots. The block paths are exactly
equivalent to per-access calls: within a run, the L1 state depends only
on the address sequence, the monitor only on its filtered subsequence,
and the LLC only on the L1-missing subsequence — none feeds back into
another — and a rolled-back replay is deterministic from the restored
state. The shadow monitor filter advances only at commit time (it never
influences latencies), so speculation needs no filter snapshots.
"""

from __future__ import annotations

import enum
from typing import Protocol

import numpy as np

from repro.config import ArchConfig
from repro.sim.batch import active_scratch
from repro.sim.cache import SetAssociativeCache
from repro.sim.kernelmode import make_cache
from repro.sim.partition import LLCView


#: Sentinel distinct from the packed-recency dicts' stored value (None),
#: so ``ways.pop(addr, MISSING) is None`` is a one-lookup hit test.
MISSING = object()

#: Minimum positions an :class:`L1ServiceTrace` walk extends by at once:
#: resolves request a few hundred positions at a time, and thousands of
#: tiny ``access_run`` calls would be overhead-bound. :meth:`warm` also
#: walks one block past the stream period so lanes that consume a little
#: more than one full pass (the common case) never extend at all.
_TRACE_EXTEND_BLOCK = 8192


class L1ServiceTrace:
    """Precomputed L1 hit/miss decisions for one workload stream.

    The private L1 is unaffected by the LLC, the monitor, and the other
    domains: its hit/miss pattern over a stream is a pure function of
    the address sequence alone (see the module docstring's feedback
    argument). That makes the pattern *shareable* — lanes of a stacked
    chunk that simulate the same stream (and every speculative replay
    within one lane) can all be served from a single walk of the L1
    instead of each re-walking it with journaling and rollback.

    The trace walks the stream's memory-access sequence lazily and
    cyclically (streams wrap for pressure maintenance), extending an
    append-only hit/miss buffer on demand through
    :meth:`~repro.sim.cache.SetAssociativeCache.access_run` on a
    private replica built by the same :func:`~repro.sim.kernelmode.make_cache`
    the live hierarchy uses — so the recorded decisions are bit-identical
    to the decisions the lane's own L1 would have made. Handed-out
    slices are views of an append-only buffer, so concurrent lanes at
    different positions never invalidate each other.
    """

    __slots__ = ("geometry", "_cache", "_addrs", "_period", "_hits", "_walked")

    def __init__(self, mem_addrs: np.ndarray, config: ArchConfig):
        l1_sets = max(1, config.l1_lines // config.l1_associativity)
        self.geometry = (l1_sets, config.l1_associativity)
        self._cache = make_cache(l1_sets, config.l1_associativity)
        self._addrs = np.ascontiguousarray(mem_addrs, dtype=np.int64)
        self._period = int(self._addrs.shape[0])
        self._hits = np.zeros(0, dtype=bool)
        self._walked = 0

    @classmethod
    def for_stream(cls, stream, config: ArchConfig) -> "L1ServiceTrace":
        """Trace over a stream's memory events (stall slots excluded)."""
        addrs = stream.addresses[stream.event_positions]
        return cls(addrs[addrs >= 0], config)

    def warm(self) -> None:
        """Eagerly walk one full pass of the stream.

        Campaign engines call this in the parent process before forking
        workers: the walked buffer is inherited copy-on-write, so each
        worker only extends the trace past the first pass instead of
        replaying it from zero. Typical lanes consume little more than
        one pass, so one pass captures the bulk of the walk.
        """
        target = self._period + _TRACE_EXTEND_BLOCK
        if self._period and self._walked < target:
            self._extend(target)

    def hits(self, start: int, stop: int) -> np.ndarray:
        """Hit/miss booleans for absolute access positions [start, stop)."""
        if stop > self._walked:
            self._extend(stop)
        return self._hits[start:stop]

    def _extend(self, target: int) -> None:
        if self._period == 0:
            raise ValueError("cannot trace a stream with no memory accesses")
        # Walk well past the request: resolves ask for a few hundred
        # positions at a time, and thousands of tiny access_run calls
        # would be overhead-bound. Extending in blocks keeps the walk
        # to a handful of bulk calls per stream, at a bounded overshoot
        # of one block past what the lanes actually consume.
        target = max(target, self._walked + _TRACE_EXTEND_BLOCK)
        if target > self._hits.shape[0]:
            capacity = max(self._hits.shape[0], self._period)
            while capacity < target:
                capacity *= 2
            grown = np.empty(capacity, dtype=bool)
            grown[: self._walked] = self._hits[: self._walked]
            # Old buffer (and every view into it) stays alive and final;
            # only positions past _walked are ever written again.
            self._hits = grown
        addrs = self._addrs
        walked = self._walked
        while walked < target:
            offset = walked % self._period
            n = min(self._period - offset, target - walked)
            segment, _ = self._cache.access_run(addrs[offset : offset + n])
            self._hits[walked : walked + n] = segment
            walked += n
        self._walked = walked


class MemoryLevel(enum.IntEnum):
    """The level of the hierarchy that served an access."""

    L1 = 1
    LLC = 2
    DRAM = 3


class MonitorSink(Protocol):
    """Destination for monitored (L1-filtered) memory accesses."""

    def observe(self, line_addr: int) -> None:
        """Record one public post-L1 access."""
        ...


class DomainMemory:
    """One domain's private L1 plus its LLC view.

    Parameters
    ----------
    config:
        Machine parameters (latencies, L1 geometry).
    llc_view:
        This domain's LLC access object (partitioned or shared).
    monitor:
        Optional utilization-monitor sink fed with L1-filtered accesses.
    monitor_respects_annotations:
        When ``True`` (Untangle), secret-annotated accesses never reach
        the monitor, and the monitor's L1 filter is a private shadow tag
        directory warmed only by public accesses — a pure function of
        the public access sequence (Principle 1; see the module
        docstring). When ``False`` (conventional schemes), every
        live-L1-missing access is monitored — which is what makes their
        metric secret-dependent.
    """

    __slots__ = (
        "l1",
        "llc_view",
        "monitor",
        "monitor_respects_annotations",
        "_monitor_filter",
        "_l1_latency",
        "_llc_latency",
        "_dram_latency",
        "_distinct_latencies",
        "level_counts",
        "_l1_trace",
        "_l1_trace_pos",
    )

    def __init__(
        self,
        config: ArchConfig,
        llc_view: LLCView,
        monitor: MonitorSink | None = None,
        monitor_respects_annotations: bool = True,
    ):
        l1_sets = max(1, config.l1_lines // config.l1_associativity)
        self.l1 = make_cache(l1_sets, config.l1_associativity)
        self.llc_view = llc_view
        self.monitor = monitor
        self.monitor_respects_annotations = monitor_respects_annotations
        # The shadow tag directory filtering the monitored stream (same
        # geometry as the L1 it models). Only at commit time, never
        # speculatively — see resolve/commit.
        self._monitor_filter = (
            make_cache(l1_sets, config.l1_associativity)
            if monitor is not None and monitor_respects_annotations
            else None
        )
        self._l1_latency = config.l1_latency
        self._llc_latency = config.llc_latency
        self._dram_latency = config.dram_latency
        # With three distinct level latencies the serving level can be
        # recovered from an access's latency, which lets the fused kernel
        # skip materializing hit masks (commit_block derives them).
        self._distinct_latencies = (
            len({config.l1_latency, config.llc_latency, config.dram_latency}) == 3
        )
        self.level_counts = {level: 0 for level in MemoryLevel}
        self._l1_trace: L1ServiceTrace | None = None
        self._l1_trace_pos = 0

    def install_l1_trace(self, trace: L1ServiceTrace) -> None:
        """Serve L1 decisions from a shared precomputed service trace.

        Afterwards the live ``l1`` cache object is never walked: resolves
        slice the trace at this domain's committed stream position and
        only the L1-missing subsequence pays a per-access LLC walk. The
        caller must install the trace *before* the first access, the
        trace must cover exactly this domain's memory-access sequence in
        order, and resolves must alternate strictly with commits (the
        batched kernel's discipline) — the trace position advances only
        at commit, which is what makes speculative rollback free on the
        L1 side. ``l1.stats`` keeps hit/miss counts for served accesses;
        eviction counts are not modeled on the traced path (no consumer
        reads them).
        """
        if trace.geometry != (self.l1.num_sets, self.l1.associativity):
            raise ValueError(
                f"trace geometry {trace.geometry} does not match the L1 "
                f"({self.l1.num_sets} sets x {self.l1.associativity} ways)"
            )
        self._l1_trace = trace
        self._l1_trace_pos = 0

    @property
    def monitor_wants_hashes(self) -> bool:
        """Whether precomputed address hashes would help the monitor.

        True when the monitor set-samples by SplitMix64 address hash
        (see :class:`repro.monitor.umon.UMONMonitor`); callers that hold
        a per-stream hash cache can then pass it to
        :meth:`access_block` and skip re-hashing per observation.
        """
        return self.monitor is not None and bool(
            getattr(self.monitor, "uses_address_hashes", False)
        )

    def access(self, line_addr: int, metric_excluded: bool = False) -> int:
        """Perform one memory access; returns its round-trip latency.

        ``metric_excluded`` marks secret-annotated accesses: they traverse
        the caches normally (the data still moves!) but are hidden from
        the monitor when annotations are respected — and excluded from
        its shadow filter, so they cannot even shift which public
        accesses the monitor sees.
        """
        filter_cache = self._monitor_filter
        if filter_cache is not None and not metric_excluded:
            if not filter_cache.access(line_addr):
                self.monitor.observe(line_addr)
        trace = self._l1_trace
        if trace is not None:
            pos = self._l1_trace_pos
            self._l1_trace_pos = pos + 1
            stats = self.l1.stats
            if trace.hits(pos, pos + 1)[0]:
                stats.hits += 1
                self.level_counts[MemoryLevel.L1] += 1
                return self._l1_latency
            stats.misses += 1
        elif self.l1.access(line_addr):
            self.level_counts[MemoryLevel.L1] += 1
            return self._l1_latency
        if (
            filter_cache is None
            and self.monitor is not None
            and (not self.monitor_respects_annotations or not metric_excluded)
        ):
            self.monitor.observe(line_addr)
        if self.llc_view.access(line_addr):
            self.level_counts[MemoryLevel.LLC] += 1
            return self._llc_latency
        self.level_counts[MemoryLevel.DRAM] += 1
        return self._dram_latency

    @property
    def supports_speculation(self) -> bool:
        """Whether the LLC view can snapshot/restore for speculative runs."""
        return bool(getattr(self.llc_view, "supports_speculation", False))

    @property
    def worst_case_latency(self) -> int:
        """Upper bound on any single access's latency (a DRAM miss)."""
        return self._dram_latency

    def resolve_block(
        self, addrs: np.ndarray, speculative: bool = True
    ) -> tuple[np.ndarray, tuple]:
        """Speculatively resolve a run's latencies; caches advance, nothing else.

        The L1 and the LLC view are walked through the whole run (so the
        returned int64 latencies are the *actual* per-access values), but
        the monitor and the service counters are untouched — they are
        applied by :meth:`commit_block` for the prefix that really
        executed. With ``speculative=True`` the touched cache sets are
        snapshotted first so a partial commit can roll the tail back.

        When both caches are packed-recency LRU (the production kernel)
        and the view exposes a :meth:`kernel_binding`, the walk is one
        fused Python loop over the raw set dicts — the single hottest
        loop of the simulator — instead of two staged
        :meth:`~repro.sim.cache.SetAssociativeCache.access_run` calls.
        """
        if self._l1_trace is not None:
            return self._resolve_block_traced(addrs, speculative)
        l1 = self.l1
        binding = getattr(self.llc_view, "kernel_binding", None)
        if (
            binding is not None
            and self._distinct_latencies
            and type(l1) is SetAssociativeCache
            and l1._lru
        ):
            llc_cache, offset, domain_stats = binding()
            if type(llc_cache) is SetAssociativeCache and llc_cache._lru:
                return self._resolve_block_fused(
                    addrs, speculative, llc_cache, offset, domain_stats
                )

        l1_snapshot = l1.snapshot_for(addrs) if speculative else None
        l1_hits, _ = l1.access_run(addrs)
        miss_mask = ~l1_hits
        miss_addrs = addrs[miss_mask]
        latencies = np.full(addrs.shape[0], self._l1_latency, dtype=np.int64)
        if miss_addrs.shape[0]:
            llc_snapshot = (
                self.llc_view.snapshot_for(miss_addrs) if speculative else None
            )
            llc_hits = self.llc_view.access_run(miss_addrs)
            latencies[miss_mask] = np.where(
                llc_hits, self._llc_latency, self._dram_latency
            )
        else:
            llc_snapshot = None
            llc_hits = miss_addrs.astype(bool)
        token = (addrs, latencies, (miss_mask, llc_hits), l1_snapshot, llc_snapshot)
        return latencies, token

    def _resolve_block_fused(
        self,
        addrs: np.ndarray,
        speculative: bool,
        llc_cache: SetAssociativeCache,
        offset: int,
        domain_stats,
    ) -> tuple[np.ndarray, tuple]:
        """One-loop L1+LLC resolve over the raw packed-recency dicts.

        Semantically identical to the staged path (and to per-access
        :meth:`access` calls): same dict operations in the same order,
        with the stats and resident counters applied in bulk afterwards.
        Snapshots are journaled lazily — each set is copied the first
        time the loop touches it — so speculation costs nothing for sets
        the run never reaches.
        """
        l1 = self.l1
        if speculative:
            l1_journal: dict | None = {}
            stats = l1.stats
            l1_snapshot = (
                l1_journal,
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.invalidations,
                l1._resident,
            )
            llc_journal: dict | None = {}
            stats = llc_cache.stats
            cache_snapshot = (
                llc_journal,
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.invalidations,
                llc_cache._resident,
            )
            # Match the format the view's restore_snapshot expects: a
            # shared view carries its per-domain counters alongside the
            # cache snapshot, a partition view is the cache snapshot.
            if domain_stats is None:
                llc_snapshot = cache_snapshot
            else:
                llc_snapshot = (
                    cache_snapshot,
                    domain_stats.hits,
                    domain_stats.misses,
                )
        else:
            l1_journal = None
            llc_journal = None
            l1_snapshot = None
            llc_snapshot = None
        l1_sets = l1._sets
        l1_num_sets = l1.num_sets
        l1_assoc = l1.associativity
        llc_sets = llc_cache._sets
        llc_num_sets = llc_cache.num_sets
        llc_assoc = llc_cache.associativity
        l1_latency = self._l1_latency
        llc_latency = self._llc_latency
        dram_latency = self._dram_latency

        l1_hit = l1_miss = l1_evict = 0
        llc_hit = llc_miss = llc_evict = 0
        latencies: list[int] = []
        lat_append = latencies.append

        # Set indexes come from one vectorized modulo per level instead of
        # a Python ``%`` per access; resident lines map to None, so pop's
        # MISSING default doubles as the miss test while removing a hit's
        # stale recency slot. Under cell-major batching the transient
        # index arrays stack into the chunk-shared scratch arena (fully
        # overwritten per run, so reuse is bit-identical).
        n = addrs.shape[0]
        scratch = active_scratch()
        if scratch is not None:
            l1_indexes = np.mod(addrs, l1_num_sets, out=scratch.i64(n, slot=0))
            if offset:
                tagged_addrs = np.add(addrs, offset, out=scratch.i64(n, slot=1))
            else:
                tagged_addrs = addrs
            llc_indexes = np.mod(
                tagged_addrs, llc_num_sets, out=scratch.i64(n, slot=2)
            )
        else:
            tagged_addrs = addrs + offset if offset else addrs
            l1_indexes = addrs % l1_num_sets
            llc_indexes = tagged_addrs % llc_num_sets
        for addr, index, tagged, llc_index in zip(
            addrs.tolist(),
            l1_indexes.tolist(),
            tagged_addrs.tolist(),
            llc_indexes.tolist(),
        ):
            ways = l1_sets[index]
            if l1_journal is not None and index not in l1_journal:
                l1_journal[index] = dict(ways)
            if ways.pop(addr, MISSING) is None:
                ways[addr] = None
                l1_hit += 1
                lat_append(l1_latency)
                continue
            if len(ways) >= l1_assoc:
                del ways[next(iter(ways))]
                l1_evict += 1
            ways[addr] = None
            l1_miss += 1
            ways = llc_sets[llc_index]
            if llc_journal is not None and llc_index not in llc_journal:
                llc_journal[llc_index] = dict(ways)
            if ways.pop(tagged, MISSING) is None:
                ways[tagged] = None
                llc_hit += 1
                lat_append(llc_latency)
            else:
                if len(ways) >= llc_assoc:
                    del ways[next(iter(ways))]
                    llc_evict += 1
                ways[tagged] = None
                llc_miss += 1
                lat_append(dram_latency)

        stats = l1.stats
        stats.hits += l1_hit
        stats.misses += l1_miss
        stats.evictions += l1_evict
        l1._resident += l1_miss - l1_evict
        stats = llc_cache.stats
        stats.hits += llc_hit
        stats.misses += llc_miss
        stats.evictions += llc_evict
        llc_cache._resident += llc_miss - llc_evict
        if domain_stats is not None:
            domain_stats.hits += llc_hit
            domain_stats.misses += llc_miss

        # The hit level is recoverable from the latency (the dispatch in
        # resolve_block requires the three level latencies to be
        # distinct), so the miss/LLC-hit masks are derived vectorized in
        # commit_block instead of appended per access here.
        latency_array = np.array(latencies, dtype=np.int64)
        token = (addrs, latency_array, None, l1_snapshot, llc_snapshot)
        return latency_array, token

    def _resolve_block_traced(
        self, addrs: np.ndarray, speculative: bool
    ) -> tuple[np.ndarray, tuple]:
        """Resolve via the installed L1 service trace.

        L1 decisions are a slice of the shared trace at this domain's
        committed position — no dict walk, no journal, and rollback is
        free (the position only advances at commit). Only the L1-missing
        subsequence walks the LLC: through one lazily-journaled loop
        over the raw packed-recency dicts when the view exposes a
        ``kernel_binding`` (the same fusion :meth:`_resolve_block_fused`
        applies), else through the staged ``snapshot_for``/``access_run``
        primitives. Either way LLC state and counters evolve exactly as
        the generic path's would.
        """
        n = int(addrs.shape[0])
        pos = self._l1_trace_pos
        l1_hits = self._l1_trace.hits(pos, pos + n)
        miss_mask = ~l1_hits
        miss_addrs = addrs[miss_mask]
        latencies = np.full(n, self._l1_latency, dtype=np.int64)
        if miss_addrs.shape[0]:
            llc_snapshot = None
            llc_hits = None
            binding = getattr(self.llc_view, "kernel_binding", None)
            if binding is not None:
                llc_cache, offset, domain_stats = binding()
                if type(llc_cache) is SetAssociativeCache and llc_cache._lru:
                    llc_snapshot, llc_hits = self._llc_walk_journaled(
                        miss_addrs, speculative, llc_cache, offset, domain_stats
                    )
            if llc_hits is None:
                llc_snapshot = (
                    self.llc_view.snapshot_for(miss_addrs)
                    if speculative
                    else None
                )
                llc_hits = self.llc_view.access_run(miss_addrs)
            latencies[miss_mask] = np.where(
                llc_hits, self._llc_latency, self._dram_latency
            )
        else:
            llc_snapshot = None
            llc_hits = miss_addrs.astype(bool)
        token = (
            addrs,
            latencies,
            (miss_mask, llc_hits),
            (self._l1_trace, speculative),
            llc_snapshot,
        )
        return latencies, token

    def _llc_walk_journaled(
        self,
        addrs: np.ndarray,
        speculative: bool,
        cache: SetAssociativeCache,
        offset: int,
        domain_stats,
    ) -> tuple[tuple | None, np.ndarray]:
        """One-loop LLC walk over the raw packed-recency dicts.

        The traced resolve's LLC half of :meth:`_resolve_block_fused`:
        semantically identical to ``snapshot_for`` + ``access_run`` on
        the view (same dict operations in the same order, stats applied
        in bulk), but the snapshot is journaled lazily as sets are first
        touched instead of in an eager pre-pass. Returns the snapshot in
        the exact layout the view's ``restore_snapshot`` expects, plus
        the per-access hit vector.
        """
        if speculative:
            journal: dict | None = {}
            stats = cache.stats
            cache_snapshot = (
                journal,
                stats.hits,
                stats.misses,
                stats.evictions,
                stats.invalidations,
                cache._resident,
            )
            if domain_stats is None:
                snapshot: tuple | None = cache_snapshot
            else:
                snapshot = (
                    cache_snapshot,
                    domain_stats.hits,
                    domain_stats.misses,
                )
        else:
            journal = None
            snapshot = None
        sets = cache._sets
        num_sets = cache.num_sets
        assoc = cache.associativity
        tagged = addrs + offset if offset else addrs
        indexes = tagged % num_sets
        hit = miss = evict = 0
        out: list[bool] = []
        append = out.append
        for addr, index in zip(tagged.tolist(), indexes.tolist()):
            ways = sets[index]
            if journal is not None and index not in journal:
                journal[index] = dict(ways)
            if ways.pop(addr, MISSING) is None:
                ways[addr] = None
                hit += 1
                append(True)
            else:
                if len(ways) >= assoc:
                    del ways[next(iter(ways))]
                    evict += 1
                ways[addr] = None
                miss += 1
                append(False)
        stats = cache.stats
        stats.hits += hit
        stats.misses += miss
        stats.evictions += evict
        cache._resident += miss - evict
        if domain_stats is not None:
            domain_stats.hits += hit
            domain_stats.misses += miss
        return snapshot, np.array(out, dtype=bool)

    def _feed_monitor(
        self,
        addrs: np.ndarray,
        count: int,
        metric_excluded: np.ndarray | None,
        hashes: np.ndarray | None,
        miss_mask: np.ndarray,
    ) -> None:
        """Offer a committed prefix's accesses to the monitor.

        ``addrs``/``miss_mask`` cover exactly the committed prefix
        (length ``count``); ``metric_excluded``/``hashes`` are aligned
        with the original block and sliced here. With a shadow filter
        (annotations respected), the public subsequence is walked
        through the filter and its misses are observed — the live L1's
        ``miss_mask`` plays no part, so secret lines resident in the
        real L1 cannot shift what the monitor sees. Without one, the
        legacy live-L1-missing feed applies.
        """
        monitor = self.monitor
        if monitor is None:
            return
        filter_cache = self._monitor_filter
        if filter_cache is not None:
            if metric_excluded is not None:
                public = ~metric_excluded[:count]
                public_addrs = addrs[public]
            else:
                public = None
                public_addrs = addrs
            if not public_addrs.shape[0]:
                return
            filter_hits, _ = filter_cache.access_run(public_addrs)
            keep = ~filter_hits
            monitored = public_addrs[keep]
            if not monitored.shape[0]:
                return
            if hashes is not None:
                kept_hashes = hashes[:count]
                if public is not None:
                    kept_hashes = kept_hashes[public]
                monitored_hashes = kept_hashes[keep]
            else:
                monitored_hashes = None
        else:
            if self.monitor_respects_annotations and metric_excluded is not None:
                keep = miss_mask & ~metric_excluded[:count]
            else:
                keep = miss_mask
            monitored = addrs[keep]
            if not monitored.shape[0]:
                return
            monitored_hashes = (
                hashes[:count][keep] if hashes is not None else None
            )
        observe_block = getattr(monitor, "observe_block", None)
        if observe_block is not None:
            observe_block(monitored, monitored_hashes)
        else:
            observe = monitor.observe
            for line_addr in monitored.tolist():
                observe(line_addr)

    def _commit_block_traced(
        self,
        token: tuple,
        count: int,
        metric_excluded: np.ndarray | None,
        hashes: np.ndarray | None,
    ) -> None:
        """Commit a traced resolve's prefix.

        The L1 side needs no restore or replay — advancing the trace
        position by ``count`` *is* the commit. A partial commit restores
        the LLC snapshot and re-walks the kept prefix's misses for state
        (the walk is deterministic from the restored state, so its hit
        pattern equals the original resolve's prefix).
        """
        addrs, latencies, masks, (_, speculative), llc_snapshot = token
        n = int(addrs.shape[0])
        miss_mask, llc_hits = masks
        if count < n:
            if not speculative:
                raise ValueError("partial commit requires a speculative resolve")
            miss_mask = miss_mask[:count]
            kept_misses = int(np.count_nonzero(miss_mask))
            if llc_snapshot is not None:
                self.llc_view.restore_snapshot(llc_snapshot)
                if kept_misses:
                    # Deterministic replay of the kept prefix's misses
                    # for LLC state; fused when the view allows it.
                    replay = addrs[:count][miss_mask]
                    binding = getattr(self.llc_view, "kernel_binding", None)
                    replayed = False
                    if binding is not None:
                        llc_cache, offset, domain_stats = binding()
                        if (
                            type(llc_cache) is SetAssociativeCache
                            and llc_cache._lru
                        ):
                            self._llc_walk_journaled(
                                replay, False, llc_cache, offset, domain_stats
                            )
                            replayed = True
                    if not replayed:
                        self.llc_view.access_run(replay)
            llc_hits = llc_hits[:kept_misses]
            addrs = addrs[:count]
        if not count:
            return
        self._l1_trace_pos += count
        num_misses = int(np.count_nonzero(miss_mask))
        counts = self.level_counts
        counts[MemoryLevel.L1] += count - num_misses
        num_llc = int(np.count_nonzero(llc_hits))
        counts[MemoryLevel.LLC] += num_llc
        counts[MemoryLevel.DRAM] += num_misses - num_llc
        stats = self.l1.stats
        stats.hits += count - num_misses
        stats.misses += num_misses
        self._feed_monitor(addrs, count, metric_excluded, hashes, miss_mask)

    def commit_block(
        self,
        token: tuple,
        count: int,
        metric_excluded: np.ndarray | None = None,
        hashes: np.ndarray | None = None,
    ) -> None:
        """Commit the first ``count`` accesses of a resolved block.

        When ``count`` covers the whole block this just applies the
        deferred effects (service counters, monitor observations). For a
        partial commit the caches are restored to their snapshots and the
        kept prefix is deterministically replayed, so the final state is
        exactly as if only those accesses had happened. ``metric_excluded``
        and ``hashes`` are aligned with the block's address array.
        """
        if self._l1_trace is not None:
            return self._commit_block_traced(token, count, metric_excluded, hashes)
        addrs, latencies, masks, l1_snapshot, llc_snapshot = token
        n = int(addrs.shape[0])
        if count < n:
            if l1_snapshot is None:
                raise ValueError("partial commit requires a speculative resolve")
            self.l1.restore_snapshot(l1_snapshot)
            if llc_snapshot is not None:
                self.llc_view.restore_snapshot(llc_snapshot)
            addrs = addrs[:count]
            if count:
                # Deterministic replay of the kept prefix from the
                # restored state, through the fast resolver (the replay
                # needs no snapshots of its own — it always commits).
                latencies, replay_token = self.resolve_block(
                    addrs, speculative=False
                )
                masks = replay_token[2]
                if masks is not None:
                    miss_mask, llc_hits = masks
                else:
                    miss_mask = latencies != self._l1_latency
                    llc_hits = latencies[miss_mask] == self._llc_latency
            else:
                return
        elif not count:
            return
        elif masks is not None:
            miss_mask, llc_hits = masks
        else:
            miss_mask = latencies != self._l1_latency
            llc_hits = latencies[miss_mask] == self._llc_latency

        counts = self.level_counts
        num_misses = int(np.count_nonzero(miss_mask))
        counts[MemoryLevel.L1] += count - num_misses
        num_llc = int(np.count_nonzero(llc_hits))
        counts[MemoryLevel.LLC] += num_llc
        counts[MemoryLevel.DRAM] += num_misses - num_llc
        self._feed_monitor(addrs, count, metric_excluded, hashes, miss_mask)

    def access_block(
        self,
        addrs: np.ndarray,
        metric_excluded: np.ndarray | None = None,
        hashes: np.ndarray | None = None,
    ) -> np.ndarray:
        """Resolve a run of memory accesses in one call.

        Returns the per-access round-trip latencies as an int64 array.
        ``metric_excluded`` (aligned boolean array) carries the secret
        annotations; ``hashes`` optionally carries precomputed SplitMix64
        address hashes for a set-sampling monitor. State and counters
        afterwards are exactly as if :meth:`access` had been called once
        per address in order.
        """
        latencies, token = self.resolve_block(addrs, speculative=False)
        self.commit_block(token, int(addrs.shape[0]), metric_excluded, hashes)
        return latencies

    def reset_level_counts(self) -> None:
        """Zero the per-level service counters (used at warmup end)."""
        for level in MemoryLevel:
            self.level_counts[level] = 0
