"""Base machinery shared by all partitioning schemes.

A scheme implements the :class:`repro.sim.system.SchemeProtocol` hooks.
:class:`BaseScheme` provides the common plumbing: building per-domain
memory hierarchies over a chosen LLC organization, a min-heap of delayed
resizing actions, and trace/stat recording helpers.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.core.actions import ActionAlphabet, ResizingAction
from repro.errors import SimulationError
from repro.sim.hierarchy import DomainMemory
from repro.sim.partition import PartitionedLLC, SharedLLC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MultiDomainSystem


class BaseScheme:
    """Common scheme plumbing. Subclasses implement policy."""

    name = "base"

    def __init__(self, arch: ArchConfig):
        self.arch = arch
        self.alphabet = ActionAlphabet(arch.supported_partition_lines)
        self.llc: PartitionedLLC | SharedLLC | None = None
        self.monitors: list = []
        #: Min-heap of (apply_time, sequence, domain, new_size) events.
        self._pending: list[tuple[int, int, int, int]] = []
        self._pending_sequence = 0

    # ------------------------------------------------------------------
    # SchemeProtocol defaults
    # ------------------------------------------------------------------
    def build(self, system: "MultiDomainSystem") -> None:  # pragma: no cover
        raise NotImplementedError

    def progress_target(self, domain: int) -> int | None:
        return None

    def on_progress(self, system: "MultiDomainSystem", domain: int, now: int) -> None:
        raise SimulationError(f"{self.name} scheme does not use progress events")

    def on_quantum(self, system: "MultiDomainSystem", now: int) -> None:
        self.apply_pending(system, now)

    def partition_size(self, domain: int) -> int:
        if self.llc is None:
            raise SimulationError("scheme not built yet")
        return self.llc.size_of(domain)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _build_partitioned(
        self,
        system: "MultiDomainSystem",
        monitors: list | None,
        monitor_respects_annotations: bool,
        organization: str = "set",
    ) -> None:
        """Create a partitioned LLC plus per-domain memories/monitors.

        ``organization`` selects set partitioning (the paper's choice,
        Section 8) or way partitioning (the classic alternative; see
        :mod:`repro.sim.waypart`). Both expose the same interface, so
        every scheme runs over either.
        """
        arch = self.arch
        if organization == "set":
            llc_class = PartitionedLLC
        elif organization == "way":
            from repro.sim.waypart import WayPartitionedLLC

            llc_class = WayPartitionedLLC
        else:
            raise SimulationError(f"unknown LLC organization {organization!r}")
        self.llc = llc_class(
            total_lines=arch.llc_lines,
            associativity=arch.llc_associativity,
            num_domains=arch.num_cores,
            initial_lines=arch.default_partition_lines,
        )
        self.monitors = monitors if monitors is not None else [None] * arch.num_cores
        system.memories = [
            DomainMemory(
                arch,
                self.llc.view(domain),
                monitor=self.monitors[domain],
                monitor_respects_annotations=monitor_respects_annotations,
            )
            for domain in range(arch.num_cores)
        ]

    def schedule_resize(self, apply_time: int, domain: int, new_size: int) -> None:
        """Queue a resize for application at ``apply_time``."""
        heapq.heappush(
            self._pending, (apply_time, self._pending_sequence, domain, new_size)
        )
        self._pending_sequence += 1

    def apply_pending(self, system: "MultiDomainSystem", now: int) -> None:
        """Apply queued resizes whose time has come.

        Resizes are committed (capacity-reserved) at assessment time but
        applied with a delay; an expand can therefore momentarily wait on
        a shrink that frees its lines. Such expands are deferred and
        retried, preserving the physical capacity invariant — in hardware
        the set reassignment would likewise complete only after the donor
        sets drain.
        """
        assert self.llc is not None and not isinstance(self.llc, SharedLLC)
        deferred: list[tuple[int, int, int, int]] = []
        while self._pending and self._pending[0][0] <= now:
            event = heapq.heappop(self._pending)
            _, _, domain, new_size = event
            if self.llc.size_of(domain) == new_size:
                continue
            if new_size > self.llc.available_for(domain):
                deferred.append(event)
                continue
            self.llc.resize(domain, new_size)
            # A shrink may have unblocked a deferred expand: retry them.
            still_deferred = []
            for pending_event in deferred:
                _, _, d, size = pending_event
                if size <= self.llc.available_for(d):
                    self.llc.resize(d, size)
                else:
                    still_deferred.append(pending_event)
            deferred = still_deferred
        for event in deferred:
            heapq.heappush(self._pending, event)

    def record_assessment(
        self,
        system: "MultiDomainSystem",
        domain: int,
        action: ResizingAction,
        timestamp: int,
        leakage_bits: float,
    ) -> None:
        """Log one assessment into the trace and the domain statistics.

        Statistics stop accumulating once the domain's slice has finished
        (the paper's methodology), but the trace keeps recording — the
        attacker keeps observing.
        """
        system.record_action(domain, action, timestamp)
        stats = system.stats[domain]
        if stats.finished:
            return
        stats.assessments += 1
        if action.is_visible:
            stats.visible_actions += 1
        stats.leakage_bits += leakage_bits
