"""Unpartitioned sharing (the Shared baseline of Table 4).

All domains share the whole LLC with no isolation. This is the insecure
upper-adaptivity baseline: maximal flexibility, classic cache side
channels wide open. The evaluation shows it can even *lose* to dynamic
partitioning under pressure because of inter-workload conflict misses.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.schemes.base import BaseScheme
from repro.sim.hierarchy import DomainMemory
from repro.sim.partition import SharedLLC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MultiDomainSystem


class SharedScheme(BaseScheme):
    """One shared LLC, no partitions, no assessments."""

    name = "shared"

    def __init__(self, arch: ArchConfig):
        super().__init__(arch)

    def build(self, system: "MultiDomainSystem") -> None:
        arch = self.arch
        self.llc = SharedLLC(
            total_lines=arch.llc_lines,
            associativity=arch.llc_associativity,
            num_domains=arch.num_cores,
        )
        self.monitors = [None] * arch.num_cores
        system.memories = [
            DomainMemory(arch, self.llc.view(domain))
            for domain in range(arch.num_cores)
        ]

    def on_quantum(self, system: "MultiDomainSystem", now: int) -> None:
        return None

    def partition_size(self, domain: int) -> int:
        # Nominally the whole LLC; reported as such in size distributions.
        assert self.llc is not None
        return self.llc.size_of(domain)
