"""Static partitioning (the Static baseline of Table 4).

Every domain keeps a fixed partition (the paper's 2 MB equivalent) for
the whole execution. Static partitioning is the fully secure baseline:
no resizing actions exist, so nothing is observable and the leakage is
exactly zero — but performance suffers whenever demand differs from the
fixed allocation (Section 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.errors import ConfigurationError
from repro.schemes.base import BaseScheme
from repro.sim.hierarchy import DomainMemory
from repro.sim.partition import PartitionedLLC

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MultiDomainSystem


class StaticScheme(BaseScheme):
    """Fixed equal partitions; zero assessments, zero leakage."""

    name = "static"

    def __init__(
        self,
        arch: ArchConfig,
        partition_lines: int | None = None,
        organization: str = "set",
    ):
        super().__init__(arch)
        self._partition_lines = (
            partition_lines
            if partition_lines is not None
            else arch.default_partition_lines
        )
        if self._partition_lines * arch.num_cores > arch.llc_lines:
            raise ConfigurationError("static partitions exceed the LLC")
        self._organization = organization

    @property
    def partition_lines(self) -> int:
        return self._partition_lines

    def build(self, system: "MultiDomainSystem") -> None:
        arch = self.arch
        if self._organization == "way":
            from repro.sim.waypart import WayPartitionedLLC

            llc_class = WayPartitionedLLC
        else:
            llc_class = PartitionedLLC
        self.llc = llc_class(
            total_lines=arch.llc_lines,
            associativity=arch.llc_associativity,
            num_domains=arch.num_cores,
            initial_lines=self._partition_lines,
        )
        self.monitors = [None] * arch.num_cores
        system.memories = [
            DomainMemory(arch, self.llc.view(domain))
            for domain in range(arch.num_cores)
        ]

    def on_quantum(self, system: "MultiDomainSystem", now: int) -> None:
        # No assessments, no pending actions.
        return None
