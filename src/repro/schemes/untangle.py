"""The Untangle scheme (Section 5 of the paper; "Untangle" row of Table 4).

Construction follows the two design principles plus annotations:

* **Principle 1** — the utilization metric is the UMON monitor fed only
  with *retired, public* post-L1 accesses in program order
  (``timing_independent=True``; annotation filtering happens in
  :class:`repro.sim.hierarchy.DomainMemory`).
* **Principle 2** — assessments happen every ``N`` retired public
  instructions (:class:`repro.schemes.schedule.ProgressSchedule`), with a
  cooldown ``T_c`` (Mechanism 1) and a uniform random action delay
  (Mechanism 2).

Consequently the resizing *action sequence* is a deterministic function
of the public retired instruction sequence — zero action leakage — and
the only leakage is scheduling leakage, charged at runtime from the
precomputed :class:`~repro.core.rates.RmaxTable` using the
consecutive-Maintain optimization of Sections 5.3.4 and 7.

Both principles are mechanically checked at construction via
:func:`repro.core.principles.require_untangle_compliant`; building an
Untangle scheme over a timing-dependent metric raises
:class:`~repro.errors.PrincipleViolation`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.core.accountant import LeakageAccountant
from repro.core.actions import ResizingAction
from repro.core.covert import CovertChannelModel, uniform_delay
from repro.core.principles import (
    require_progress_based_schedule,
    require_timing_independent_metric,
)
from repro.core.rates import RateEntry, RmaxTable, compute_entry
from repro.monitor.umon import UMONMonitor
from repro.schemes.allocation import GreedyHitMaximizer
from repro.schemes.base import BaseScheme
from repro.schemes.schedule import ProgressSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MultiDomainSystem

#: Capacity of the default optimized accounting table — also the value
#: cells advertise in their ``store_needs`` so populate solves exactly
#: the table the scheme will request.
DEFAULT_TABLE_CAPACITY = 48


@dataclass(frozen=True)
class RateTableKey:
    """The full identity of one memoized rate table.

    An explicit key (rather than ``lru_cache`` argument tuples) so the
    same table is one cache entry no matter how the call spells its
    arguments — ``get_rate_table(4000)`` and
    ``get_rate_table(4000, capacity=48)`` used to be *distinct*
    ``lru_cache`` entries, costing a full re-solve. ``worst_case`` keeps
    the unoptimized (capacity-1, ``R_max_0``-only) table from ever
    colliding with an optimized table's entry.
    """

    cooldown: int
    resolution_divisor: int = 16
    horizon_cooldowns: int = 4
    capacity: int = DEFAULT_TABLE_CAPACITY
    worst_case: bool = False


_RATE_TABLES: dict[RateTableKey, RmaxTable] = {}


def clear_rate_table_cache() -> None:
    """Drop every memoized table (test hook; also frees solver results)."""
    _RATE_TABLES.clear()


def get_rate_table(
    cooldown: int,
    resolution_divisor: int = 16,
    horizon_cooldowns: int = 4,
    capacity: int = DEFAULT_TABLE_CAPACITY,
) -> RmaxTable:
    """A process-wide memoized, fully materialized rate table.

    Computing the table runs the Dinkelbach solver once per entry
    (~0.1 s each); experiments share tables across scheme instances the
    way the paper's hardware would ship one precomputed table. When a
    precompute store is active the solved entries are also persisted and
    reloaded across processes — see :mod:`repro.harness.store`.
    """
    return _rate_table(
        RateTableKey(
            cooldown=cooldown,
            resolution_divisor=resolution_divisor,
            horizon_cooldowns=horizon_cooldowns,
            capacity=capacity,
        )
    )


def get_worst_case_rate_table(
    cooldown: int,
    resolution_divisor: int = 16,
    horizon_cooldowns: int = 4,
) -> RmaxTable:
    """The memoized capacity-1 table for unoptimized accounting.

    Keyed separately from the optimized tables (``worst_case=True``) so
    ``untangle-unopt`` never pollutes — or is served from — the
    optimized-table cache.
    """
    return _rate_table(
        RateTableKey(
            cooldown=cooldown,
            resolution_divisor=resolution_divisor,
            horizon_cooldowns=horizon_cooldowns,
            capacity=1,
            worst_case=True,
        )
    )


def _rate_table(key: RateTableKey, jobs: int = 1) -> RmaxTable:
    """Memoizer behind :func:`get_rate_table`: solve once per key.

    Order of consultation: process memo → precompute-store artifact
    (exact JSON round-trip of the solved entries, keyed by the full
    channel-model parameters) → Dinkelbach solves (parallelized over
    table levels when ``jobs > 1`` during store populate). The solved
    entries are exported back to the store so other processes — and
    future campaigns — skip the solve entirely.
    """
    table = _RATE_TABLES.get(key)
    if table is not None:
        return table
    model = default_channel_model(
        key.cooldown, key.resolution_divisor, key.horizon_cooldowns
    )
    table = RmaxTable(model, capacity=key.capacity)

    # The store import is lazy and optional: schemes must stay usable
    # without the harness (e.g. library users constructing one scheme).
    store = None
    try:
        from repro.harness.store import get_active_store, rmax_token

        store = get_active_store()
    except ImportError:  # pragma: no cover - harness always ships
        pass

    token = None
    if store is not None:
        token = rmax_token(
            model, key.capacity, table._solver_iterations, table._solver_seed
        )
        stored = store.rmax_entries(token)
        if stored is not None and table.preload(
            [RateEntry(**entry) for entry in stored]
        ):
            _RATE_TABLES[key] = table
            return table
        store.count_rmax_miss()

    if jobs > 1 and len(table.levels) > 1:
        _solve_levels_parallel(table, jobs)
    entries = table.entries()
    if store is not None and token is not None:
        store.put_rmax_entries(
            token, [dataclasses.asdict(entry) for entry in entries]
        )
    _RATE_TABLES[key] = table
    return table


def _solve_levels_parallel(table: RmaxTable, jobs: int) -> None:
    """Solve a table's levels across a process pool, filling it in place.

    Used only during store populate (before the engine's own workers
    fan out). Each solve is independent — the per-level solver seed is
    derived inside :func:`repro.core.rates.compute_entry` — so the
    result is bit-identical to the serial path. The solve counter is
    booked in this process since pool children's registries vanish.
    """
    import multiprocessing

    from repro.core.rates import _M_SOLVES

    pending = [level for level in table.levels if level not in table._entries]
    if not pending:
        return
    try:
        with multiprocessing.get_context().Pool(
            min(jobs, len(pending)), initializer=_pool_child_signals
        ) as pool:
            solved = pool.starmap(
                _solve_one_level,
                [
                    (
                        table.base_model,
                        level,
                        table._solver_iterations,
                        table._solver_seed,
                    )
                    for level in pending
                ],
            )
    except OSError:  # pragma: no cover - pool unavailable; solve serially
        return
    _M_SOLVES.inc(len(solved))
    table._entries.update((entry.maintains, entry) for entry in solved)


def _pool_child_signals() -> None:
    # Populate runs after the engine installs its SIGINT/SIGTERM
    # handlers, so pool children inherit them and would raise a noisy
    # KeyboardInterrupt when the pool terminates them. The parent owns
    # interrupt handling; children die quietly.
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_DFL)


def _solve_one_level(model, level, solver_iterations, solver_seed):
    return compute_entry(
        model,
        level,
        solver_iterations=solver_iterations,
        solver_seed=solver_seed,
    )


def populate_rate_table(
    cooldown: int,
    *,
    capacity: int = DEFAULT_TABLE_CAPACITY,
    worst_case: bool = False,
    jobs: int = 1,
) -> RmaxTable:
    """Pre-solve (or pre-load) the table a campaign's cells will request.

    Called by :meth:`repro.harness.store.PrecomputeStore.populate`
    before the engine fans out, so forked workers inherit the solved
    memo and spawned/respawned workers load the store artifact instead
    of re-running the solver. Mirrors exactly how the schemes key their
    tables: the optimized table is requested with the *schedule*
    cooldown (already rounded by :func:`default_channel_model`), the
    worst-case table with the raw profile cooldown — see
    :func:`repro.harness.experiment.make_scheme`.
    """
    if worst_case:
        return _rate_table(
            RateTableKey(cooldown=cooldown, capacity=1, worst_case=True),
            jobs=jobs,
        )
    rounded = default_channel_model(cooldown).cooldown
    return _rate_table(
        RateTableKey(cooldown=rounded, capacity=capacity), jobs=jobs
    )


def default_channel_model(
    cooldown: int,
    resolution_divisor: int = 16,
    horizon_cooldowns: int = 4,
) -> CovertChannelModel:
    """The evaluation's covert-channel model for a given cooldown.

    Resolution is ``T_c / resolution_divisor`` (the attacker's timing
    granularity relative to the cooldown) and the sender's duration
    horizon spans ``horizon_cooldowns`` cooldowns; the max rate is
    insensitive to the horizon beyond a few cooldowns because long
    durations are rate-inefficient (Section 5.3.1).
    """
    resolution = max(1, cooldown // resolution_divisor)
    cooldown = (cooldown // resolution) * resolution
    return CovertChannelModel(
        cooldown=cooldown,
        resolution=resolution,
        max_duration=horizon_cooldowns * cooldown,
        delay=uniform_delay(cooldown, resolution),
    )


class UntangleScheme(BaseScheme):
    """Progress-scheduled, annotation-aware dynamic partitioning."""

    name = "untangle"

    def __init__(
        self,
        arch: ArchConfig,
        schedule: ProgressSchedule,
        rmax_table: RmaxTable | None = None,
        *,
        monitor_window: int = 100_000,
        monitor_sampling_shift: int = 0,
        hysteresis: float = 0.0,
        leakage_threshold_bits: float | None = None,
        optimized_accounting: bool = True,
        table_capacity: int = DEFAULT_TABLE_CAPACITY,
        organization: str = "set",
    ):
        super().__init__(arch)
        self.schedule = schedule
        if rmax_table is None:
            if optimized_accounting:
                rmax_table = get_rate_table(
                    schedule.cooldown, capacity=table_capacity
                )
            else:
                rmax_table = get_worst_case_rate_table(schedule.cooldown)
        self.rmax_table = rmax_table
        self._monitor_window = monitor_window
        self._monitor_sampling_shift = monitor_sampling_shift
        self.allocator = GreedyHitMaximizer(
            arch.supported_partition_lines, arch.llc_lines, hysteresis
        )
        self.accountants = [
            LeakageAccountant(rmax_table, leakage_threshold_bits)
            for _ in range(arch.num_cores)
        ]
        self._targets = [schedule.first_target()] * arch.num_cores
        self._last_assessment: list[int | None] = [None] * arch.num_cores
        #: Capacity committed by assessments (may lead the physical sizes
        #: while delayed actions are in flight).
        self._committed = [arch.default_partition_lines] * arch.num_cores
        #: Debounce state: last assessment's allocator target per domain.
        #: A resize is taken only when two consecutive assessments agree —
        #: hysteresis against epoch noise. Pure function of monitor
        #: snapshots, so it preserves timing independence.
        self._last_targets: list[int | None] = [None] * arch.num_cores
        #: Monitored-access-rate estimates (accesses per retired public
        #: instruction), updated at each domain's own assessments. Used to
        #: normalize demand curves to a common per-N-instructions basis:
        #: the monitor window holds a fixed number of accesses, so an
        #: idle domain's stale window would otherwise look as demanding
        #: as a busy one's.
        self._access_rate: list[float | None] = [None] * arch.num_cores
        self._last_observed: list[int] = [0] * arch.num_cores
        self._organization = organization

    # ------------------------------------------------------------------
    def build(self, system: "MultiDomainSystem") -> None:
        monitors = [
            UMONMonitor(
                self.arch.supported_partition_lines,
                window=self._monitor_window,
                sampling_shift=self._monitor_sampling_shift,
                timing_independent=True,
            )
            for _ in range(self.arch.num_cores)
        ]
        # Construction-time principle check (Section 5.2): a
        # timing-dependent metric or time-based schedule is rejected.
        # Every per-core monitor is checked, not a representative one.
        for monitor in monitors:
            require_timing_independent_metric(monitor)
        require_progress_based_schedule(self.schedule)
        self._build_partitioned(
            system,
            monitors=monitors,
            monitor_respects_annotations=True,
            organization=self._organization,
        )

    # ------------------------------------------------------------------
    def progress_target(self, domain: int) -> int | None:
        return self._targets[domain]

    def on_progress(self, system: "MultiDomainSystem", domain: int, now: int) -> None:
        """One per-domain resizing assessment at an exact progress point."""
        assert self.llc is not None
        core = system.cores[domain]
        assessment_time = self.schedule.assessment_time(
            now, self._last_assessment[domain]
        )

        # Update this domain's access-rate estimate (accesses per public
        # instruction over the last epoch — a pure function of its
        # retired instruction stream).
        observed = self.monitors[domain].total_observed
        epoch_rate = (
            (observed - self._last_observed[domain])
            / self.schedule.instructions_per_assessment
        )
        previous_rate = self._access_rate[domain]
        self._access_rate[domain] = (
            epoch_rate
            if previous_rate is None
            else 0.5 * previous_rate + 0.5 * epoch_rate
        )
        self._last_observed[domain] = observed

        # Action heuristic: global hit-maximizing allocation over the
        # timing-independent monitor snapshots, normalized to expected
        # hits per N public instructions so domains compete on live
        # demand rather than window volume.
        curves = {}
        for d in range(self.arch.num_cores):
            curve = self.monitors[d].hits_per_size()
            in_window = max(self.monitors[d].epoch_accesses(), 1.0)
            rate = self._access_rate[d]
            if rate is None:
                weight = 1.0
            else:
                expected = rate * self.schedule.instructions_per_assessment
                weight = expected / in_window
            curves[d] = curve * weight
        allocation = self.allocator.allocate(curves)
        current = self._committed[domain]
        target = allocation.target_sizes[domain]
        new_size = current
        if target != current and target == self._last_targets[domain]:
            # Feasibility against *committed* capacity: decisions reserve
            # lines immediately even though the visible resize is delayed.
            committed_available = (
                self.allocator.total_lines - sum(self._committed) + current
            )
            new_size = self.allocator.feasible_size(
                target, current, committed_available
            )
        self._last_targets[domain] = target

        accountant = self.accountants[domain]
        if not accountant.resizing_allowed:
            # Budget exhausted: the victim may not resize any further
            # (Section 4) — performance may suffer, security does not.
            new_size = current

        action = ResizingAction(new_size=new_size, old_size=current)
        bits = accountant.on_assessment(assessment_time, action.is_visible)

        delay = self.schedule.draw_delay()
        apply_time = assessment_time + delay
        if action.is_visible:
            self._committed[domain] = new_size
            self.schedule_resize(apply_time, domain, new_size)
        self.record_assessment(system, domain, action, apply_time, bits)

        # Progress toward the next assessment restarts now (Figure 6).
        # The monitor window is NOT reset: it ages continuously over the
        # last M_w monitored accesses (Section 8's sliding window), so a
        # domain's demand curve is stable no matter when another domain's
        # staggered assessment samples it. The window contents remain a
        # pure function of the retired public access sequence.
        self._targets[domain] = self.schedule.next_target(core.public_retired)
        self._last_assessment[domain] = assessment_time

    # ------------------------------------------------------------------
    def accountant_report(self, domain: int):
        """The domain's leakage report (Section 7 accounting)."""
        return self.accountants[domain].report()
