"""The Untangle scheme (Section 5 of the paper; "Untangle" row of Table 4).

Construction follows the two design principles plus annotations:

* **Principle 1** — the utilization metric is the UMON monitor fed only
  with *retired, public* post-L1 accesses in program order
  (``timing_independent=True``; annotation filtering happens in
  :class:`repro.sim.hierarchy.DomainMemory`).
* **Principle 2** — assessments happen every ``N`` retired public
  instructions (:class:`repro.schemes.schedule.ProgressSchedule`), with a
  cooldown ``T_c`` (Mechanism 1) and a uniform random action delay
  (Mechanism 2).

Consequently the resizing *action sequence* is a deterministic function
of the public retired instruction sequence — zero action leakage — and
the only leakage is scheduling leakage, charged at runtime from the
precomputed :class:`~repro.core.rates.RmaxTable` using the
consecutive-Maintain optimization of Sections 5.3.4 and 7.

Both principles are mechanically checked at construction via
:func:`repro.core.principles.require_untangle_compliant`; building an
Untangle scheme over a timing-dependent metric raises
:class:`~repro.errors.PrincipleViolation`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.core.accountant import LeakageAccountant
from repro.core.actions import ResizingAction
from repro.core.covert import CovertChannelModel, uniform_delay
from repro.core.principles import require_untangle_compliant
from repro.core.rates import RmaxTable, worst_case_table
from repro.monitor.umon import UMONMonitor
from repro.schemes.allocation import GreedyHitMaximizer
from repro.schemes.base import BaseScheme
from repro.schemes.schedule import ProgressSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MultiDomainSystem


@lru_cache(maxsize=32)
def get_rate_table(
    cooldown: int,
    resolution_divisor: int = 16,
    horizon_cooldowns: int = 4,
    capacity: int = 48,
) -> RmaxTable:
    """A process-wide cached, fully materialized rate table.

    Computing the table runs the Dinkelbach solver once per entry
    (~0.1 s each); experiments share tables across scheme instances the
    way the paper's hardware would ship one precomputed table.
    """
    model = default_channel_model(cooldown, resolution_divisor, horizon_cooldowns)
    table = RmaxTable(model, capacity=capacity)
    table.entries()
    return table


def default_channel_model(
    cooldown: int,
    resolution_divisor: int = 16,
    horizon_cooldowns: int = 4,
) -> CovertChannelModel:
    """The evaluation's covert-channel model for a given cooldown.

    Resolution is ``T_c / resolution_divisor`` (the attacker's timing
    granularity relative to the cooldown) and the sender's duration
    horizon spans ``horizon_cooldowns`` cooldowns; the max rate is
    insensitive to the horizon beyond a few cooldowns because long
    durations are rate-inefficient (Section 5.3.1).
    """
    resolution = max(1, cooldown // resolution_divisor)
    cooldown = (cooldown // resolution) * resolution
    return CovertChannelModel(
        cooldown=cooldown,
        resolution=resolution,
        max_duration=horizon_cooldowns * cooldown,
        delay=uniform_delay(cooldown, resolution),
    )


class UntangleScheme(BaseScheme):
    """Progress-scheduled, annotation-aware dynamic partitioning."""

    name = "untangle"

    def __init__(
        self,
        arch: ArchConfig,
        schedule: ProgressSchedule,
        rmax_table: RmaxTable | None = None,
        *,
        monitor_window: int = 100_000,
        monitor_sampling_shift: int = 0,
        hysteresis: float = 0.0,
        leakage_threshold_bits: float | None = None,
        optimized_accounting: bool = True,
        table_capacity: int = 48,
        organization: str = "set",
    ):
        super().__init__(arch)
        self.schedule = schedule
        if rmax_table is None:
            if optimized_accounting:
                rmax_table = get_rate_table(
                    schedule.cooldown, capacity=table_capacity
                )
            else:
                rmax_table = worst_case_table(
                    default_channel_model(schedule.cooldown)
                )
        self.rmax_table = rmax_table
        self._monitor_window = monitor_window
        self._monitor_sampling_shift = monitor_sampling_shift
        self.allocator = GreedyHitMaximizer(
            arch.supported_partition_lines, arch.llc_lines, hysteresis
        )
        self.accountants = [
            LeakageAccountant(rmax_table, leakage_threshold_bits)
            for _ in range(arch.num_cores)
        ]
        self._targets = [schedule.first_target()] * arch.num_cores
        self._last_assessment: list[int | None] = [None] * arch.num_cores
        #: Capacity committed by assessments (may lead the physical sizes
        #: while delayed actions are in flight).
        self._committed = [arch.default_partition_lines] * arch.num_cores
        #: Debounce state: last assessment's allocator target per domain.
        #: A resize is taken only when two consecutive assessments agree —
        #: hysteresis against epoch noise. Pure function of monitor
        #: snapshots, so it preserves timing independence.
        self._last_targets: list[int | None] = [None] * arch.num_cores
        #: Monitored-access-rate estimates (accesses per retired public
        #: instruction), updated at each domain's own assessments. Used to
        #: normalize demand curves to a common per-N-instructions basis:
        #: the monitor window holds a fixed number of accesses, so an
        #: idle domain's stale window would otherwise look as demanding
        #: as a busy one's.
        self._access_rate: list[float | None] = [None] * arch.num_cores
        self._last_observed: list[int] = [0] * arch.num_cores
        self._organization = organization

    # ------------------------------------------------------------------
    def build(self, system: "MultiDomainSystem") -> None:
        monitors = [
            UMONMonitor(
                self.arch.supported_partition_lines,
                window=self._monitor_window,
                sampling_shift=self._monitor_sampling_shift,
                timing_independent=True,
            )
            for _ in range(self.arch.num_cores)
        ]
        # Construction-time principle check (Section 5.2): a
        # timing-dependent metric or time-based schedule is rejected.
        require_untangle_compliant(monitors[0], self.schedule)
        self._build_partitioned(
            system,
            monitors=monitors,
            monitor_respects_annotations=True,
            organization=self._organization,
        )

    # ------------------------------------------------------------------
    def progress_target(self, domain: int) -> int | None:
        return self._targets[domain]

    def on_progress(self, system: "MultiDomainSystem", domain: int, now: int) -> None:
        """One per-domain resizing assessment at an exact progress point."""
        assert self.llc is not None
        core = system.cores[domain]
        assessment_time = self.schedule.assessment_time(
            now, self._last_assessment[domain]
        )

        # Update this domain's access-rate estimate (accesses per public
        # instruction over the last epoch — a pure function of its
        # retired instruction stream).
        observed = self.monitors[domain].total_observed
        epoch_rate = (
            (observed - self._last_observed[domain])
            / self.schedule.instructions_per_assessment
        )
        previous_rate = self._access_rate[domain]
        self._access_rate[domain] = (
            epoch_rate
            if previous_rate is None
            else 0.5 * previous_rate + 0.5 * epoch_rate
        )
        self._last_observed[domain] = observed

        # Action heuristic: global hit-maximizing allocation over the
        # timing-independent monitor snapshots, normalized to expected
        # hits per N public instructions so domains compete on live
        # demand rather than window volume.
        curves = {}
        for d in range(self.arch.num_cores):
            curve = self.monitors[d].hits_per_size()
            in_window = max(self.monitors[d].epoch_accesses(), 1.0)
            rate = self._access_rate[d]
            if rate is None:
                weight = 1.0
            else:
                expected = rate * self.schedule.instructions_per_assessment
                weight = expected / in_window
            curves[d] = curve * weight
        allocation = self.allocator.allocate(curves)
        current = self._committed[domain]
        target = allocation.target_sizes[domain]
        new_size = current
        if target != current and target == self._last_targets[domain]:
            # Feasibility against *committed* capacity: decisions reserve
            # lines immediately even though the visible resize is delayed.
            committed_available = (
                self.allocator.total_lines - sum(self._committed) + current
            )
            new_size = self.allocator.feasible_size(
                target, current, committed_available
            )
        self._last_targets[domain] = target

        accountant = self.accountants[domain]
        if not accountant.resizing_allowed:
            # Budget exhausted: the victim may not resize any further
            # (Section 4) — performance may suffer, security does not.
            new_size = current

        action = ResizingAction(new_size=new_size, old_size=current)
        bits = accountant.on_assessment(assessment_time, action.is_visible)

        delay = self.schedule.draw_delay()
        apply_time = assessment_time + delay
        if action.is_visible:
            self._committed[domain] = new_size
            self.schedule_resize(apply_time, domain, new_size)
        self.record_assessment(system, domain, action, apply_time, bits)

        # Progress toward the next assessment restarts now (Figure 6).
        # The monitor window is NOT reset: it ages continuously over the
        # last M_w monitored accesses (Section 8's sliding window), so a
        # domain's demand curve is stable no matter when another domain's
        # staggered assessment samples it. The window contents remain a
        # pure function of the retired public access sequence.
        self._targets[domain] = self.schedule.next_target(core.public_retired)
        self._last_assessment[domain] = assessment_time

    # ------------------------------------------------------------------
    def accountant_report(self, domain: int):
        """The domain's leakage report (Section 7 accounting)."""
        return self.accountants[domain].report()
