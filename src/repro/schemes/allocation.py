"""Global partition-size allocation (the action heuristic of Section 7).

"During a resizing assessment, the monitor picks the size for each domain
that maximizes the number of LLC hits across all domains."

This is UMON's *lookahead* algorithm (Qureshi & Patt, MICRO'06), adapted
to a discrete size alphabet: repeatedly grant the single upgrade — from a
domain's current level to *any* higher level — with the highest marginal
utility (hits gained per line spent). Considering multi-level jumps is
essential because hit curves are not generally concave: a scan-dominated
workload gains nothing until its partition covers the whole working set,
then gains everything at once; single-step greedy would starve it.

An optional hysteresis threshold suppresses upgrades whose utility is
negligible, trading a sliver of hit rate for fewer visible resizes (an
ablation knob).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class AllocationResult:
    """Target sizes chosen by the allocator."""

    target_sizes: dict[int, int]
    total_allocated: int
    total_hits_estimate: float


class GreedyHitMaximizer:
    """Lookahead marginal-utility allocator over a discrete size alphabet.

    Parameters
    ----------
    candidate_sizes:
        The supported partition sizes in lines, ascending (all domains
        share one alphabet, per Table 3).
    total_lines:
        LLC capacity to distribute.
    hysteresis:
        Minimum hits-per-line marginal utility for an upgrade to be
        granted. Zero reproduces pure hit maximization.
    """

    def __init__(
        self,
        candidate_sizes: tuple[int, ...] | list[int],
        total_lines: int,
        hysteresis: float = 0.0,
    ):
        sizes = list(candidate_sizes)
        if not sizes or sizes != sorted(set(sizes)):
            raise ConfigurationError("candidate sizes must be unique and ascending")
        if total_lines < sizes[0]:
            raise ConfigurationError("LLC smaller than the smallest partition")
        if hysteresis < 0:
            raise ConfigurationError("hysteresis must be non-negative")
        self._sizes = sizes
        self._total = total_lines
        self._hysteresis = hysteresis

    @property
    def candidate_sizes(self) -> list[int]:
        return list(self._sizes)

    @property
    def total_lines(self) -> int:
        return self._total

    # ------------------------------------------------------------------
    def _best_jump(
        self, curve: np.ndarray, level: int, budget: int
    ) -> tuple[float, int, float] | None:
        """Best upgrade from ``level`` to any affordable higher level.

        Returns ``(utility, new_level, gain)`` or ``None``. This is the
        lookahead step: utility is evaluated against every reachable
        level, not just the next one.
        """
        sizes = self._sizes
        base_size = sizes[level]
        base_hits = float(curve[level])
        best = None
        for k in range(level + 1, len(sizes)):
            cost = sizes[k] - base_size
            if cost > budget:
                break
            gain = float(curve[k]) - base_hits
            if gain <= 0:
                continue
            utility = gain / cost
            if best is None or utility > best[0]:
                best = (utility, k, gain)
        return best

    def allocate(self, hit_curves: dict[int, np.ndarray]) -> AllocationResult:
        """Choose per-domain target sizes maximizing estimated total hits.

        ``hit_curves[d][k]`` is domain ``d``'s estimated hits at size
        ``candidate_sizes[k]`` over the monitor window. Every domain is
        guaranteed the smallest size; upgrades are granted by lookahead
        marginal utility until capacity or utility is exhausted.
        """
        sizes = self._sizes
        for domain, curve in hit_curves.items():
            if len(curve) != len(sizes):
                raise ConfigurationError(
                    f"hit curve of domain {domain} has {len(curve)} entries, "
                    f"expected {len(sizes)}"
                )
        if len(hit_curves) * sizes[0] > self._total:
            raise ConfigurationError(
                f"{len(hit_curves)} domains cannot each get the minimum "
                f"{sizes[0]} lines out of {self._total}"
            )

        level = {domain: 0 for domain in hit_curves}
        budget = self._total - len(hit_curves) * sizes[0]
        total_hits = sum(float(curve[0]) for curve in hit_curves.values())

        while True:
            best_domain = None
            best_utility = self._hysteresis
            best_level = 0
            best_gain = 0.0
            for domain, curve in hit_curves.items():
                jump = self._best_jump(curve, level[domain], budget)
                if jump is None:
                    continue
                utility, new_level, gain = jump
                if utility > best_utility:
                    best_domain = domain
                    best_utility = utility
                    best_level = new_level
                    best_gain = gain
            if best_domain is None:
                break
            budget -= sizes[best_level] - sizes[level[best_domain]]
            level[best_domain] = best_level
            total_hits += best_gain

        targets = {domain: sizes[k] for domain, k in level.items()}
        return AllocationResult(
            target_sizes=targets,
            total_allocated=self._total - budget,
            total_hits_estimate=total_hits,
        )

    def feasible_size(self, target: int, current: int, available: int) -> int:
        """Clamp a domain's target to what capacity currently allows.

        ``available`` is the domain's current size plus free LLC capacity.
        Used when domains assess at different times (Untangle): a domain
        moves to its global target if it fits, else to the largest
        supported size that does.
        """
        if target <= available:
            return target
        feasible = [s for s in self._sizes if s <= available]
        if not feasible:
            return current
        return feasible[-1]
