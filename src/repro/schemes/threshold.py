"""Threshold-based action heuristic with relative actions.

Table 2 lists relative resizing actions (Expand / Shrink / Maintain) and
threshold comparison as a common action heuristic — Jumanji compares
tail latency to static thresholds, SecSMT counts "full" events. This
module provides that scheme style under Untangle's principles:

* the metric is the timing-independent *footprint* of Section 5.2 (the
  unique lines among the last N retired public memory instructions);
* the schedule is progress-based with cooldown and random delays;
* the action moves one step up the size alphabet when the footprint
  exceeds ``expand_fraction`` of the current partition, one step down
  when it falls below ``shrink_fraction`` of the next smaller size, and
  Maintains otherwise.

Because the heuristic needs no global allocator it suits single-domain
resources (and is the natural fit for the TLB example of Section 6.3).
Leakage accounting is identical to the main Untangle scheme: an
``RmaxTable`` plus a :class:`~repro.core.accountant.LeakageAccountant`
per domain.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.config import ArchConfig
from repro.core.accountant import LeakageAccountant
from repro.core.actions import ResizingAction
from repro.core.principles import (
    require_progress_based_schedule,
    require_timing_independent_metric,
)
from repro.core.rates import RmaxTable
from repro.errors import ConfigurationError
from repro.monitor.footprint import FootprintMetric
from repro.schemes.base import BaseScheme
from repro.schemes.schedule import ProgressSchedule
from repro.schemes.tiered import TierAssignment, TieredAccountingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MultiDomainSystem


class FootprintMonitorAdapter:
    """Adapts :class:`FootprintMetric` to the hierarchy's monitor sink."""

    def __init__(self, window: int):
        self.metric = FootprintMetric(window)
        self.timing_independent = True

    def observe(self, line_addr: int) -> None:
        self.metric.observe(line_addr)

    @property
    def value(self) -> int:
        return self.metric.value


class ThresholdScheme(BaseScheme):
    """Expand/Shrink/Maintain by footprint thresholds, Untangle-compliant."""

    name = "threshold"

    def __init__(
        self,
        arch: ArchConfig,
        schedule: ProgressSchedule,
        rmax_table: RmaxTable,
        *,
        footprint_window: int = 10_000,
        expand_fraction: float = 0.9,
        shrink_fraction: float = 0.6,
        leakage_threshold_bits: float | None = None,
        tiers: Sequence[int] | None = None,
    ):
        super().__init__(arch)
        if not 0.0 < shrink_fraction < expand_fraction <= 1.5:
            raise ConfigurationError(
                "need 0 < shrink_fraction < expand_fraction"
            )
        self.schedule = schedule
        self.rmax_table = rmax_table
        self._footprint_window = footprint_window
        self.expand_fraction = expand_fraction
        self.shrink_fraction = shrink_fraction
        self.accountants = [
            LeakageAccountant(rmax_table, leakage_threshold_bits)
            for _ in range(arch.num_cores)
        ]
        self._targets = [schedule.first_target()] * arch.num_cores
        self._last_assessment: list[int | None] = [None] * arch.num_cores
        self._committed = [arch.default_partition_lines] * arch.num_cores
        #: Section 6.4 tiered accounting: resizes exchanging capacity
        #: only with strictly-higher tiers, with no peer or lower-tier
        #: observer, are not charged. ``None`` keeps the peer-to-peer
        #: base model (every visible resize charges).
        self.tier_policy: TieredAccountingPolicy | None = None
        if tiers is not None:
            tier_tuple = tuple(int(t) for t in tiers)
            if len(tier_tuple) != arch.num_cores:
                raise ConfigurationError(
                    f"need one tier per domain: got {len(tier_tuple)} "
                    f"tiers for {arch.num_cores} domains"
                )
            self.tier_policy = TieredAccountingPolicy(
                TierAssignment(tier_tuple)
            )

    # ------------------------------------------------------------------
    def build(self, system: "MultiDomainSystem") -> None:
        monitors = [
            FootprintMonitorAdapter(self._footprint_window)
            for _ in range(self.arch.num_cores)
        ]
        # Every per-core monitor is checked, not a representative one:
        # a subclass (or future edit) swapping in a non-compliant
        # monitor for some domain must fail construction, not just
        # domain 0.
        for monitor in monitors:
            require_timing_independent_metric(monitor)
        require_progress_based_schedule(self.schedule)
        self._build_partitioned(
            system, monitors=monitors, monitor_respects_annotations=True
        )

    # ------------------------------------------------------------------
    def decide(self, footprint: int, current: int) -> int:
        """The pure action heuristic: next size from footprint and size.

        Exposed separately so tests can exercise it exhaustively.
        """
        if footprint > self.expand_fraction * current:
            return self.alphabet.step_toward(current, self.alphabet.max_size)
        index = self.alphabet.sizes.index(current)
        if index > 0:
            smaller = self.alphabet.sizes[index - 1]
            if footprint < self.shrink_fraction * smaller:
                return smaller
        return current

    def progress_target(self, domain: int) -> int | None:
        return self._targets[domain]

    def on_progress(self, system: "MultiDomainSystem", domain: int, now: int) -> None:
        assert self.llc is not None
        core = system.cores[domain]
        assessment_time = self.schedule.assessment_time(
            now, self._last_assessment[domain]
        )
        current = self._committed[domain]
        new_size = self.decide(self.monitors[domain].value, current)
        # Capacity check against committed sizes (as in UntangleScheme).
        committed_available = (
            self.llc.total_lines - sum(self._committed) + current
        )
        if new_size > committed_available:
            new_size = current

        accountant = self.accountants[domain]
        if not accountant.resizing_allowed:
            new_size = current
        action = ResizingAction(new_size=new_size, old_size=current)
        charged = action.is_visible
        if charged and self.tier_policy is not None:
            # The heuristic exchanges capacity with the shared pool, so
            # every other domain is conservatively a counterparty; the
            # policy charges unless all of them sit strictly higher
            # with no peer/lower-tier observer left (Section 6.4). An
            # uncharged resize is booked as a Maintain: the observers
            # it is visible to were entitled to the information.
            others = [
                d for d in range(self.arch.num_cores) if d != domain
            ]
            charged = self.tier_policy.chargeable(domain, others)
        bits = accountant.on_assessment(assessment_time, charged)

        apply_time = assessment_time + self.schedule.draw_delay()
        if action.is_visible:
            self._committed[domain] = new_size
            self.schedule_resize(apply_time, domain, new_size)
        self.record_assessment(system, domain, action, apply_time, bits)
        self._targets[domain] = self.schedule.next_target(core.public_retired)
        self._last_assessment[domain] = assessment_time
