"""The Time scheme: conventional dynamic partitioning (Table 4).

Time models prior dynamic schemes (UMON, Jigsaw, Jumanji, SecSMT —
Table 1): resizing assessments at a fixed wall-clock interval, a
utilization metric that includes every access (no annotations), and
immediate application of the chosen actions.

Its leakage is accounted the way prior work must: because the action
choice at each assessment can depend on secrets (through demand *and*
timing — all four edges of Figure 2), every assessment is charged the
conservative ``log2 |A|`` bits (Sections 3.3 and 8). With the paper's
nine supported sizes that is ~3.17 bits per assessment for every
workload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.core.accountant import ConservativeAccountant
from repro.core.actions import ResizingAction
from repro.monitor.metrics import TimingDependentView
from repro.monitor.umon import UMONMonitor
from repro.schemes.allocation import GreedyHitMaximizer
from repro.schemes.base import BaseScheme
from repro.schemes.schedule import TimeSchedule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import MultiDomainSystem


class TimeScheme(BaseScheme):
    """Fixed-interval dynamic partitioning with conventional accounting."""

    name = "time"

    def __init__(
        self,
        arch: ArchConfig,
        interval: int,
        monitor_window: int = 100_000,
        monitor_sampling_shift: int = 0,
        hysteresis: float = 0.0,
        leakage_threshold_bits: float | None = None,
    ):
        super().__init__(arch)
        self.schedule = TimeSchedule(interval)
        self._monitor_window = monitor_window
        self._monitor_sampling_shift = monitor_sampling_shift
        self.allocator = GreedyHitMaximizer(
            arch.supported_partition_lines, arch.llc_lines, hysteresis
        )
        self.accountants = [
            ConservativeAccountant(len(self.alphabet), leakage_threshold_bits)
            for _ in range(arch.num_cores)
        ]
        self._next_assessment = self.schedule.interval
        #: Debounce state: last assessment's target per domain. A resize
        #: is taken only when two consecutive assessments agree on the
        #: target — hysteresis against chasing epoch noise.
        self._last_targets: list[int | None] = [None] * arch.num_cores

    # ------------------------------------------------------------------
    def build(self, system: "MultiDomainSystem") -> None:
        monitors = [
            TimingDependentView(
                UMONMonitor(
                    self.arch.supported_partition_lines,
                    window=self._monitor_window,
                    sampling_shift=self._monitor_sampling_shift,
                    timing_independent=True,
                )
            )
            for _ in range(self.arch.num_cores)
        ]
        # Conventional schemes have no annotations: the monitor sees every
        # access, secret-dependent or not.
        self._build_partitioned(
            system, monitors=monitors, monitor_respects_annotations=False
        )

    # ------------------------------------------------------------------
    def on_quantum(self, system: "MultiDomainSystem", now: int) -> None:
        while now >= self._next_assessment:
            self._assess_all(system, self._next_assessment)
            self._next_assessment = self.schedule.next_time(self._next_assessment)

    def _assess_all(self, system: "MultiDomainSystem", now: int) -> None:
        """One global assessment: re-allocate every domain at once."""
        assert self.llc is not None
        curves = {
            domain: self.monitors[domain].hits_per_size()
            for domain in range(self.arch.num_cores)
        }
        result = self.allocator.allocate(curves)
        # Shrinks first so expands always fit the capacity invariant.
        order = sorted(
            range(self.arch.num_cores),
            key=lambda d: result.target_sizes[d] - self.llc.size_of(d),
        )
        for domain in order:
            old = self.llc.size_of(domain)
            candidate = result.target_sizes[domain]
            new = old
            if candidate != old and candidate == self._last_targets[domain]:
                new = candidate
            self._last_targets[domain] = candidate
            if new != old:
                # Debounce can mix old sizes with new targets; clamp
                # expands to the capacity actually free right now.
                new = self.allocator.feasible_size(
                    new, old, self.llc.available_for(domain)
                )
            accountant = self.accountants[domain]
            if not accountant.resizing_allowed:
                new = old
            if new != old:
                self.llc.resize(domain, new)
            action = ResizingAction(new_size=new, old_size=old)
            bits = accountant.on_assessment(now, action.is_visible)
            self.record_assessment(system, domain, action, now, bits)
            # Per-interval epoch counts, like UMON: comparable across
            # domains because Time assesses all domains simultaneously.
            self.monitors[domain].reset_window()
