"""Resizing schedules (Table 2, third component; Section 5.2 Principle 2).

* :class:`TimeSchedule` — assess at fixed wall-clock intervals. Used by
  prior schemes (UMON every 5M cycles, Jigsaw every 50M, Jumanji every
  100 ms, SecSMT every 100K — Table 1) and by the Time baseline here.
* :class:`ProgressSchedule` — assess every ``N`` retired public
  instructions, with a cooldown ``T_c`` enforcing a minimum time between
  consecutive assessments (Mechanism 1) and a random per-action delay
  ``delta`` (Mechanism 2). This is Untangle's schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.info.distributions import DiscreteDistribution


@dataclass(frozen=True)
class TimeSchedule:
    """Fixed-interval schedule: assessments at ``interval, 2*interval, ...``."""

    interval: int

    #: Principle 2 compliance flag (checked by repro.core.principles).
    progress_based = False

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigurationError("assessment interval must be >= 1 cycle")

    def next_time(self, last_time: int) -> int:
        """Time of the assessment following one at ``last_time``."""
        return last_time + self.interval


class ProgressSchedule:
    """Progress-based schedule with cooldown and random action delays.

    Parameters
    ----------
    instructions_per_assessment:
        ``N``: public (progress-counted) retired instructions between
        consecutive assessments.
    cooldown:
        ``T_c`` in cycles: minimum time between consecutive assessments.
        The schedule clamps assessment times to honor it even if the core
        retires ``N`` instructions faster (Section 5.3.2, Mechanism 1).
    delay:
        Distribution of the random action delay ``delta`` (Mechanism 2).
        ``None`` means no delay.
    seed:
        Seed of the per-scheme delay RNG. Delays are the *only* random
        element of an Untangle scheme, and they never influence which
        action is chosen — only when it is applied.
    """

    progress_based = True

    def __init__(
        self,
        instructions_per_assessment: int,
        cooldown: int,
        delay: DiscreteDistribution | None = None,
        seed: int = 0,
    ):
        if instructions_per_assessment < 1:
            raise ConfigurationError("need at least one instruction per assessment")
        if cooldown < 0:
            raise ConfigurationError("cooldown must be non-negative")
        self.instructions_per_assessment = instructions_per_assessment
        self.cooldown = cooldown
        self.delay = delay
        self._rng = np.random.default_rng(seed)
        if delay is not None:
            self._delay_values = [int(v) for v in delay.support]
            self._delay_probs = [delay.probability(v) for v in self._delay_values]
        else:
            self._delay_values = [0]
            self._delay_probs = [1.0]

    def first_target(self) -> int:
        """Public-progress count of the first assessment."""
        return self.instructions_per_assessment

    def next_target(self, progress_at_assessment: int) -> int:
        """Progress count of the next assessment.

        Counting restarts from the progress at the current assessment
        ("right after Assessment i is made, we start counting progress
        towards Assessment i+1", Section 5.3.2).
        """
        return progress_at_assessment + self.instructions_per_assessment

    def assessment_time(self, reached_at: int, last_assessment: int | None) -> int:
        """Actual assessment time honoring the cooldown."""
        if last_assessment is None:
            return reached_at
        return max(reached_at, last_assessment + self.cooldown)

    def draw_delay(self) -> int:
        """Sample one random action delay ``delta``."""
        if len(self._delay_values) == 1:
            return self._delay_values[0]
        index = self._rng.choice(len(self._delay_values), p=self._delay_probs)
        return self._delay_values[int(index)]
