"""Tiered security model extension (Section 6.4 of the paper).

Untangle's base threat model is peer-to-peer: every domain mutually
distrusts every other, and every visible resize of a domain is charged
against that domain's budget. Section 6.4 sketches an extension to a
*tiered* lattice: information may flow from a lower tier ``L`` to a
higher tier ``H`` but not back. Consequently:

* a resize in which ``L`` claims capacity from (or frees capacity to)
  strictly-higher-tier domains reveals nothing ``H`` was not allowed to
  learn, and is **not charged** against ``L``'s budget;
* resizes observable by peers or by *lower* tiers are charged normally;
* the residual caveat the paper notes — ``L`` observing ``H`` through
  timing changes caused by ``H``'s own resource fluctuations — is
  covered by charging ``H`` for actions visible to lower tiers.

:class:`TieredAccountingPolicy` encapsulates this chargeability logic;
it layers on top of the normal per-domain accountants, and the tests
exercise the full matrix of tier relationships.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TierAssignment:
    """Security tier of every domain (higher number = more trusted)."""

    tiers: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ConfigurationError("need at least one domain")
        if any(t < 0 for t in self.tiers):
            raise ConfigurationError("tiers must be non-negative")

    def tier_of(self, domain: int) -> int:
        return self.tiers[domain]

    def peers_of(self, domain: int) -> list[int]:
        """Domains at the same tier (excluding the domain itself)."""
        tier = self.tiers[domain]
        return [
            d for d, t in enumerate(self.tiers) if t == tier and d != domain
        ]

    def lower_than(self, domain: int) -> list[int]:
        """Domains at strictly lower tiers (they must learn nothing)."""
        tier = self.tiers[domain]
        return [d for d, t in enumerate(self.tiers) if t < tier]

    def strictly_higher(self, domain: int) -> list[int]:
        tier = self.tiers[domain]
        return [d for d, t in enumerate(self.tiers) if t > tier]


class TieredAccountingPolicy:
    """Decides which resizes are chargeable under a tier lattice."""

    def __init__(self, assignment: TierAssignment):
        self.assignment = assignment

    def observers_of(self, actor: int, counterparties: list[int]) -> list[int]:
        """Domains whose view of this resize constitutes leakage.

        A resize by ``actor`` exchanging capacity with ``counterparties``
        is observable (via partition-size probing) by the counterparties
        and, indirectly, by anyone sharing the structure. Leakage only
        *counts* toward the budget for observers that are peers of or
        lower-tier than the actor — flows upward are permitted.
        """
        actor_tier = self.assignment.tier_of(actor)
        observers = []
        for domain in range(len(self.assignment.tiers)):
            if domain == actor:
                continue
            if self.assignment.tier_of(domain) <= actor_tier:
                observers.append(domain)
        return observers

    def chargeable(self, actor: int, counterparties: list[int]) -> bool:
        """Whether the actor's budget is charged for this resize.

        Free exactly when the capacity moves only between the actor and
        strictly-higher-tier domains AND no peer or lower-tier domain
        exists to observe the size change by probing ("program L can
        take resizing actions that claim resources from or free
        resources to H without counting towards the leakage thresholds",
        Section 6.4).
        """
        return self.charge_factor(actor, counterparties) > 0.0

    def charge_factor(self, actor: int, counterparties: list[int]) -> float:
        """1.0 for chargeable resizes, 0.0 for free upward flows."""
        actor_tier = self.assignment.tier_of(actor)
        # Counterparties at or below the actor's tier always charge.
        if any(
            self.assignment.tier_of(c) <= actor_tier for c in counterparties
        ):
            return 1.0
        # All counterparties are higher-tier. If some *other* peer or
        # lower-tier domain could still observe the size change by
        # probing, the action remains chargeable; with none, it is free.
        peers_or_lower = [
            d
            for d in range(len(self.assignment.tiers))
            if d != actor and self.assignment.tier_of(d) <= actor_tier
        ]
        return 1.0 if peers_or_lower else 0.0
