"""Partitioning schemes: the four configurations of Table 4 plus plumbing."""

from repro.schemes.allocation import AllocationResult, GreedyHitMaximizer
from repro.schemes.base import BaseScheme
from repro.schemes.schedule import ProgressSchedule, TimeSchedule
from repro.schemes.shared import SharedScheme
from repro.schemes.static import StaticScheme
from repro.schemes.threshold import ThresholdScheme
from repro.schemes.tiered import TierAssignment, TieredAccountingPolicy
from repro.schemes.timebased import TimeScheme
from repro.schemes.untangle import UntangleScheme, default_channel_model

__all__ = [
    "BaseScheme",
    "StaticScheme",
    "SharedScheme",
    "TimeScheme",
    "UntangleScheme",
    "ThresholdScheme",
    "TierAssignment",
    "TieredAccountingPolicy",
    "default_channel_model",
    "TimeSchedule",
    "ProgressSchedule",
    "GreedyHitMaximizer",
    "AllocationResult",
]
