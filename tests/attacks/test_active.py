"""Tests for the active-attacker artifacts."""

import numpy as np
import pytest

from repro.attacks.active import (
    recharge_unoptimized,
    squeezing_workload,
)
from repro.core.rates import worst_case_table


class TestSqueezingWorkload:
    def test_stream_length(self):
        stream, config = squeezing_workload(2_000, working_set_lines=256)
        assert stream.length == pytest.approx(2_000, rel=0.2)
        assert config.slice_instructions == stream.length

    def test_pulses_alternate_with_idle(self):
        stream, _ = squeezing_workload(
            4_000, working_set_lines=128, pulse_instructions=500
        )
        mem_mask = stream.addresses >= 0
        # There must be whole idle regions with no memory traffic.
        halves = np.array_split(mem_mask, 8)
        densities = [h.mean() for h in halves]
        assert min(densities) == 0.0
        assert max(densities) > 0.3

    def test_large_working_set(self):
        stream, _ = squeezing_workload(2_000, working_set_lines=1024)
        addresses = stream.addresses[stream.addresses >= 0]
        assert len(np.unique(addresses)) > 200

    def test_deterministic(self):
        a, _ = squeezing_workload(1_000, 64, seed=5)
        b, _ = squeezing_workload(1_000, 64, seed=5)
        assert np.array_equal(a.addresses, b.addresses)


class TestRecharge:
    def test_empty_timeline(self, small_channel_model):
        worst = worst_case_table(small_channel_model, solver_iterations=100)
        result = recharge_unoptimized([], 1.0, worst)
        assert result.assessments == 0
        assert result.unoptimized_bits == 0.0

    def test_recharge_exceeds_optimized(
        self, small_channel_model, small_rate_table
    ):
        """Worst-case pricing dominates Maintain-optimized pricing."""
        from repro.core.accountant import LeakageAccountant

        worst = worst_case_table(small_channel_model, solver_iterations=100)
        cooldown = small_rate_table.cooldown
        times = [cooldown * (i + 1) for i in range(10)]
        accountant = LeakageAccountant(small_rate_table)
        for i, t in enumerate(times):
            accountant.on_assessment(t, visible=(i == 9))
        result = recharge_unoptimized(times, accountant.total_bits, worst)
        assert result.unoptimized_bits > result.optimized_bits
        assert (
            result.unoptimized_bits_per_assessment
            > result.optimized_bits_per_assessment
        )

    def test_per_assessment_math(self, small_channel_model):
        worst = worst_case_table(small_channel_model, solver_iterations=100)
        times = [32, 64]
        result = recharge_unoptimized(times, 0.1, worst)
        expected = worst.bits_for_interval(0, 32) * 2
        assert result.unoptimized_bits == pytest.approx(expected)
        assert result.assessments == 2
