"""Empirical covert-channel simulation vs. the certified bound."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.channel_sim import CovertChannelSimulator
from repro.core.covert import CovertChannelModel, no_delay, uniform_delay
from repro.core.dinkelbach import solve_rmax
from repro.errors import ChannelModelError


class TestSimulator:
    def test_noiseless_channel_decodes_perfectly(self):
        model = CovertChannelModel(
            cooldown=32, resolution=4, max_duration=64, delay=no_delay()
        )
        simulator = CovertChannelSimulator(model, seed=0)
        result = simulator.transmit(model.uniform_input(), 400)
        assert result.decode_accuracy == 1.0
        # Empirical information approaches H(X) = log2 |X|.
        assert result.empirical_information_bits == pytest.approx(
            np.log2(model.num_inputs), abs=0.4
        )

    def test_noisy_channel_confuses_receiver(self, small_channel_model):
        simulator = CovertChannelSimulator(small_channel_model, seed=1)
        result = simulator.transmit(small_channel_model.uniform_input(), 400)
        assert result.decode_accuracy < 1.0

    def test_zero_transmissions_rejected(self, small_channel_model):
        simulator = CovertChannelSimulator(small_channel_model)
        with pytest.raises(ChannelModelError):
            simulator.transmit(small_channel_model.uniform_input(), 0)

    def test_shape_mismatch_rejected(self, small_channel_model):
        simulator = CovertChannelSimulator(small_channel_model)
        with pytest.raises(ChannelModelError):
            simulator.transmit(np.array([1.0]), 10)

    def test_deterministic(self, small_channel_model):
        a = CovertChannelSimulator(small_channel_model, seed=9).transmit(
            small_channel_model.uniform_input(), 100
        )
        b = CovertChannelSimulator(small_channel_model, seed=9).transmit(
            small_channel_model.uniform_input(), 100
        )
        assert a.empirical_information_bits == b.empirical_information_bits


class TestBoundHolds:
    def test_uniform_sender_below_bound(self, small_channel_model):
        """The empirical rate never beats the certified R'_max."""
        bound = solve_rmax(small_channel_model, inner_iterations=300)
        simulator = CovertChannelSimulator(small_channel_model, seed=2)
        result = simulator.transmit(small_channel_model.uniform_input(), 1_500)
        # Finite-sample MI estimates are biased upward; allow slack.
        assert result.empirical_rate <= bound.rate_upper_bound * 1.5

    def test_optimal_sender_near_but_below_bound(self, small_channel_model):
        solution = solve_rmax(small_channel_model, inner_iterations=300)
        simulator = CovertChannelSimulator(small_channel_model, seed=3)
        result = simulator.transmit(solution.input_distribution, 2_000)
        assert result.empirical_rate <= solution.rate_upper_bound * 1.5


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_random_senders_never_exceed_bound(seed, small_channel_model):
    """Property: no sender strategy beats the certified bound."""
    bound = solve_rmax(small_channel_model, inner_iterations=300)
    rng = np.random.default_rng(seed)
    p = rng.dirichlet(np.ones(small_channel_model.num_inputs))
    simulator = CovertChannelSimulator(small_channel_model, seed=seed)
    result = simulator.transmit(p, 1_000)
    assert result.empirical_rate <= bound.rate_upper_bound * 1.6
