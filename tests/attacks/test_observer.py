"""Tests for the idealized observer and empirical leakage measurement."""

import pytest

from repro.attacks.observer import measure_empirical_leakage, observe
from repro.core.actions import maintain, resize
from repro.core.trace import ResizingTrace
from repro.info.distributions import DiscreteDistribution


def trace_with(events):
    return ResizingTrace.from_pairs(events)


class TestObserve:
    def test_maintains_invisible(self):
        trace = trace_with(
            [(maintain(2), 10), (resize(2, 4), 20), (maintain(4), 30)]
        )
        observed = observe(trace)
        assert observed.events == ((4, 20),)

    def test_action_and_timing_parts(self):
        trace = trace_with([(resize(2, 4), 20), (resize(4, 2), 50)])
        observed = observe(trace)
        assert observed.action_part == (4, 2)
        assert observed.timing_part == (20, 50)


class TestEmpiricalLeakage:
    def test_secret_independent_victim_leaks_nothing(self):
        secrets = DiscreteDistribution.uniform([0, 1, 2, 3])
        fixed = trace_with([(resize(2, 4), 100)])
        leakage = measure_empirical_leakage(secrets, lambda s: fixed)
        assert leakage.total_information_bits == pytest.approx(0.0, abs=1e-12)
        assert leakage.observation_entropy_bits == pytest.approx(0.0, abs=1e-12)

    def test_action_dependent_victim_leaks_action_bits(self):
        """Figure 1a-style: the secret decides whether an Expand happens."""
        secrets = DiscreteDistribution.uniform([0, 1])

        def run(secret):
            if secret:
                return trace_with([(resize(2, 4), 100)])
            return trace_with([(maintain(2), 100)])

        leakage = measure_empirical_leakage(secrets, run)
        assert leakage.action_information_bits == pytest.approx(1.0)
        assert leakage.total_information_bits == pytest.approx(1.0)

    def test_timing_dependent_victim_leaks_timing_bits(self):
        """Figure 1c-style: same action, secret-shifted time."""
        secrets = DiscreteDistribution.uniform([0, 1])

        def run(secret):
            return trace_with([(resize(2, 4), 100 + 50 * secret)])

        leakage = measure_empirical_leakage(secrets, run)
        assert leakage.action_information_bits == pytest.approx(0.0, abs=1e-12)
        assert leakage.total_information_bits == pytest.approx(1.0)

    def test_timing_resolution_coarsens_observation(self):
        """A low-resolution attacker cannot distinguish close timings."""
        secrets = DiscreteDistribution.uniform([0, 1])

        def run(secret):
            return trace_with([(resize(2, 4), 100 + secret)])

        sharp = measure_empirical_leakage(secrets, run, timing_resolution=1)
        blurred = measure_empirical_leakage(secrets, run, timing_resolution=64)
        assert sharp.total_information_bits == pytest.approx(1.0)
        assert blurred.total_information_bits == pytest.approx(0.0, abs=1e-12)

    def test_weighted_secrets(self):
        secrets = DiscreteDistribution({0: 0.75, 1: 0.25})

        def run(secret):
            return trace_with([(resize(2, 4 if secret else 8), 100)])

        leakage = measure_empirical_leakage(secrets, run)
        # Information equals the secret's entropy (deterministic mapping).
        assert leakage.total_information_bits == pytest.approx(
            secrets.entropy_bits()
        )
